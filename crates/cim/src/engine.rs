//! Batched MAC execution: one row netlist, many input vectors.
//!
//! [`CimArray::run`] rebuilds the row circuit and reallocates the
//! solver workspace on every call. An [`ArrayEngine`] is the batched
//! counterpart for workloads that evaluate the *same stored weights*
//! against many input vectors and temperatures (bit-serial NN layers,
//! range tables, temperature sweeps):
//!
//! * the row netlist is built **once** per engine and retargeted to
//!   each input vector by rewriting the word-line waveforms in place;
//! * each worker thread reuses a single solver [`Workspace`] and one
//!   circuit clone across its whole chunk of jobs (the scoped-thread
//!   fan-out shared with [`ferrocim_spice::MonteCarlo`]);
//! * duplicate `(inputs, temperature)` jobs are simulated once and the
//!   result is fanned back out to every requesting slot.
//!
//! Results are bitwise identical to looping [`CimArray::run`] over the
//! same jobs: retargeting rewrites exactly the waveform the builder
//! would have installed, and no solver state is carried between jobs.

use crate::array::{CimArray, MacOutput, MacPath, MacRequest};
use crate::cells::{CellDesign, CellOffsets, CellWeight};
use crate::CimError;
use ferrocim_spice::{
    apply_policy, fan_out, try_fan_out, Budget, Circuit, FailurePolicy, FanOutError, FanOutReport,
    JobError, NodeId, SolverConfig, Workspace,
};
use ferrocim_telemetry::{Event, Telemetry};
use ferrocim_units::Celsius;

/// A reusable batched-MAC executor over one set of stored weights.
///
/// Build it once per weight vector, then feed it slices of input
/// vectors with [`ArrayEngine::mac_batch`] (one temperature) or
/// [`ArrayEngine::mac_batch_grid`] (a temperature grid).
///
/// # Examples
///
/// ```
/// use ferrocim_cim::cells::TwoTransistorOneFefet;
/// use ferrocim_cim::{ArrayConfig, ArrayEngine, CimArray};
/// use ferrocim_units::Celsius;
///
/// # fn main() -> Result<(), ferrocim_cim::CimError> {
/// let array = CimArray::new(
///     TwoTransistorOneFefet::paper_default(),
///     ArrayConfig::paper_default(),
/// )?;
/// let engine = ArrayEngine::new(&array, &[true; 8])?;
/// let inputs: Vec<Vec<bool>> = (0..4)
///     .map(|k| (0..8).map(|i| i < k).collect())
///     .collect();
/// let outs = engine.mac_batch(&inputs, Celsius::ROOM)?;
/// assert_eq!(outs.len(), 4);
/// assert!(outs[3].v_acc > outs[1].v_acc);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ArrayEngine<'a, C> {
    array: &'a CimArray<C>,
    weights: Vec<CellWeight>,
    offsets: Vec<CellOffsets>,
    base: Circuit,
    outs: Vec<NodeId>,
    acc: NodeId,
    parallel: bool,
    budget: Budget,
    telemetry: Telemetry,
    solver: SolverConfig,
}

impl<'a, C: CellDesign> ArrayEngine<'a, C> {
    /// Creates an engine for binary stored weights on nominal devices.
    ///
    /// # Errors
    ///
    /// Returns [`CimError::MismatchedOperands`] if `weights` does not
    /// match the row width, or propagates netlist-construction
    /// failures.
    pub fn new(array: &'a CimArray<C>, weights: &[bool]) -> Result<Self, CimError> {
        let weighted: Vec<CellWeight> = weights.iter().map(|&b| CellWeight::Bit(b)).collect();
        let offsets = vec![CellOffsets::NOMINAL; array.config().cells_per_row];
        Self::weighted(array, &weighted, &offsets)
    }

    /// Creates an engine for multi-level stored weights with explicit
    /// per-cell variation offsets (one Monte-Carlo draw held fixed for
    /// the whole batch).
    ///
    /// # Errors
    ///
    /// As [`ArrayEngine::new`]; additionally if `offsets` has the wrong
    /// length.
    pub fn weighted(
        array: &'a CimArray<C>,
        weights: &[CellWeight],
        offsets: &[CellOffsets],
    ) -> Result<Self, CimError> {
        let n = array.config().cells_per_row;
        if weights.len() != n || offsets.len() != n {
            return Err(CimError::MismatchedOperands {
                weights: weights.len(),
                inputs: offsets.len(),
                cells_per_row: n,
            });
        }
        // The base netlist is built against the all-off input vector;
        // every job rewrites the word-line waveforms before solving.
        let idle = vec![false; n];
        let (base, outs, acc) = array.build_row_circuit(weights, &idle, offsets)?;
        Ok(ArrayEngine {
            array,
            weights: weights.to_vec(),
            offsets: offsets.to_vec(),
            base,
            outs,
            acc,
            parallel: true,
            budget: array.budget().clone(),
            telemetry: array.telemetry().clone(),
            solver: array.solver_config(),
        })
    }

    /// Disables the thread fan-out; jobs run on the calling thread.
    pub fn sequential(mut self) -> Self {
        self.parallel = false;
        self
    }

    /// Attaches a resource [`Budget`] governing every batch: one step
    /// is charged per unique simulation, every Newton iteration counts
    /// against the shared pool, and a deadline or cancellation aborts
    /// the fan-out with a typed error. By default the engine inherits
    /// the array's budget (the two then share one spend pool).
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Attaches a telemetry handle: each batch emits one
    /// [`Event::MacIssued`] carrying the requested job count and the
    /// number of unique simulations actually solved, and every
    /// underlying transient solve reports through the same handle. By
    /// default the engine inherits the array's handle.
    pub fn with_recorder(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Selects the linear-solver backend for every worker-thread
    /// [`Workspace`] (see [`SolverConfig`]). By default the engine
    /// inherits the array's selection; the sparse backend runs one
    /// symbolic analysis per worker and reuses it across the worker's
    /// whole chunk of jobs — the row topology never changes in a batch.
    pub fn with_solver(mut self, solver: SolverConfig) -> Self {
        self.solver = solver;
        self
    }

    /// The stored weights this engine was built for.
    pub fn weights(&self) -> &[CellWeight] {
        &self.weights
    }

    /// Runs one full-transient MAC per input vector at a single
    /// temperature. Output `i` corresponds to `inputs[i]` and is
    /// bitwise identical to the equivalent [`CimArray::run`] call.
    ///
    /// # Errors
    ///
    /// Returns [`CimError::MismatchedOperands`] for an input vector of
    /// the wrong width, or propagates simulation failures.
    pub fn mac_batch(&self, inputs: &[Vec<bool>], temp: Celsius) -> Result<Vec<MacOutput>, CimError>
    where
        C: Sync,
    {
        let jobs: Vec<(usize, Celsius)> = (0..inputs.len()).map(|i| (i, temp)).collect();
        self.run_jobs(inputs, &jobs)
    }

    /// Runs the full `temps × inputs` grid: `grid[t][i]` is the MAC of
    /// `inputs[i]` at `temps[t]`.
    ///
    /// # Errors
    ///
    /// As [`ArrayEngine::mac_batch`]; additionally
    /// [`CimError::EmptySweep`] for an empty temperature list.
    pub fn mac_batch_grid(
        &self,
        inputs: &[Vec<bool>],
        temps: &[Celsius],
    ) -> Result<Vec<Vec<MacOutput>>, CimError>
    where
        C: Sync,
    {
        if temps.is_empty() {
            return Err(CimError::EmptySweep {
                what: "temperatures",
            });
        }
        let jobs: Vec<(usize, Celsius)> = temps
            .iter()
            .flat_map(|&t| (0..inputs.len()).map(move |i| (i, t)))
            .collect();
        let mut flat = self.run_jobs(inputs, &jobs)?.into_iter();
        Ok(temps
            .iter()
            .map(|_| flat.by_ref().take(inputs.len()).collect())
            .collect())
    }

    /// Validates, deduplicates, and executes `(input, temperature)`
    /// jobs, scattering each unique simulation result back to every
    /// slot that requested it.
    fn run_jobs(
        &self,
        inputs: &[Vec<bool>],
        jobs: &[(usize, Celsius)],
    ) -> Result<Vec<MacOutput>, CimError>
    where
        C: Sync,
    {
        let n = self.array.config().cells_per_row;
        for input in inputs {
            if input.len() != n {
                return Err(CimError::MismatchedOperands {
                    weights: self.weights.len(),
                    inputs: input.len(),
                    cells_per_row: n,
                });
            }
        }
        // Identical (inputs, temperature) pairs collapse onto one
        // simulation — on repetitive workloads (bit-serial NN inputs,
        // level tables) this is where the batch throughput comes from.
        let mut unique: Vec<(usize, Celsius)> = Vec::new();
        let mut slot_of: Vec<usize> = Vec::with_capacity(jobs.len());
        for &(i, t) in jobs {
            let found = unique
                .iter()
                .position(|&(j, u)| u.0.to_bits() == t.0.to_bits() && inputs[j] == inputs[i]);
            slot_of.push(found.unwrap_or_else(|| {
                unique.push((i, t));
                unique.len() - 1
            }));
        }
        let job_count = jobs.len() as u64;
        let solve_count = unique.len() as u64;
        let batch_span = self.telemetry.span("cim.mac_batch");
        let batch_id = batch_span.id();
        self.telemetry.emit(|| Event::MacIssued {
            jobs: job_count,
            solves: solve_count,
        });
        let results = fan_out(
            unique.len(),
            self.parallel,
            || (Workspace::with_solver(self.solver), self.base.clone()),
            |(ws, ckt), u| {
                // Parent this worker-side solve under the issuing batch
                // span: fan_out workers run on their own threads, so
                // the thread-local parent chain must be bridged by id.
                let _solve_span = self.telemetry.span_under("cim.row_solve", batch_id);
                self.budget.check()?;
                self.budget.charge_steps(1)?;
                let (i, t) = unique[u];
                self.array.retarget_inputs(ckt, &inputs[i])?;
                self.array.eval_row_transient(
                    ckt,
                    &self.outs,
                    self.acc,
                    &self.weights,
                    &inputs[i],
                    t,
                    &self.budget,
                    &self.telemetry,
                    ws,
                )
            },
        );
        let mut solved: Vec<MacOutput> = Vec::with_capacity(unique.len());
        for result in results {
            solved.push(result?);
        }
        Ok(slot_of.into_iter().map(|u| solved[u].clone()).collect())
    }

    /// Fault-tolerant variant of [`ArrayEngine::mac_batch`]: each input
    /// vector is one job, failures (typed errors *or* panics inside the
    /// solver) are collected per job, and `policy` decides whether the
    /// batch aborts, reports, or substitutes a fallback output.
    /// Duplicated input vectors still share one simulation — and share
    /// its outcome, success or failure.
    ///
    /// # Errors
    ///
    /// [`FanOutError::Job`] under [`FailurePolicy::FailFast`] when any
    /// job fails; [`FanOutError::TooManyFailures`] under
    /// [`FailurePolicy::SkipAndReport`] when the failure budget is
    /// exceeded. Under [`FailurePolicy::Substitute`] the call never
    /// fails.
    pub fn try_mac_batch(
        &self,
        inputs: &[Vec<bool>],
        temp: Celsius,
        policy: &FailurePolicy<MacOutput>,
    ) -> Result<FanOutReport<MacOutput, CimError>, FanOutError<CimError>>
    where
        C: Sync,
    {
        let n = self.array.config().cells_per_row;
        let mut unique: Vec<usize> = Vec::new();
        let mut slot_of: Vec<usize> = Vec::with_capacity(inputs.len());
        for i in 0..inputs.len() {
            let found = unique.iter().position(|&j| inputs[j] == inputs[i]);
            slot_of.push(found.unwrap_or_else(|| {
                unique.push(i);
                unique.len() - 1
            }));
        }
        // Solve the unique jobs tolerating every failure, then scatter
        // results back to input slots and apply the caller's policy at
        // that granularity — so the failure budget counts inputs, not
        // deduplicated simulations.
        let job_count = inputs.len() as u64;
        let solve_count = unique.len() as u64;
        let batch_span = self.telemetry.span("cim.mac_batch");
        let batch_id = batch_span.id();
        self.telemetry.emit(|| Event::MacIssued {
            jobs: job_count,
            solves: solve_count,
        });
        let solved = try_fan_out(
            unique.len(),
            self.parallel,
            &FailurePolicy::SkipAndReport {
                max_failures: usize::MAX,
            },
            || (Workspace::with_solver(self.solver), self.base.clone()),
            |(ws, ckt), u| {
                let _solve_span = self.telemetry.span_under("cim.row_solve", batch_id);
                self.budget.check()?;
                self.budget.charge_steps(1)?;
                let i = unique[u];
                if inputs[i].len() != n {
                    return Err(CimError::MismatchedOperands {
                        weights: self.weights.len(),
                        inputs: inputs[i].len(),
                        cells_per_row: n,
                    });
                }
                self.array.retarget_inputs(ckt, &inputs[i])?;
                self.array.eval_row_transient(
                    ckt,
                    &self.outs,
                    self.acc,
                    &self.weights,
                    &inputs[i],
                    temp,
                    &self.budget,
                    &self.telemetry,
                    ws,
                )
            },
        )?;
        let results: Vec<Result<MacOutput, JobError<CimError>>> = slot_of
            .into_iter()
            .map(|u| solved.results[u].clone())
            .collect();
        let failures = results.iter().filter(|r| r.is_err()).count();
        let report = apply_policy(results, failures, policy)?;
        if matches!(policy, FailurePolicy::Substitute(_)) && report.failures > 0 {
            let substituted = report.failures as u64;
            self.telemetry.emit(|| Event::FaultSubstituted {
                substitute: substituted,
            });
        }
        Ok(report)
    }

    /// The per-call reference this engine accelerates: one
    /// [`CimArray::run`] per job, sharing nothing. Used by the
    /// equivalence tests and the throughput benchmark.
    ///
    /// # Errors
    ///
    /// As [`ArrayEngine::mac_batch`].
    pub fn mac_serial(
        &self,
        inputs: &[Vec<bool>],
        temp: Celsius,
    ) -> Result<Vec<MacOutput>, CimError> {
        inputs
            .iter()
            .map(|x| {
                self.array.run(
                    &MacRequest::new(x)
                        .weighted(&self.weights)
                        .at(temp)
                        .offsets(&self.offsets)
                        .path(MacPath::Transient),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::TwoTransistorOneFefet;
    use crate::ArrayConfig;
    use ferrocim_units::Second;

    const ROOM: Celsius = Celsius(27.0);

    fn small_array() -> CimArray<TwoTransistorOneFefet> {
        let config = ArrayConfig {
            cells_per_row: 4,
            dt: Second(50e-12),
            ..ArrayConfig::paper_default()
        };
        CimArray::new(TwoTransistorOneFefet::paper_default(), config).unwrap()
    }

    fn input_set() -> Vec<Vec<bool>> {
        vec![
            vec![false; 4],
            vec![true, false, true, false],
            vec![true; 4],
            vec![true, false, true, false], // duplicate of job 1
        ]
    }

    #[test]
    fn batch_is_bitwise_identical_to_per_call_runs() {
        let array = small_array();
        let engine = ArrayEngine::new(&array, &[true; 4]).unwrap();
        let inputs = input_set();
        let batch = engine.mac_batch(&inputs, ROOM).unwrap();
        let serial = engine.mac_serial(&inputs, ROOM).unwrap();
        assert_eq!(batch, serial);
        // The duplicated job must also reuse the identical result.
        assert_eq!(batch[1], batch[3]);
    }

    #[test]
    fn sequential_and_parallel_batches_agree() {
        let array = small_array();
        let engine = ArrayEngine::new(&array, &[true, true, false, true]).unwrap();
        let inputs = input_set();
        let par = engine.mac_batch(&inputs, ROOM).unwrap();
        let seq = engine
            .clone()
            .sequential()
            .mac_batch(&inputs, ROOM)
            .unwrap();
        assert_eq!(par, seq);
    }

    #[test]
    fn grid_matches_per_temperature_batches() {
        let array = small_array();
        let engine = ArrayEngine::new(&array, &[true; 4]).unwrap();
        let inputs = input_set()[..2].to_vec();
        let temps = [Celsius(0.0), Celsius(85.0)];
        let grid = engine.mac_batch_grid(&inputs, &temps).unwrap();
        assert_eq!(grid.len(), 2);
        for (t, row) in temps.iter().zip(&grid) {
            assert_eq!(row, &engine.mac_batch(&inputs, *t).unwrap());
        }
    }

    #[test]
    fn dimension_errors_are_typed() {
        let array = small_array();
        assert!(matches!(
            ArrayEngine::new(&array, &[true; 3]),
            Err(CimError::MismatchedOperands { .. })
        ));
        let engine = ArrayEngine::new(&array, &[true; 4]).unwrap();
        assert!(matches!(
            engine.mac_batch(&[vec![true; 5]], ROOM),
            Err(CimError::MismatchedOperands { .. })
        ));
        assert!(matches!(
            engine.mac_batch_grid(&[vec![true; 4]], &[]),
            Err(CimError::EmptySweep { .. })
        ));
    }

    #[test]
    fn empty_batch_is_empty() {
        let array = small_array();
        let engine = ArrayEngine::new(&array, &[true; 4]).unwrap();
        assert_eq!(engine.mac_batch(&[], ROOM).unwrap(), vec![]);
    }

    #[test]
    fn try_batch_matches_batch_when_clean() {
        let array = small_array();
        let engine = ArrayEngine::new(&array, &[true; 4]).unwrap();
        let inputs = input_set();
        let report = engine
            .try_mac_batch(
                &inputs,
                ROOM,
                &FailurePolicy::SkipAndReport { max_failures: 0 },
            )
            .unwrap();
        assert!(report.is_clean());
        let reference = engine.mac_batch(&inputs, ROOM).unwrap();
        let values: Vec<MacOutput> = report.values().cloned().collect();
        assert_eq!(values, reference);
    }

    #[test]
    fn try_batch_isolates_bad_inputs_per_policy() {
        let array = small_array();
        let engine = ArrayEngine::new(&array, &[true; 4]).unwrap();
        // Job 1 has the wrong width; jobs 0 and 2 are fine.
        let inputs = vec![vec![true; 4], vec![true; 7], vec![false; 4]];
        let report = engine
            .try_mac_batch(
                &inputs,
                ROOM,
                &FailurePolicy::SkipAndReport { max_failures: 1 },
            )
            .unwrap();
        assert_eq!(report.failures, 1);
        assert!(report.results[0].is_ok());
        assert!(matches!(
            report.results[1],
            Err(JobError::Failed(CimError::MismatchedOperands { .. }))
        ));
        let reference = engine
            .mac_batch(&[inputs[0].clone(), inputs[2].clone()], ROOM)
            .unwrap();
        assert_eq!(report.results[0].as_ref().unwrap(), &reference[0]);
        assert_eq!(report.results[2].as_ref().unwrap(), &reference[1]);
        // FailFast surfaces the same failure as a batch error.
        assert!(matches!(
            engine.try_mac_batch(&inputs, ROOM, &FailurePolicy::FailFast),
            Err(FanOutError::Job { index: 1, .. })
        ));
    }
}
