//! Readout (ADC) modelling and the statistical hardware-transfer model
//! consumed by `ferrocim-nn`.
//!
//! The analog `V_acc` of a MAC must be digitized before it re-enters a
//! neural network. [`Adc`] models the level slicer: it is calibrated on
//! the nominal level voltages at a reference temperature and quantizes
//! by nearest level. [`TransferModel`] then captures everything the
//! circuit does to a MAC value — temperature drift and process
//! variation included — as a `(n+1)×(n+1)` confusion matrix
//! `P[true][read]`, measured by Monte-Carlo over the actual array
//! simulation. The NN evaluation samples from this matrix, which is
//! exactly the paper's methodology of propagating circuit-level error
//! statistics into VGG/CIFAR-10 accuracy (Sec. IV-B).

use crate::array::{mac_operands, CimArray};
use crate::cells::{CellDesign, CellOffsets};
use crate::CimError;
use ferrocim_device::variation::{GaussianSampler, VariationModel};
use ferrocim_spice::MonteCarlo;
use ferrocim_units::{Celsius, Volt};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A level-slicing analog-to-digital converter for MAC outputs.
///
/// Internally this is a set of `n` decision thresholds between the
/// `n + 1` MAC levels. Two calibrations are provided:
///
/// * [`Adc::calibrate`] places thresholds at the midpoints of the
///   *nominal* levels at one reference temperature — the naive slicer.
/// * [`Adc::calibrate_over`] places each threshold at the centre of the
///   worst-case *gap* between adjacent level ranges over a temperature
///   sweep — the sense-margin-aware placement implied by the paper's
///   NMR analysis (a positive `NMR_i` guarantees such a gap exists).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Adc {
    thresholds: Vec<f64>,
}

impl Adc {
    /// Calibrates midpoint thresholds from the nominal level voltages at
    /// a reference temperature (27 °C in the paper).
    ///
    /// # Errors
    ///
    /// Propagates simulation failures.
    pub fn calibrate<C: CellDesign>(
        array: &CimArray<C>,
        reference: Celsius,
    ) -> Result<Adc, CimError> {
        // Calibration issues live transient solves; the span keeps them
        // parented in the trace instead of appearing as roots.
        let _span = array.telemetry().span("cim.adc_calibrate");
        let levels: Vec<Volt> = array.level_voltages(reference)?;
        Ok(Self::from_levels(levels))
    }

    /// Calibrates gap-centred thresholds from the level *ranges* over a
    /// temperature sweep, so the readout stays correct at every swept
    /// temperature whenever the array's `NMR_min` is positive.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures.
    pub fn calibrate_over<C: CellDesign>(
        array: &CimArray<C>,
        temps: &[Celsius],
    ) -> Result<Adc, CimError> {
        let _span = array.telemetry().span("cim.adc_calibrate");
        let table = crate::metrics::RangeTable::measure(array, temps)?;
        Ok(Self::from_range_table(&table))
    }

    /// Builds gap-centred thresholds from a measured range table.
    pub fn from_range_table(table: &crate::metrics::RangeTable) -> Adc {
        let thresholds = table
            .ranges()
            .windows(2)
            .map(|w| 0.5 * (w[0].hi.value() + w[1].lo.value()))
            .collect();
        Adc { thresholds }
    }

    /// Builds midpoint thresholds from explicit level voltages
    /// (ascending).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two levels are given or they are not
    /// strictly ascending.
    pub fn from_levels(levels: Vec<Volt>) -> Adc {
        assert!(levels.len() >= 2, "an ADC needs at least two levels");
        assert!(
            levels.windows(2).all(|w| w[0].value() < w[1].value()),
            "ADC levels must be strictly ascending"
        );
        Adc {
            thresholds: levels
                .windows(2)
                .map(|w| 0.5 * (w[0].value() + w[1].value()))
                .collect(),
        }
    }

    /// The decision thresholds, ascending.
    pub fn thresholds(&self) -> Vec<Volt> {
        self.thresholds.iter().map(|&v| Volt(v)).collect()
    }

    /// Quantizes an analog output: the number of thresholds below it.
    pub fn quantize(&self, v: Volt) -> usize {
        self.thresholds.partition_point(|&t| t < v.value())
    }
}

/// How the readout thresholds follow the operating temperature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdcTracking {
    /// One fixed threshold set placed in the worst-case gaps over the
    /// whole 0–85 °C range. Works whenever `NMR_min > 0`, but nominal
    /// levels sit asymmetrically in their decision windows at the
    /// temperature extremes, which biases readouts under variation.
    Global,
    /// Replica-row tracking: a nominal reference row on the same die
    /// re-centres the thresholds at the operating temperature — the
    /// standard analog-CIM sensing aid, which keeps readout errors
    /// unbiased at every temperature.
    Replica,
}

/// Configuration of a transfer-model measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransferConfig {
    /// The operating temperature the model is measured at.
    pub temp: Celsius,
    /// The device-variation model (`σ_VT = 54 mV` in the paper).
    pub variation: VariationModel,
    /// Monte-Carlo samples per MAC level.
    pub samples_per_level: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Threshold-tracking scheme of the deployed readout.
    pub tracking: AdcTracking,
}

impl TransferConfig {
    /// The paper's Fig. 9 configuration at a given temperature:
    /// `σ_VT = 54 mV`, 100 Monte-Carlo samples, replica-tracked
    /// thresholds.
    pub fn paper_default(temp: Celsius) -> Self {
        TransferConfig {
            temp,
            variation: VariationModel::paper_default(),
            samples_per_level: 100,
            seed: 0xF3F3,
            tracking: AdcTracking::Replica,
        }
    }
}

/// The measured digital-in/digital-out behaviour of a CIM row:
/// `P[true_mac][read_mac]`, plus the raw analog spread per level.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransferModel {
    confusion: Vec<Vec<f64>>,
    /// Worst observed |read − true| per true level.
    max_abs_error: Vec<usize>,
    temp: Celsius,
}

impl TransferModel {
    /// Measures the transfer model of an array by Monte-Carlo over
    /// per-cell threshold offsets, using the analytic MAC path and an
    /// ADC calibrated at 27 °C nominal.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures; returns
    /// [`CimError::InvalidConfig`] for a zero sample count.
    pub fn measure<C: CellDesign + Sync>(
        array: &CimArray<C>,
        config: &TransferConfig,
    ) -> Result<TransferModel, CimError> {
        if config.samples_per_level == 0 {
            return Err(CimError::InvalidConfig {
                name: "samples_per_level",
                value: 0.0,
                requirement: "at least 1",
            });
        }
        let n = array.config().cells_per_row;
        // Every live solve of the measurement — ADC calibration and the
        // per-sample Monte-Carlo MACs — is parented under this span, so
        // the trace tree attributes them to the transfer measurement.
        // Samples run on fan-out worker threads, so each one bridges
        // back to this parent explicitly via `span_under`.
        let measure_span = array.telemetry().span("cim.transfer_measure");
        let measure_id = measure_span.id();
        let adc = match config.tracking {
            AdcTracking::Global => {
                Adc::calibrate_over(array, &ferrocim_spice::sweep::temperature_sweep(8))?
            }
            AdcTracking::Replica => Adc::calibrate(array, config.temp)?,
        };
        let mut confusion = vec![vec![0.0; n + 1]; n + 1];
        let mut max_abs_error = vec![0usize; n + 1];
        for k in 0..=n {
            let (w, x) = mac_operands(n, k);
            let mc = MonteCarlo::new(config.samples_per_level, config.seed ^ (k as u64) << 32);
            let reads: Vec<Result<usize, CimError>> = mc.run(|_, rng| {
                let _sample_span = array.telemetry().span_under("cim.mac_sample", measure_id);
                let mut sampler = GaussianSampler::new();
                let offsets: Vec<CellOffsets> = (0..n)
                    .map(|_| CellOffsets {
                        fefet: config.variation.sample_fefet_offset(rng, &mut sampler),
                        m1: config.variation.sample_mosfet_offset(rng, &mut sampler),
                        m2: config.variation.sample_mosfet_offset(rng, &mut sampler),
                    })
                    .collect();
                let request = crate::MacRequest::new(&x)
                    .weights(&w)
                    .at(config.temp)
                    .offsets(&offsets)
                    .path(crate::MacPath::Analytic);
                let out = array.run(&request)?;
                Ok(adc.quantize(out.v_acc))
            });
            for read in reads {
                let read = read?;
                confusion[k][read] += 1.0;
                max_abs_error[k] = max_abs_error[k].max(read.abs_diff(k));
            }
            for p in &mut confusion[k] {
                *p /= config.samples_per_level as f64;
            }
        }
        Ok(TransferModel {
            confusion,
            max_abs_error,
            temp: config.temp,
        })
    }

    /// The confusion matrix `P[true][read]`.
    pub fn confusion(&self) -> &[Vec<f64>] {
        &self.confusion
    }

    /// The temperature this model was measured at.
    pub fn temp(&self) -> Celsius {
        self.temp
    }

    /// The probability that a true MAC of `k` reads back exactly `k`.
    pub fn correct_probability(&self, k: usize) -> f64 {
        self.confusion[k][k]
    }

    /// The worst |read − true| over all levels — the paper's Fig. 9
    /// "highest error" metric, as a fraction of the full scale `n`.
    pub fn max_relative_error(&self) -> f64 {
        let n = self.confusion.len() - 1;
        *self.max_abs_error.iter().max().unwrap_or(&0) as f64 / n as f64
    }

    /// Samples a readout for a true MAC value.
    ///
    /// # Panics
    ///
    /// Panics if `k` exceeds the modelled range.
    pub fn sample<R: Rng + ?Sized>(&self, k: usize, rng: &mut R) -> usize {
        let row = &self.confusion[k];
        let u: f64 = rng.random();
        let mut acc = 0.0;
        for (read, &p) in row.iter().enumerate() {
            acc += p;
            if u < acc {
                return read;
            }
        }
        row.len() - 1
    }

    /// The expected readout for a true MAC value.
    pub fn expected(&self, k: usize) -> f64 {
        self.confusion[k]
            .iter()
            .enumerate()
            .map(|(read, &p)| read as f64 * p)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ferrocim_device::variation::seeded_rng;

    #[test]
    fn adc_quantizes_to_nearest_level() {
        let adc = Adc::from_levels(vec![Volt(0.0), Volt(0.01), Volt(0.02)]);
        assert_eq!(adc.quantize(Volt(0.0004)), 0);
        assert_eq!(adc.quantize(Volt(0.009)), 1);
        assert_eq!(adc.quantize(Volt(0.014)), 1);
        assert_eq!(adc.quantize(Volt(0.016)), 2);
        assert_eq!(adc.quantize(Volt(5.0)), 2); // saturates high
        assert_eq!(adc.quantize(Volt(-1.0)), 0); // saturates low
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn adc_rejects_unsorted_levels() {
        let _ = Adc::from_levels(vec![Volt(0.02), Volt(0.01)]);
    }

    #[test]
    fn transfer_model_sampling_follows_confusion() {
        let model = TransferModel {
            confusion: vec![
                vec![0.8, 0.2, 0.0],
                vec![0.1, 0.8, 0.1],
                vec![0.0, 0.3, 0.7],
            ],
            max_abs_error: vec![1, 1, 1],
            temp: Celsius::ROOM,
        };
        let mut rng = seeded_rng(11);
        let n = 20_000;
        let hits = (0..n).filter(|_| model.sample(1, &mut rng) == 1).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.8).abs() < 0.02, "sampled {frac}");
        assert!((model.expected(1) - 1.0).abs() < 1e-12);
        assert!((model.expected(0) - 0.2).abs() < 1e-12);
        assert_eq!(model.max_relative_error(), 0.5);
        assert_eq!(model.correct_probability(2), 0.7);
    }
}
