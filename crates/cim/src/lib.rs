//! Temperature-resilient subthreshold-FeFET compute-in-memory — the
//! primary contribution of the reproduced DATE 2024 paper.
//!
//! The crate provides:
//!
//! * [`cells`] — the baseline [`cells::OneFefetOneR`] and
//!   [`cells::OneFefetOneT`] cells and the proposed
//!   [`cells::TwoTransistorOneFefet`] feedback cell, all built on the
//!   `ferrocim-spice` circuit engine, with binary or multi-level
//!   ([`cells::CellWeight`]) stored weights.
//! * [`CimArray`] — rows of cells with per-cell `C_o` capacitors, an
//!   `EN`-switched accumulation capacitor `C_acc`, and full-transient or
//!   analytic charge-sharing MAC evaluation (the paper's Fig. 6 array
//!   and Eq. (1)); [`Crossbar`] stacks programmable rows into
//!   matrix–vector tiles. [`ArrayEngine`] batches many input vectors
//!   over one built row netlist, and [`Crossbar::matvec_batch`] fans
//!   whole matrix–vector products across threads.
//! * [`metrics`] — the Noise Margin Rate of Eqs. (2)–(3), output-range
//!   tables over temperature (optionally variation-inflated), and
//!   energy-efficiency accounting.
//! * [`transfer`] — the ADC ([`transfer::Adc`], global or
//!   replica-tracked) and the statistical readout model consumed by
//!   `ferrocim-nn` for hardware-in-the-loop accuracy evaluation.
//! * [`program`] — write-verify programming (the paper's ref \[9\]
//!   technique) that trims device variation out of stored weights.
//! * [`tune`] — the W/L coordinate-search tuner implementing the
//!   paper's "cell parameters are tuned" step.
//! * [`compare`] — the Table II cross-design comparison scaffold.
//!
//! # Example
//!
//! ```
//! use ferrocim_cim::cells::{CellDesign, CellOffsets, TwoTransistorOneFefet};
//! use ferrocim_units::Celsius;
//!
//! # fn main() -> Result<(), ferrocim_cim::CimError> {
//! let cell = TwoTransistorOneFefet::paper_default();
//! // stored '1' × input '1' conducts; stored '0' × input '1' does not.
//! let on = cell.read_current(true, true, Celsius(27.0), &CellOffsets::NOMINAL)?;
//! let off = cell.read_current(false, true, Celsius(27.0), &CellOffsets::NOMINAL)?;
//! assert!(on.value() > 10.0 * off.value().abs());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod array;
mod bias;
pub mod cells;
pub mod compare;
mod crossbar;
mod engine;
mod error;
pub mod fault;
pub mod metrics;
pub mod program;
pub mod transfer;
pub mod tune;

pub use array::{mac_operands, ArrayConfig, CimArray, MacOutput, MacPath, MacRequest};
pub use bias::ReadBias;
pub use crossbar::{Crossbar, MatVecOutput};
pub use engine::ArrayEngine;
pub use error::CimError;
pub use fault::{CellFault, FaultPlan};

/// Re-exported telemetry handle: [`CimArray`], [`ArrayEngine`], and
/// [`Crossbar`] all accept one via their `with_recorder` builders (see
/// [`ferrocim_telemetry`] for recorders, aggregation, and trace sinks).
pub use ferrocim_telemetry::Telemetry;
