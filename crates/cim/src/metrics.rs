//! Array-level figures of merit: MAC output-range tables over
//! temperature, the Noise Margin Rate of the paper's Eqs. (2)–(3), and
//! energy-efficiency summaries.

use crate::array::{mac_operands, CimArray};
use crate::cells::CellDesign;
use crate::CimError;
use ferrocim_units::{Celsius, Joule, Second, Volt};
use serde::{Deserialize, Serialize};

/// The output-voltage range `[lo, hi]` observed for one MAC value over a
/// temperature sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OutputRange {
    /// The MAC value this range belongs to.
    pub mac: usize,
    /// Lowest observed `V_acc`.
    pub lo: Volt,
    /// Highest observed `V_acc`.
    pub hi: Volt,
}

/// Per-MAC output ranges of an array over a temperature sweep — the
/// data behind the paper's Fig. 4 (baseline, overlapping) and Fig. 8(a)
/// (proposed, non-overlapping).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RangeTable {
    ranges: Vec<OutputRange>,
}

impl RangeTable {
    /// Measures the ranges of `MAC = 0..=n` for an array over a set of
    /// temperatures, using the fast analytic evaluation path with
    /// nominal cells.
    ///
    /// # Errors
    ///
    /// Returns [`CimError::EmptySweep`] for an empty temperature list,
    /// or propagates simulation failures.
    pub fn measure<C: CellDesign>(
        array: &CimArray<C>,
        temps: &[Celsius],
    ) -> Result<RangeTable, CimError> {
        if temps.is_empty() {
            return Err(CimError::EmptySweep {
                what: "temperatures",
            });
        }
        let n = array.config().cells_per_row;
        let mut lo = vec![f64::INFINITY; n + 1];
        let mut hi = vec![f64::NEG_INFINITY; n + 1];
        for &t in temps {
            let levels = array.level_voltages(t)?;
            for (k, v) in levels.iter().enumerate() {
                lo[k] = lo[k].min(v.value());
                hi[k] = hi[k].max(v.value());
            }
        }
        let ranges = (0..=n)
            .map(|k| OutputRange {
                mac: k,
                lo: Volt(lo[k]),
                hi: Volt(hi[k]),
            })
            .collect();
        Ok(RangeTable { ranges })
    }

    /// Measures ranges like [`RangeTable::measure`], additionally
    /// inflating each level's range by `±z · σ_k`, where `σ_k` is the
    /// accumulated per-level standard deviation from device variation
    /// (`σ_k² = gain² (k σ_on² + (n−k) σ_off²)`). An array whose
    /// variation-aware `NMR_min` is positive keeps its levels separated
    /// under *both* temperature drift and `±zσ` process variation.
    ///
    /// # Errors
    ///
    /// As [`RangeTable::measure`].
    pub fn measure_with_variation<C: CellDesign>(
        array: &CimArray<C>,
        temps: &[Celsius],
        variation: &ferrocim_device::variation::VariationModel,
        z: f64,
    ) -> Result<RangeTable, CimError> {
        if temps.is_empty() {
            return Err(CimError::EmptySweep {
                what: "temperatures",
            });
        }
        let n = array.config().cells_per_row;
        let gain = array.config().sharing_gain();
        let mut lo = vec![f64::INFINITY; n + 1];
        let mut hi = vec![f64::NEG_INFINITY; n + 1];
        for &t in temps {
            let levels = array.level_voltages(t)?;
            let (s_on, s_off) = array.cell_sigma(t, variation)?;
            for (k, v) in levels.iter().enumerate() {
                let sigma = gain
                    * (k as f64 * s_on.value().powi(2) + (n - k) as f64 * s_off.value().powi(2))
                        .sqrt();
                lo[k] = lo[k].min(v.value() - z * sigma);
                hi[k] = hi[k].max(v.value() + z * sigma);
            }
        }
        let ranges = (0..=n)
            .map(|k| OutputRange {
                mac: k,
                lo: Volt(lo[k]),
                hi: Volt(hi[k]),
            })
            .collect();
        Ok(RangeTable { ranges })
    }

    /// Builds a table from precomputed ranges (for custom sweeps that
    /// also include variation, or for tests).
    ///
    /// # Panics
    ///
    /// Panics if the ranges are not consecutive MAC values starting at 0.
    pub fn from_ranges(ranges: Vec<OutputRange>) -> RangeTable {
        for (i, r) in ranges.iter().enumerate() {
            assert_eq!(r.mac, i, "ranges must cover MAC = 0..=n in order");
        }
        RangeTable { ranges }
    }

    /// The per-MAC ranges, indexed by MAC value.
    pub fn ranges(&self) -> &[OutputRange] {
        &self.ranges
    }

    /// The highest representable MAC value `n`.
    pub fn max_mac(&self) -> usize {
        self.ranges.len() - 1
    }

    /// The Noise Margin Rate of the paper's Eq. (2):
    ///
    /// ```text
    /// NMR_i = (LV_{i+1} − HV_i) / (HV_i − LV_i)
    /// ```
    ///
    /// Positive values mean the `MAC = i` and `MAC = i+1` ranges are
    /// separated; negative values mean they overlap.
    ///
    /// # Panics
    ///
    /// Panics if `i + 1` exceeds the table's maximum MAC value.
    pub fn nmr(&self, i: usize) -> f64 {
        let this = &self.ranges[i];
        let next = &self.ranges[i + 1];
        let gap = next.lo.value() - this.hi.value();
        let width = (this.hi.value() - this.lo.value()).max(1e-12);
        gap / width
    }

    /// The worst-case NMR and its index — Eq. (3):
    /// `NMR_min = min{NMR_i}`.
    ///
    /// Returns `(i, NMR_i)` for the minimizing level pair. A positive
    /// value certifies that no two adjacent MAC outputs overlap anywhere
    /// in the sweep. A degenerate single-level table has no adjacent
    /// pair and reports `(0, f64::INFINITY)`.
    pub fn nmr_min(&self) -> (usize, f64) {
        let mut min = (0, f64::INFINITY);
        for i in 0..self.max_mac() {
            let nmr = self.nmr(i);
            if nmr < min.1 {
                min = (i, nmr);
            }
        }
        min
    }

    /// `true` if any pair of adjacent MAC output ranges overlaps — the
    /// failure mode of the paper's Fig. 4.
    pub fn has_overlap(&self) -> bool {
        self.nmr_min().1 < 0.0
    }
}

/// Energy summary of an array across all MAC values — Fig. 8(b).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Energy per operation for each MAC value `0..=n`.
    pub per_mac: Vec<Joule>,
    /// Mean energy per MAC operation.
    pub average: Joule,
    /// Energy efficiency in TOPS/W at the paper's operation count
    /// (`n` multiplications + 1 accumulation per MAC).
    pub tops_per_watt: f64,
    /// The MAC latency used.
    pub latency: Second,
}

impl EnergyReport {
    /// Measures the per-MAC-value operation energy of an array at one
    /// temperature using the full-row transient (supply energy
    /// integrals).
    ///
    /// # Errors
    ///
    /// Propagates simulation failures.
    pub fn measure<C: CellDesign>(
        array: &CimArray<C>,
        temp: Celsius,
    ) -> Result<EnergyReport, CimError> {
        let n = array.config().cells_per_row;
        let mut per_mac = Vec::with_capacity(n + 1);
        let mut ws = ferrocim_spice::Workspace::with_solver(array.solver_config());
        for k in 0..=n {
            let (w, x) = mac_operands(n, k);
            let request = crate::MacRequest::new(&x).weights(&w).at(temp);
            let out = array.run_in(&request, &mut ws)?;
            per_mac.push(out.energy);
        }
        let average = Joule(per_mac.iter().map(|e| e.value()).sum::<f64>() / per_mac.len() as f64);
        let tops_per_watt = average.tops_per_watt(n as f64 + 1.0);
        Ok(EnergyReport {
            per_mac,
            average,
            tops_per_watt,
            latency: array.config().latency(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(levels: &[(f64, f64)]) -> RangeTable {
        RangeTable::from_ranges(
            levels
                .iter()
                .enumerate()
                .map(|(i, &(lo, hi))| OutputRange {
                    mac: i,
                    lo: Volt(lo),
                    hi: Volt(hi),
                })
                .collect(),
        )
    }

    #[test]
    fn nmr_matches_hand_calculation() {
        // Level 0: [0.00, 0.01], level 1: [0.02, 0.03]:
        // NMR_0 = (0.02 - 0.01) / (0.01 - 0.00) = 1.0.
        let t = table(&[(0.00, 0.01), (0.02, 0.03)]);
        assert!((t.nmr(0) - 1.0).abs() < 1e-9);
        assert!(!t.has_overlap());
    }

    #[test]
    fn overlap_gives_negative_nmr() {
        let t = table(&[(0.00, 0.02), (0.015, 0.03)]);
        assert!(t.nmr(0) < 0.0);
        assert!(t.has_overlap());
    }

    #[test]
    fn nmr_min_finds_the_worst_pair() {
        let t = table(&[(0.0, 0.01), (0.02, 0.03), (0.032, 0.04), (0.08, 0.09)]);
        let (idx, val) = t.nmr_min();
        assert_eq!(idx, 1); // gap 0.002 over width 0.01 → 0.2, the smallest
        assert!((val - 0.2).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "ranges must cover")]
    fn from_ranges_validates_order() {
        let _ = RangeTable::from_ranges(vec![OutputRange {
            mac: 3,
            lo: Volt(0.0),
            hi: Volt(1.0),
        }]);
    }

    #[test]
    fn zero_width_range_does_not_divide_by_zero() {
        let t = table(&[(0.01, 0.01), (0.02, 0.03)]);
        assert!(t.nmr(0).is_finite());
        assert!(t.nmr(0) > 0.0);
    }
}
