//! The proposed temperature-resilient 2T-1FeFET cell (the paper's
//! Fig. 5 and Sec. III-B).
//!
//! Topology per cell (all devices subthreshold at the read bias):
//!
//! ```text
//!   BL (1.2 V) ──┬─────────────┐
//!                │ d           │ d
//!               M1 g── A      FeFET g── WL
//!                │ s           │ s
//!               OUT            A
//!                │             │ d
//!               C_o           M2 g── OUT
//!                │             │ s
//!               GND           SL (0.2 V)
//! ```
//!
//! * The **FeFET** (gate on WL, source at internal node A) acts as a
//!   weight-gated pull-up of node A.
//! * **M2** (gate on OUT) pulls node A down toward SL.
//! * **M1** (gate on A) sources the cell's output current from BL into
//!   the output capacitor.
//!
//! The feedback ring of Sec. III-B: a temperature rise makes both the
//! FeFET and M2 conduct more, but M2's deeper subthreshold bias makes it
//! *more* temperature-sensitive, so node A *drops* as temperature rises.
//! The falling gate voltage of M1 cancels M1's own exponential
//! subthreshold temperature increase, flattening the cell's output
//! current across 0–85 °C. The W/L ratios of M1/M2/FeFET set the balance
//! and are the cell's tuning parameters ("the cell parameters, such as
//! the W/L ratio, … are tuned" — see [`crate::tune`]).

use crate::cells::{CellContext, CellDesign, CellOffsets};
use crate::{CimError, ReadBias};
use ferrocim_device::{Fefet, FefetParams, MosfetModel, MosfetParams, PolarizationState};
use ferrocim_spice::{Circuit, DcAnalysis, Element, NodeId};
use ferrocim_units::{Ampere, Celsius, Farad, Volt};
use serde::{Deserialize, Serialize};

/// Configuration of the proposed 2T-1FeFET cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TwoTransistorOneFefet {
    /// Read bias (the paper's BL = 1.2 V / SL = 0.2 V / WL = 0.35 V
    /// above SL).
    pub bias: ReadBias,
    /// The FeFET parameters (pull-up of node A).
    pub fefet: FefetParams,
    /// M1: the output transistor (gate at node A).
    pub m1: MosfetParams,
    /// M2: the feedback transistor (gate at OUT).
    pub m2: MosfetParams,
    /// Parasitic capacitance at internal node A (keeps array transients
    /// smooth; physically the gate/junction loading).
    pub c_node_a: Farad,
    /// Output-clamp voltage used by standalone current measurements
    /// (mimics the mid-charge condition of the array).
    pub v_out_probe: Volt,
    /// Where M2's source terminal connects. Grounding it (rather than
    /// tying it to the 0.2 V source line) parks node A near 0 V when the
    /// cell is off, which suppresses M1's idle leakage by e^(V_SL/nU_T)
    /// — the knob that makes the MAC=0 level temperature-stable.
    pub m2_source_grounded: bool,
}

impl TwoTransistorOneFefet {
    /// The tuned cell used throughout the paper reproduction.
    ///
    /// The geometry was found with [`crate::tune::ArrayTuneProblem`]'s
    /// multi-start coordinate search, maximizing the whole-row
    /// variation-aware `NMR_min` over 0–85 °C (the paper's Eq. (3)
    /// figure of merit) under the constraint that the FeFET read stays
    /// fully subthreshold (`low-V_TH > V_read`): a minimum-width FeFET
    /// pulled against a wide, grounded-source, high-`V_TH`-flavor M2
    /// (the feedback divider; the raised `V_TH` buys output swing)
    /// driving a low-`V_TH`-flavor M1.
    ///
    /// Measured on the default 8-cell array:
    /// `NMR_min(0–85 °C) = NMR_0 = 0.22` — numerically matching the
    /// paper's reported 0.22 at the same level index — with all nine
    /// MAC levels non-overlapping.
    pub fn paper_default() -> Self {
        let mut fefet = FefetParams::paper_default();
        fefet.channel = fefet.channel.with_wl_ratio(0.5);
        fefet.low_vt = Volt(0.37);
        TwoTransistorOneFefet {
            bias: ReadBias::paper_subthreshold(),
            fefet,
            m1: MosfetParams::nmos_14nm()
                .with_wl_ratio(18.3)
                .with_vth0(Volt(0.22)),
            m2: MosfetParams::nmos_14nm()
                .with_wl_ratio(120.0)
                .with_vth0(Volt(0.522)),
            c_node_a: Farad(0.2e-15),
            v_out_probe: Volt(0.25),
            m2_source_grounded: true,
        }
    }

    fn make_fefet(&self, weight: crate::cells::CellWeight, offset: Volt) -> Fefet {
        let mut f = Fefet::new(self.fefet.clone());
        match weight {
            crate::cells::CellWeight::Bit(bit) => f.force_state(PolarizationState::from_bit(bit)),
            analog => f.set_polarization(analog.polarization()),
        }
        f.set_vth_offset(offset);
        f
    }
}

impl CellDesign for TwoTransistorOneFefet {
    fn name(&self) -> &'static str {
        "2T-1FeFET"
    }

    fn bias(&self) -> ReadBias {
        self.bias
    }

    fn build_cell(&self, ckt: &mut Circuit, ctx: &CellContext<'_>) -> Result<(), CimError> {
        let a = ckt.node(&format!("cell{}_a", ctx.index));
        // FeFET pull-up of node A: drain at BL, source at A, gate at WL.
        let fefet = self.make_fefet(ctx.weight, ctx.offsets.fefet);
        ckt.add(Element::fefet(
            format!("F{}", ctx.index),
            ctx.bl,
            ctx.wl,
            a,
            fefet,
        ))?;
        // M2 pull-down of node A: drain at A, gate at OUT, source at SL
        // or ground depending on the configured variant.
        let m2_source = if self.m2_source_grounded {
            NodeId::GROUND
        } else {
            ctx.sl
        };
        ckt.add(Element::Mosfet {
            name: format!("M2_{}", ctx.index),
            drain: a,
            gate: ctx.out,
            source: m2_source,
            model: MosfetModel::new(self.m2.clone()),
            vth_offset: ctx.offsets.m2,
        })?;
        // M1 output device: drain at BL, gate at A, source at OUT.
        ckt.add(Element::Mosfet {
            name: format!("M1_{}", ctx.index),
            drain: ctx.bl,
            gate: a,
            source: ctx.out,
            model: MosfetModel::new(self.m1.clone()),
            vth_offset: ctx.offsets.m1,
        })?;
        // Parasitic loading of node A.
        ckt.add(Element::capacitor(
            format!("CA{}", ctx.index),
            a,
            NodeId::GROUND,
            self.c_node_a,
        ))?;
        Ok(())
    }

    fn read_current(
        &self,
        stored: bool,
        input: bool,
        temp: Celsius,
        offsets: &CellOffsets,
    ) -> Result<Ampere, CimError> {
        let mut ckt = Circuit::new();
        let bl = ckt.node("bl");
        let sl = ckt.node("sl");
        let wl = ckt.node("wl");
        let out = ckt.node("out");
        ckt.add(Element::vdc("VBL", bl, NodeId::GROUND, self.bias.v_bl))?;
        ckt.add(Element::vdc("VSL", sl, NodeId::GROUND, self.bias.v_sl))?;
        ckt.add(Element::vdc(
            "VWL",
            wl,
            NodeId::GROUND,
            self.bias.wl_for(input),
        ))?;
        ckt.add(Element::vdc("VOUT", out, NodeId::GROUND, self.v_out_probe))?;
        let ctx = CellContext {
            index: 0,
            bl,
            sl,
            wl,
            out,
            weight: crate::cells::CellWeight::Bit(stored),
            offsets,
        };
        self.build_cell(&mut ckt, &ctx)?;
        let op = DcAnalysis::new(&ckt).at(temp).solve()?;
        // The output current is what M1 pushes into the clamped OUT node.
        Ok(Ampere(op.source_current("VOUT")?.value()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::{current_fluctuation, normalized_current_curve, OneFefetOneR};
    use ferrocim_spice::sweep::{temperature_sweep, warm_temperature_sweep};

    const ROOM: Celsius = Celsius(27.0);

    #[test]
    fn product_truth_table() {
        let cell = TwoTransistorOneFefet::paper_default();
        let read = |s, i| {
            cell.read_current(s, i, ROOM, &CellOffsets::NOMINAL)
                .unwrap()
                .value()
                .abs()
        };
        let i11 = read(true, true);
        let i10 = read(true, false);
        let i01 = read(false, true);
        let i00 = read(false, false);
        assert!(
            i11 > 50.0 * i10.max(i01).max(i00),
            "i11 {i11} vs off currents {i10} {i01} {i00}"
        );
    }

    #[test]
    fn output_current_is_subthreshold_scale() {
        // Tens of nA — small enough for fJ-scale MAC energies.
        let cell = TwoTransistorOneFefet::paper_default();
        let i = cell
            .read_current(true, true, ROOM, &CellOffsets::NOMINAL)
            .unwrap()
            .value();
        assert!(i > 1e-9 && i < 5e-6, "output current {i}");
    }

    #[test]
    fn fluctuation_beats_the_subthreshold_baseline() {
        // The central claim of the paper (Fig. 7 vs Fig. 3b): the
        // proposed cell's worst-case fluctuation must be far below the
        // subthreshold 1FeFET-1R baseline.
        let temps = temperature_sweep(18);
        let ours =
            current_fluctuation(&TwoTransistorOneFefet::paper_default(), &temps, ROOM).unwrap();
        let baseline = current_fluctuation(&OneFefetOneR::subthreshold(), &temps, ROOM).unwrap();
        assert!(
            ours < 0.6 * baseline,
            "proposed {ours} must beat subthreshold baseline {baseline}"
        );
        assert!(ours < 0.35, "worst-case fluctuation {ours} (paper: 26.6 %)");
    }

    #[test]
    fn warm_range_fluctuation_is_smaller() {
        // Paper: 12.4 % over 20–85 °C vs 26.6 % over the full range.
        let full = current_fluctuation(
            &TwoTransistorOneFefet::paper_default(),
            &temperature_sweep(18),
            ROOM,
        )
        .unwrap();
        let warm = current_fluctuation(
            &TwoTransistorOneFefet::paper_default(),
            &warm_temperature_sweep(14),
            ROOM,
        )
        .unwrap();
        assert!(warm <= full + 1e-12, "warm {warm} vs full {full}");
    }

    #[test]
    fn normalized_curve_passes_through_one_at_reference() {
        let curve = normalized_current_curve(
            &TwoTransistorOneFefet::paper_default(),
            &[Celsius(0.0), ROOM, Celsius(85.0)],
            ROOM,
        )
        .unwrap();
        let at_ref = curve
            .iter()
            .find(|(t, _)| (t.value() - 27.0).abs() < 1e-9)
            .unwrap()
            .1;
        assert!((at_ref - 1.0).abs() < 1e-9);
    }

    #[test]
    fn feedback_node_a_drops_with_temperature() {
        // Verify the compensation mechanism directly: node A must move
        // downward as temperature rises (with OUT clamped).
        let cell = TwoTransistorOneFefet::paper_default();
        let probe = |temp| {
            let mut ckt = Circuit::new();
            let bl = ckt.node("bl");
            let sl = ckt.node("sl");
            let wl = ckt.node("wl");
            let out = ckt.node("out");
            ckt.add(Element::vdc("VBL", bl, NodeId::GROUND, cell.bias.v_bl))
                .unwrap();
            ckt.add(Element::vdc("VSL", sl, NodeId::GROUND, cell.bias.v_sl))
                .unwrap();
            ckt.add(Element::vdc("VWL", wl, NodeId::GROUND, cell.bias.v_wl_on))
                .unwrap();
            ckt.add(Element::vdc("VOUT", out, NodeId::GROUND, cell.v_out_probe))
                .unwrap();
            let ctx = CellContext {
                index: 0,
                bl,
                sl,
                wl,
                out,
                weight: crate::cells::CellWeight::Bit(true),
                offsets: &CellOffsets::NOMINAL,
            };
            cell.build_cell(&mut ckt, &ctx).unwrap();
            let op = DcAnalysis::new(&ckt).at(temp).solve().unwrap();
            op.voltage(ckt.find_node("cell0_a").unwrap()).value()
        };
        let a_cold = probe(Celsius(0.0));
        let a_hot = probe(Celsius(85.0));
        assert!(
            a_hot < a_cold,
            "node A must fall with temperature (cold {a_cold}, hot {a_hot})"
        );
    }

    #[test]
    fn variation_offsets_shift_output() {
        let cell = TwoTransistorOneFefet::paper_default();
        let nominal = cell
            .read_current(true, true, ROOM, &CellOffsets::NOMINAL)
            .unwrap()
            .value();
        let shifted = cell
            .read_current(
                true,
                true,
                ROOM,
                &CellOffsets {
                    m1: Volt(0.054),
                    ..CellOffsets::NOMINAL
                },
            )
            .unwrap()
            .value();
        assert!(shifted < nominal, "slower M1 must reduce output current");
    }
}
