//! CIM bit-cell designs.
//!
//! Three designs are implemented:
//!
//! * [`OneFefetOneR`] — the baseline 1FeFET-1R cell of Soliman et al.
//!   (IEDM'20), the paper's Fig. 2 reference structure, operable in the
//!   saturation region (`V_read = 1.3 V`) or scaled into subthreshold
//!   (`V_read = 0.35 V`).
//! * [`OneFefetOneT`] — the cascoded 1FeFET-1T cell of Sk et al.
//!   (TNANO'23), the variation-tolerant prior design of Table II.
//! * [`TwoTransistorOneFefet`] — the paper's proposed temperature-
//!   resilient 2T-1FeFET cell (Fig. 5), with the M1/M2 feedback ring.
//!
//! All three implement [`CellDesign`], which abstracts what the
//! [`crate::CimArray`] needs: build the cell into a netlist between the
//! shared rails, and measure a standalone output current.

mod one_fefet_one_r;
mod one_fefet_one_t;
mod two_t_one_fefet;

pub use one_fefet_one_r::OneFefetOneR;
pub use one_fefet_one_t::OneFefetOneT;
pub use two_t_one_fefet::TwoTransistorOneFefet;

use crate::{CimError, ReadBias};
use ferrocim_spice::{Circuit, NodeId};
use ferrocim_units::{Ampere, Celsius, Volt};
use serde::{Deserialize, Serialize};

/// Per-cell process-variation threshold offsets (one Monte-Carlo draw).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CellOffsets {
    /// FeFET threshold offset.
    pub fefet: Volt,
    /// M1 threshold offset (ignored by cells without an M1).
    pub m1: Volt,
    /// M2 threshold offset (ignored by cells without an M2).
    pub m2: Volt,
}

impl CellOffsets {
    /// The nominal (zero-variation) cell.
    pub const NOMINAL: CellOffsets = CellOffsets {
        fefet: Volt(0.0),
        m1: Volt(0.0),
        m2: Volt(0.0),
    };
}

/// A stored weight: binary (the paper's main mode) or an analog
/// multi-level polarization (the multi-bit extension in the spirit of
/// the cited 1FeFET multi-bit MAC design \[23\]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CellWeight {
    /// A binary weight: `true` programs low-`V_TH`.
    Bit(bool),
    /// Level `level` of `max` (0 = fully erased, `max` = fully
    /// programmed), stored as a partial polarization spread across the
    /// full memory window.
    Level {
        /// The stored level, `0..=max`.
        level: u8,
        /// The number of the highest level.
        max: u8,
    },
    /// An explicit polarization in `[-1, 1]` — the encoding-aware
    /// programming mode (e.g. packing analog levels near the low-`V_TH`
    /// edge where the subthreshold read has usable transconductance).
    Analog(f64),
}

impl CellWeight {
    /// The remanent polarization in `[-1, 1]` encoding this weight.
    pub fn polarization(self) -> f64 {
        match self {
            CellWeight::Bit(true) => 1.0,
            CellWeight::Bit(false) => -1.0,
            CellWeight::Level { level, max } => {
                assert!(max > 0 && level <= max, "level {level} of {max}");
                2.0 * level as f64 / max as f64 - 1.0
            }
            CellWeight::Analog(p) => p.clamp(-1.0, 1.0),
        }
    }

    /// The nearest binary interpretation.
    pub fn bit(self) -> bool {
        self.polarization() > 0.0
    }
}

impl From<bool> for CellWeight {
    fn from(bit: bool) -> Self {
        CellWeight::Bit(bit)
    }
}

/// Everything a cell needs to instantiate itself inside an array
/// netlist.
#[derive(Debug)]
pub struct CellContext<'a> {
    /// The cell's column index within the row (used to generate unique
    /// element names such as `F3`, `M1_3`).
    pub index: usize,
    /// Shared bit-line rail node.
    pub bl: NodeId,
    /// Shared source-line rail node.
    pub sl: NodeId,
    /// This cell's word-line node (driven by the input bit).
    pub wl: NodeId,
    /// This cell's output node (the `C_o` top plate).
    pub out: NodeId,
    /// The stored weight ('1' = low-`V_TH`, or an analog level).
    pub weight: CellWeight,
    /// This cell's variation offsets.
    pub offsets: &'a CellOffsets,
}

/// A CIM bit-cell design usable by [`crate::CimArray`].
pub trait CellDesign: std::fmt::Debug {
    /// A short human-readable design name (for reports).
    fn name(&self) -> &'static str;

    /// The read bias this design operates at.
    fn bias(&self) -> ReadBias;

    /// Adds this cell's devices to the netlist. The array provides the
    /// rails, the per-cell word line, and the output node; the cell adds
    /// its transistors/resistors (and any internal nodes, which must be
    /// named uniquely using `ctx.index`).
    ///
    /// # Errors
    ///
    /// Propagates netlist-construction failures.
    fn build_cell(&self, ckt: &mut Circuit, ctx: &CellContext<'_>) -> Result<(), CimError>;

    /// The standalone DC output current of one cell with its output node
    /// clamped at the design's probe voltage — the quantity plotted in
    /// the paper's Figs. 3 and 7.
    ///
    /// # Errors
    ///
    /// Propagates circuit-simulation failures.
    fn read_current(
        &self,
        stored: bool,
        input: bool,
        temp: Celsius,
        offsets: &CellOffsets,
    ) -> Result<Ampere, CimError>;
}

/// Measures the worst-case *normalized output-current fluctuation* of a
/// cell over a temperature sweep, relative to the reference temperature
/// (27 °C): `max_T |I(T)/I(27 °C) − 1|`.
///
/// This is the figure of merit of the paper's Figs. 3 and 7 (20.6 % for
/// the saturation baseline, 52.1 % subthreshold baseline, 26.6 % for the
/// proposed cell).
///
/// # Errors
///
/// Propagates simulation failures; returns
/// [`CimError::EmptySweep`] for an empty temperature list.
pub fn current_fluctuation<C: CellDesign + ?Sized>(
    cell: &C,
    temps: &[Celsius],
    reference: Celsius,
) -> Result<f64, CimError> {
    if temps.is_empty() {
        return Err(CimError::EmptySweep {
            what: "temperatures",
        });
    }
    let i_ref = cell
        .read_current(true, true, reference, &CellOffsets::NOMINAL)?
        .value();
    let mut worst = 0.0f64;
    for &t in temps {
        let i = cell
            .read_current(true, true, t, &CellOffsets::NOMINAL)?
            .value();
        worst = worst.max((i / i_ref - 1.0).abs());
    }
    Ok(worst)
}

/// The normalized output current `I(T)/I(reference)` over a sweep —
/// the full curve behind the paper's Figs. 3 and 7.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn normalized_current_curve<C: CellDesign + ?Sized>(
    cell: &C,
    temps: &[Celsius],
    reference: Celsius,
) -> Result<Vec<(Celsius, f64)>, CimError> {
    let i_ref = cell
        .read_current(true, true, reference, &CellOffsets::NOMINAL)?
        .value();
    temps
        .iter()
        .map(|&t| {
            let i = cell.read_current(true, true, t, &CellOffsets::NOMINAL)?;
            Ok((t, i.value() / i_ref))
        })
        .collect()
}
