//! The 1FeFET-1T cell (Sk et al., TNANO'23 — Table II row [19]):
//! a FeFET cascoded by a current-limiting transistor.
//!
//! Topology per cell:
//!
//! ```text
//!  BL ──d[FeFET]s──d[T]s── OUT (→ C_o in array mode)
//!           g          g
//!           │          │
//!          WL        V_cas (fixed cascode bias)
//! ```
//!
//! The cascode transistor saturates at a bias-set current, so the cell
//! output is limited by the *transistor*, not the FeFET — which is how
//! the original design buys variation tolerance ("current limiting
//! transistor cascoded FeFET memory array for variation tolerant
//! vector-matrix multiplication"). The paper under reproduction cites
//! it as the closest prior subthreshold-capable FeFET design; like the
//! 1FeFET-1R baseline it has no temperature compensation, so its
//! subthreshold read drifts with the cascode's own `I_D(T)`.

use crate::cells::{CellContext, CellDesign, CellOffsets, CellWeight};
use crate::{CimError, ReadBias};
use ferrocim_device::{Fefet, FefetParams, MosfetModel, MosfetParams, PolarizationState};
use ferrocim_spice::{Circuit, DcAnalysis, Element, NodeId};
use ferrocim_units::{Ampere, Celsius, Volt};
use serde::{Deserialize, Serialize};

/// Configuration of the 1FeFET-1T cascode cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OneFefetOneT {
    /// Read bias.
    pub bias: ReadBias,
    /// The FeFET parameters.
    pub fefet: FefetParams,
    /// The cascode (current-limiter) transistor.
    pub cascode: MosfetParams,
    /// The fixed cascode gate bias.
    pub v_cascode: Volt,
    /// Output-clamp voltage for standalone current measurements.
    pub v_out_probe: Volt,
}

impl OneFefetOneT {
    /// A subthreshold operating point comparable to the other baselines:
    /// the same FeFET, a near-minimum cascode biased so the limited
    /// current lands in the tens-of-nA MAC regime.
    pub fn subthreshold() -> Self {
        OneFefetOneT {
            bias: ReadBias::baseline_subthreshold(),
            fefet: FefetParams::paper_default(),
            cascode: MosfetParams::nmos_14nm().with_wl_ratio(2.0),
            v_cascode: Volt(0.32),
            v_out_probe: Volt(0.0),
        }
    }

    fn make_fefet(&self, weight: CellWeight, offset: Volt) -> Fefet {
        let mut f = Fefet::new(self.fefet.clone());
        match weight {
            CellWeight::Bit(bit) => f.force_state(PolarizationState::from_bit(bit)),
            analog => f.set_polarization(analog.polarization()),
        }
        f.set_vth_offset(offset);
        f
    }
}

impl CellDesign for OneFefetOneT {
    fn name(&self) -> &'static str {
        "1FeFET-1T"
    }

    fn bias(&self) -> ReadBias {
        self.bias
    }

    fn build_cell(&self, ckt: &mut Circuit, ctx: &CellContext<'_>) -> Result<(), CimError> {
        let mid = ckt.node(&format!("cell{}_mid", ctx.index));
        let cas = ckt.node(&format!("cell{}_cas", ctx.index));
        ckt.add(Element::vdc(
            format!("VCAS{}", ctx.index),
            cas,
            NodeId::GROUND,
            self.v_cascode,
        ))?;
        let fefet = self.make_fefet(ctx.weight, ctx.offsets.fefet);
        ckt.add(Element::fefet(
            format!("F{}", ctx.index),
            ctx.bl,
            ctx.wl,
            mid,
            fefet,
        ))?;
        // The cascode's threshold offset reuses the M1 variation slot.
        ckt.add(Element::Mosfet {
            name: format!("T{}", ctx.index),
            drain: mid,
            gate: cas,
            source: ctx.out,
            model: MosfetModel::new(self.cascode.clone()),
            vth_offset: ctx.offsets.m1,
        })?;
        Ok(())
    }

    fn read_current(
        &self,
        stored: bool,
        input: bool,
        temp: Celsius,
        offsets: &CellOffsets,
    ) -> Result<Ampere, CimError> {
        let mut ckt = Circuit::new();
        let bl = ckt.node("bl");
        let wl = ckt.node("wl");
        let out = ckt.node("out");
        ckt.add(Element::vdc("VBL", bl, NodeId::GROUND, self.bias.v_bl))?;
        ckt.add(Element::vdc(
            "VWL",
            wl,
            NodeId::GROUND,
            self.bias.wl_for(input),
        ))?;
        ckt.add(Element::vdc("VOUT", out, NodeId::GROUND, self.v_out_probe))?;
        let ctx = CellContext {
            index: 0,
            bl,
            sl: NodeId::GROUND,
            wl,
            out,
            weight: CellWeight::Bit(stored),
            offsets,
        };
        self.build_cell(&mut ckt, &ctx)?;
        let op = DcAnalysis::new(&ckt).at(temp).solve()?;
        Ok(Ampere(op.source_current("VOUT")?.value()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::{current_fluctuation, OneFefetOneR, TwoTransistorOneFefet};
    use ferrocim_spice::sweep::temperature_sweep;

    const ROOM: Celsius = Celsius(27.0);

    #[test]
    fn product_truth_table() {
        let cell = OneFefetOneT::subthreshold();
        let read = |s, i| {
            cell.read_current(s, i, ROOM, &CellOffsets::NOMINAL)
                .unwrap()
                .value()
                .abs()
        };
        let i11 = read(true, true);
        assert!(
            i11 > 1e2
                * read(true, false)
                    .max(read(false, true))
                    .max(read(false, false)),
            "on current must dominate"
        );
    }

    #[test]
    fn cascode_limits_variation_but_not_temperature() {
        // The design's claim: FeFET V_TH variation is attenuated by the
        // cascode compared to the resistor baseline...
        let cascode = OneFefetOneT::subthreshold();
        let resistor = OneFefetOneR::subthreshold();
        let spread = |cell: &dyn CellDesign| {
            let nominal = cell
                .read_current(true, true, ROOM, &CellOffsets::NOMINAL)
                .unwrap()
                .value();
            let slow = cell
                .read_current(
                    true,
                    true,
                    ROOM,
                    &CellOffsets {
                        fefet: Volt(0.054),
                        ..CellOffsets::NOMINAL
                    },
                )
                .unwrap()
                .value();
            (nominal / slow - 1.0).abs()
        };
        assert!(
            spread(&cascode) < spread(&resistor),
            "cascode {} vs resistor {}",
            spread(&cascode),
            spread(&resistor)
        );
        // ...but its temperature drift stays baseline-class (no
        // compensation), far above the proposed cell's.
        let temps = temperature_sweep(10);
        let drift = current_fluctuation(&cascode, &temps, ROOM).unwrap();
        let proposed =
            current_fluctuation(&TwoTransistorOneFefet::paper_default(), &temps, ROOM).unwrap();
        assert!(
            drift > 1.5 * proposed,
            "cascode drift {drift} vs proposed {proposed}"
        );
    }

    #[test]
    fn output_current_is_cascode_limited() {
        // Doubling the FeFET width barely moves the output current
        // because the cascode sets the limit.
        let cell = OneFefetOneT::subthreshold();
        let mut wide = cell.clone();
        wide.fefet.channel = wide
            .fefet
            .channel
            .clone()
            .with_wl_ratio(2.0 * cell.fefet.channel.wl_ratio());
        let i1 = cell
            .read_current(true, true, ROOM, &CellOffsets::NOMINAL)
            .unwrap()
            .value();
        let i2 = wide
            .read_current(true, true, ROOM, &CellOffsets::NOMINAL)
            .unwrap()
            .value();
        assert!(
            (i2 / i1 - 1.0).abs() < 0.25,
            "cascode-limited current moved {i1} -> {i2}"
        );
    }
}
