//! The baseline 1FeFET-1R cell (Soliman et al., IEDM'20 — the paper's
//! Fig. 2 reference design).
//!
//! Topology per cell:
//!
//! ```text
//!  BL ──d[FeFET]s── R ── OUT (→ C_o in array mode)
//!            g
//!            │
//!           WL  (V_read when input = '1')
//! ```
//!
//! The resistor sits in the FeFET's source path, so it both converts the
//! cell current into the output-capacitor charge and provides source
//! degeneration. In the *saturation* read (`V_read = 1.3 V`) the drop
//! across R dominates and linearizes the cell — modest temperature
//! drift (paper: 20.6 %). Scaling the read into *subthreshold*
//! (`V_read = 0.35 V`) removes that protection: the exponential
//! `I_D(T)` of the FeFET shows through (paper: 52.1 %), which is the
//! failure mode motivating the 2T-1FeFET design.

use crate::cells::{CellContext, CellDesign, CellOffsets};
use crate::{CimError, ReadBias};
use ferrocim_device::{Fefet, FefetParams, PolarizationState};
use ferrocim_spice::{Circuit, DcAnalysis, Element, NodeId};
use ferrocim_units::{Ampere, Celsius, Ohm, Volt};
use serde::{Deserialize, Serialize};

/// Configuration of the baseline 1FeFET-1R cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OneFefetOneR {
    /// Read bias (saturation or subthreshold).
    pub bias: ReadBias,
    /// The FeFET device parameters.
    pub fefet: FefetParams,
    /// The series resistor.
    pub resistance: Ohm,
    /// Output-clamp voltage used by standalone current measurements.
    pub v_out_probe: Volt,
}

impl OneFefetOneR {
    /// The original operating point: `V_read = 1.3 V` (saturation).
    pub fn saturation() -> Self {
        OneFefetOneR {
            bias: ReadBias::baseline_saturation(),
            fefet: FefetParams::paper_default(),
            resistance: Ohm(250e3),
            v_out_probe: Volt(0.0),
        }
    }

    /// The voltage-scaled operating point: `V_read = 0.35 V`
    /// (subthreshold), as analyzed in the paper's Sec. III-A.
    pub fn subthreshold() -> Self {
        OneFefetOneR {
            bias: ReadBias::baseline_subthreshold(),
            ..Self::saturation()
        }
    }

    fn make_fefet(&self, weight: crate::cells::CellWeight, offset: Volt) -> Fefet {
        let mut f = Fefet::new(self.fefet.clone());
        match weight {
            crate::cells::CellWeight::Bit(bit) => f.force_state(PolarizationState::from_bit(bit)),
            analog => f.set_polarization(analog.polarization()),
        }
        f.set_vth_offset(offset);
        f
    }
}

impl CellDesign for OneFefetOneR {
    fn name(&self) -> &'static str {
        "1FeFET-1R"
    }

    fn bias(&self) -> ReadBias {
        self.bias
    }

    fn build_cell(&self, ckt: &mut Circuit, ctx: &CellContext<'_>) -> Result<(), CimError> {
        let mid = ckt.node(&format!("cell{}_mid", ctx.index));
        let fefet = self.make_fefet(ctx.weight, ctx.offsets.fefet);
        ckt.add(Element::fefet(
            format!("F{}", ctx.index),
            ctx.bl,
            ctx.wl,
            mid,
            fefet,
        ))?;
        ckt.add(Element::resistor(
            format!("R{}", ctx.index),
            mid,
            ctx.out,
            self.resistance,
        ))?;
        Ok(())
    }

    fn read_current(
        &self,
        stored: bool,
        input: bool,
        temp: Celsius,
        offsets: &CellOffsets,
    ) -> Result<Ampere, CimError> {
        let mut ckt = Circuit::new();
        let bl = ckt.node("bl");
        let wl = ckt.node("wl");
        let out = ckt.node("out");
        ckt.add(Element::vdc("VBL", bl, NodeId::GROUND, self.bias.v_bl))?;
        ckt.add(Element::vdc(
            "VWL",
            wl,
            NodeId::GROUND,
            self.bias.wl_for(input),
        ))?;
        // Clamp the output node and measure the current flowing into it.
        ckt.add(Element::vdc("VOUT", out, NodeId::GROUND, self.v_out_probe))?;
        let ctx = CellContext {
            index: 0,
            bl,
            sl: NodeId::GROUND,
            wl,
            out,
            weight: crate::cells::CellWeight::Bit(stored),
            offsets,
        };
        self.build_cell(&mut ckt, &ctx)?;
        let op = DcAnalysis::new(&ckt).at(temp).solve()?;
        // Current delivered *into* the clamp = cell output current.
        Ok(Ampere(op.source_current("VOUT")?.value()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::current_fluctuation;
    use ferrocim_spice::sweep::temperature_sweep;

    const ROOM: Celsius = Celsius(27.0);

    #[test]
    fn product_truth_table() {
        let cell = OneFefetOneR::subthreshold();
        let on = |s, i| {
            cell.read_current(s, i, ROOM, &CellOffsets::NOMINAL)
                .unwrap()
                .value()
                .abs()
        };
        let i11 = on(true, true);
        let i10 = on(true, false);
        let i01 = on(false, true);
        let i00 = on(false, false);
        assert!(
            i11 > 1e3 * i10.max(i01).max(i00),
            "i11 {i11} others {i10} {i01} {i00}"
        );
    }

    #[test]
    fn saturation_read_is_much_larger_than_subthreshold() {
        let sat = OneFefetOneR::saturation();
        let sub = OneFefetOneR::subthreshold();
        let i_sat = sat
            .read_current(true, true, ROOM, &CellOffsets::NOMINAL)
            .unwrap()
            .value();
        let i_sub = sub
            .read_current(true, true, ROOM, &CellOffsets::NOMINAL)
            .unwrap()
            .value();
        assert!(i_sat / i_sub > 3.0, "sat {i_sat} vs sub {i_sub}");
    }

    #[test]
    fn subthreshold_fluctuation_far_exceeds_saturation() {
        // The paper's headline baseline comparison (Fig. 3):
        // 20.6 % (saturation) vs 52.1 % (subthreshold).
        let temps = temperature_sweep(18);
        let sat = current_fluctuation(&OneFefetOneR::saturation(), &temps, ROOM).unwrap();
        let sub = current_fluctuation(&OneFefetOneR::subthreshold(), &temps, ROOM).unwrap();
        assert!(
            sub > 1.8 * sat,
            "subthreshold fluctuation {sub} must dwarf saturation {sat}"
        );
        assert!(
            sat < 0.35,
            "saturation fluctuation unreasonably large: {sat}"
        );
        assert!(
            sub > 0.30,
            "subthreshold fluctuation implausibly small: {sub}"
        );
    }

    #[test]
    fn current_rises_with_temperature_in_subthreshold() {
        let cell = OneFefetOneR::subthreshold();
        let i_cold = cell
            .read_current(true, true, Celsius(0.0), &CellOffsets::NOMINAL)
            .unwrap()
            .value();
        let i_hot = cell
            .read_current(true, true, Celsius(85.0), &CellOffsets::NOMINAL)
            .unwrap()
            .value();
        assert!(i_hot > i_cold);
    }

    #[test]
    fn vth_offset_changes_current() {
        let cell = OneFefetOneR::subthreshold();
        let nominal = cell
            .read_current(true, true, ROOM, &CellOffsets::NOMINAL)
            .unwrap()
            .value();
        let slow = cell
            .read_current(
                true,
                true,
                ROOM,
                &CellOffsets {
                    fefet: Volt(0.054),
                    ..CellOffsets::NOMINAL
                },
            )
            .unwrap()
            .value();
        assert!(slow < nominal);
    }
}
