//! Error type for CIM construction and measurement.

use ferrocim_spice::SpiceError;
use std::fmt;

/// Errors produced by CIM cells, arrays, and measurements.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CimError {
    /// An underlying circuit-simulation error.
    Spice(SpiceError),
    /// A configuration value was out of range.
    InvalidConfig {
        /// The parameter name.
        name: &'static str,
        /// The rejected value.
        value: f64,
        /// What the parameter must satisfy.
        requirement: &'static str,
    },
    /// `weights` and `inputs` slices had different lengths, or did not
    /// match the array's configured cells-per-row.
    MismatchedOperands {
        /// Length of the weights slice.
        weights: usize,
        /// Length of the inputs slice.
        inputs: usize,
        /// The array's configured row width.
        cells_per_row: usize,
    },
    /// A measurement needed at least one temperature / MAC level but got
    /// an empty sweep.
    EmptySweep {
        /// Which sweep was empty.
        what: &'static str,
    },
}

impl fmt::Display for CimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CimError::Spice(e) => write!(f, "circuit simulation failed: {e}"),
            CimError::InvalidConfig {
                name,
                value,
                requirement,
            } => write!(f, "cim config `{name}` = {value} must be {requirement}"),
            CimError::MismatchedOperands {
                weights,
                inputs,
                cells_per_row,
            } => write!(
                f,
                "operand lengths (weights {weights}, inputs {inputs}) must both equal cells_per_row {cells_per_row}"
            ),
            CimError::EmptySweep { what } => write!(f, "empty sweep: {what}"),
        }
    }
}

impl std::error::Error for CimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CimError::Spice(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SpiceError> for CimError {
    fn from(e: SpiceError) -> Self {
        CimError::Spice(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_spice_errors_with_source() {
        use std::error::Error as _;
        let e = CimError::from(SpiceError::SingularMatrix { row: 1 });
        assert!(e.source().is_some());
        assert!(e.to_string().contains("circuit simulation failed"));
    }

    #[test]
    fn mismatch_message_names_all_three_lengths() {
        let e = CimError::MismatchedOperands {
            weights: 7,
            inputs: 8,
            cells_per_row: 8,
        };
        let s = e.to_string();
        assert!(s.contains('7') && s.contains('8'));
    }
}
