//! Integration tests of the crossbar tile against the row-level API and
//! the write-verify programming path.

use ferrocim_cim::cells::{CellOffsets, CellWeight, TwoTransistorOneFefet};
use ferrocim_cim::program::{write_verify_row, WriteVerifyConfig};
use ferrocim_cim::{mac_operands, ArrayConfig, CimArray, Crossbar, MacPath, MacRequest};
use ferrocim_units::{Celsius, Second, Volt};

const ROOM: Celsius = Celsius(27.0);

fn fast_config() -> ArrayConfig {
    ArrayConfig {
        dt: Second(50e-12),
        ..ArrayConfig::paper_default()
    }
}

#[test]
fn crossbar_rows_agree_with_direct_array_macs() {
    let array = CimArray::new(TwoTransistorOneFefet::paper_default(), fast_config()).unwrap();
    let mut xbar = Crossbar::new(array.clone(), 2).unwrap();
    let (w, _) = mac_operands(8, 6);
    xbar.program_row(0, &w).unwrap();
    let inputs = [true, false, true, true, false, true, true, true];
    let out = xbar.matvec(&inputs, ROOM).unwrap();
    // Direct row-level evaluation of the same operands.
    let offsets = vec![CellOffsets::NOMINAL; 8];
    let direct = array
        .run(
            &MacRequest::new(&inputs)
                .weights(&w)
                .at(ROOM)
                .offsets(&offsets)
                .path(MacPath::Analytic),
        )
        .unwrap();
    assert!((out.analog[0].value() - direct.v_acc.value()).abs() < 1e-12);
    assert_eq!(out.digital[0], direct.expected);
}

#[test]
fn verify_then_matvec_survives_heavy_variation() {
    // A ±2σ-skewed row misreads raw but reads correctly after the
    // write-verify trim.
    let array = CimArray::new(TwoTransistorOneFefet::paper_default(), fast_config()).unwrap();
    let adc = ferrocim_cim::transfer::Adc::calibrate(&array, ROOM).unwrap();
    let (w, x) = mac_operands(8, 5);
    let weights: Vec<CellWeight> = w.iter().map(|&b| CellWeight::Bit(b)).collect();
    let skew = [0.10, -0.10, 0.08, -0.09, 0.11, -0.08, 0.09, -0.11];
    let raw: Vec<CellOffsets> = skew
        .iter()
        .map(|&mv| CellOffsets {
            fefet: Volt(mv),
            ..CellOffsets::NOMINAL
        })
        .collect();
    let raw_out = array
        .run(
            &MacRequest::new(&x)
                .weights(&w)
                .at(ROOM)
                .offsets(&raw)
                .path(MacPath::Analytic),
        )
        .unwrap();
    let raw_read = adc.quantize(raw_out.v_acc);
    let (trimmed, outcomes) =
        write_verify_row(array.cell(), &weights, &raw, &WriteVerifyConfig::default()).unwrap();
    assert!(outcomes.iter().all(|o| o.converged));
    let verified_out = array
        .run(
            &MacRequest::new(&x)
                .weights(&w)
                .at(ROOM)
                .offsets(&trimmed)
                .path(MacPath::Analytic),
        )
        .unwrap();
    let verified_read = adc.quantize(verified_out.v_acc);
    assert_eq!(verified_read, 5, "verified row must read the true MAC");
    // The raw row with this skew pattern lands at least as far away.
    assert!(verified_read.abs_diff(5) <= raw_read.abs_diff(5));
}

#[test]
fn packed_analog_levels_are_distinct_rows_in_a_crossbar() {
    let array = CimArray::new(TwoTransistorOneFefet::paper_default(), fast_config()).unwrap();
    let mut xbar = Crossbar::new(array, 2).unwrap();
    xbar.program_row_levels(0, &[CellWeight::Analog(1.0); 8])
        .unwrap();
    xbar.program_row_levels(1, &[CellWeight::Analog(0.9); 8])
        .unwrap();
    let out = xbar.matvec(&[true; 8], ROOM).unwrap();
    assert!(
        out.analog[0].value() > out.analog[1].value() + 1e-3,
        "P=1.0 and P=0.9 rows must be analog-distinguishable: {:?}",
        out.analog
    );
}
