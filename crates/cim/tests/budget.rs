//! Budget and cancellation behaviour of the batched CIM executors.

use ferrocim_cim::cells::TwoTransistorOneFefet;
use ferrocim_cim::{ArrayConfig, ArrayEngine, CimArray, CimError, Crossbar};
use ferrocim_spice::{Budget, CancelToken, FailurePolicy, FanOutError, JobError, SpiceError};
use ferrocim_units::{Celsius, Second};

const ROOM: Celsius = Celsius(27.0);

fn small_array() -> CimArray<TwoTransistorOneFefet> {
    let config = ArrayConfig {
        cells_per_row: 4,
        dt: Second(50e-12),
        ..ArrayConfig::paper_default()
    };
    CimArray::new(TwoTransistorOneFefet::paper_default(), config).unwrap()
}

#[test]
fn cancelled_token_aborts_a_mac_batch() {
    let array = small_array();
    let engine = ArrayEngine::new(&array, &[true; 4]).unwrap().sequential();
    let token = CancelToken::new();
    token.cancel();
    let engine = engine.with_budget(Budget::unlimited().with_cancel_token(&token));
    let err = engine
        .mac_batch(&[vec![true; 4], vec![false; 4]], ROOM)
        .unwrap_err();
    assert!(
        matches!(err, CimError::Spice(SpiceError::Cancelled)),
        "{err}"
    );
}

#[test]
fn step_budget_bounds_a_mac_batch() {
    let array = small_array();
    let engine = ArrayEngine::new(&array, &[true; 4]).unwrap().sequential();
    // One MAC fits (the job charge plus its transient steps), a batch
    // of distinct inputs does not.
    let engine = engine.with_budget(Budget::unlimited().with_max_steps(1));
    let inputs: Vec<Vec<bool>> = (0..3).map(|k| (0..4).map(|i| i < k).collect()).collect();
    let err = engine.mac_batch(&inputs, ROOM).unwrap_err();
    assert!(
        matches!(err, CimError::Spice(SpiceError::BudgetExceeded { .. })),
        "{err}"
    );
}

#[test]
fn try_mac_batch_reports_budget_failures_per_policy() {
    let array = small_array();
    let token = CancelToken::new();
    token.cancel();
    let engine = ArrayEngine::new(&array, &[true; 4])
        .unwrap()
        .sequential()
        .with_budget(Budget::unlimited().with_cancel_token(&token));
    // Under SkipAndReport a cancelled batch surfaces per-job typed
    // failures rather than panicking or hanging.
    let report = engine
        .try_mac_batch(
            &[vec![true; 4]],
            ROOM,
            &FailurePolicy::SkipAndReport {
                max_failures: usize::MAX,
            },
        )
        .unwrap();
    assert_eq!(report.failures, 1);
    assert!(matches!(
        report.results[0],
        Err(JobError::Failed(CimError::Spice(SpiceError::Cancelled)))
    ));
    // FailFast turns the same failure into a batch error.
    let err = engine
        .try_mac_batch(&[vec![true; 4]], ROOM, &FailurePolicy::FailFast)
        .unwrap_err();
    assert!(matches!(err, FanOutError::Job { .. }));
}

#[test]
fn cancelled_token_aborts_a_crossbar_matvec() {
    let config = ArrayConfig {
        dt: Second(50e-12),
        ..ArrayConfig::paper_default()
    };
    let array = CimArray::new(TwoTransistorOneFefet::paper_default(), config).unwrap();
    let xbar = Crossbar::new(array, 2).unwrap();
    let token = CancelToken::new();
    token.cancel();
    let xbar = xbar.with_budget(Budget::unlimited().with_cancel_token(&token));
    let err = xbar.matvec(&[true; 8], ROOM).unwrap_err();
    assert!(
        matches!(err, CimError::Spice(SpiceError::Cancelled)),
        "{err}"
    );
    let err = xbar.matvec_batch(&[vec![true; 8]], ROOM).unwrap_err();
    assert!(
        matches!(err, CimError::Spice(SpiceError::Cancelled)),
        "{err}"
    );
}

#[test]
fn unlimited_budget_leaves_batch_results_unchanged() {
    let array = small_array();
    let engine = ArrayEngine::new(&array, &[true; 4]).unwrap();
    let inputs: Vec<Vec<bool>> = (0..3).map(|k| (0..4).map(|i| i < k).collect()).collect();
    let plain = engine.mac_batch(&inputs, ROOM).unwrap();
    let governed = engine
        .clone()
        .with_budget(Budget::unlimited())
        .mac_batch(&inputs, ROOM)
        .unwrap();
    assert_eq!(plain, governed);
}
