//! Property-based tests of the CIM layer: metric algebra and the
//! physical invariants of the charge-domain MAC.

use ferrocim_cim::metrics::{OutputRange, RangeTable};
use ferrocim_cim::{ArrayConfig, ReadBias};
use ferrocim_units::{Farad, Second, Volt};
use proptest::prelude::*;

/// Builds a valid ascending range table from positive gaps/widths.
fn table_from(widths: &[f64], gaps: &[f64]) -> RangeTable {
    let mut lo = 0.0;
    let mut ranges = Vec::new();
    for (i, w) in widths.iter().enumerate() {
        ranges.push(OutputRange {
            mac: i,
            lo: Volt(lo),
            hi: Volt(lo + w),
        });
        if i < gaps.len() {
            lo += w + gaps[i];
        }
    }
    RangeTable::from_ranges(ranges)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// NMR_i is positive exactly when the inter-level gap is positive,
    /// and scales linearly with the gap.
    #[test]
    fn nmr_sign_matches_gap_sign(
        (widths, gaps) in (2usize..10).prop_flat_map(|n| (
            prop::collection::vec(1e-4f64..1e-2, n),
            prop::collection::vec(-5e-3f64..5e-3, n - 1),
        )),
    ) {
        let table = table_from(&widths, &gaps);
        for (i, &gap) in gaps.iter().enumerate() {
            let nmr = table.nmr(i);
            prop_assert_eq!(nmr > 0.0, gap > 0.0, "level {} gap {} nmr {}", i, gap, nmr);
            // Eq. (2): NMR_i = gap / width_i exactly.
            prop_assert!((nmr - gap / widths[i]).abs() < 1e-9);
        }
    }

    /// NMR_min picks the global minimum and `has_overlap` agrees with
    /// its sign.
    #[test]
    fn nmr_min_is_the_minimum(
        (widths, gaps) in (3usize..9).prop_flat_map(|n| (
            prop::collection::vec(1e-4f64..1e-2, n),
            prop::collection::vec(-5e-3f64..5e-3, n - 1),
        )),
    ) {
        let table = table_from(&widths, &gaps);
        let (idx, val) = table.nmr_min();
        for i in 0..table.max_mac() {
            prop_assert!(table.nmr(i) >= val - 1e-15);
        }
        prop_assert!((table.nmr(idx) - val).abs() < 1e-15);
        prop_assert_eq!(table.has_overlap(), val < 0.0);
    }

    /// The charge-sharing gain of Eq. (1) is in (0, 1) and decreases
    /// with larger accumulation capacitors.
    #[test]
    fn sharing_gain_bounds(
        n in 1usize..32,
        c_o in 0.1f64..10.0,   // fF
        c_acc in 0.1f64..50.0, // fF
    ) {
        let config = ArrayConfig {
            cells_per_row: n,
            c_o: Farad(c_o * 1e-15),
            c_acc: Farad(c_acc * 1e-15),
            t_charge: Second(5e-9),
            t_settle: Second(0.4e-9),
            t_share: Second(1.5e-9),
            dt: Second(20e-12),
        };
        let g = config.sharing_gain();
        prop_assert!(g > 0.0 && g < 1.0, "gain {g}");
        let bigger = ArrayConfig {
            c_acc: Farad(2.0 * c_acc * 1e-15),
            ..config
        };
        prop_assert!(bigger.sharing_gain() < g);
        // Eq. (1) exactly: C_o / (n·C_o + C_acc).
        let expected = c_o / (n as f64 * c_o + c_acc);
        prop_assert!((g - expected).abs() < 1e-12);
    }

    /// Read-bias helper: the WL voltage reflects the input bit, and the
    /// read voltage is the on-level minus the source-line level.
    #[test]
    fn read_bias_algebra(
        v_sl in 0.0f64..0.5,
        v_read in 0.1f64..1.5,
    ) {
        let bias = ReadBias {
            v_bl: Volt(1.2),
            v_sl: Volt(v_sl),
            v_wl_on: Volt(v_sl + v_read),
            v_wl_off: Volt(0.0),
        };
        prop_assert!((bias.v_read().value() - v_read).abs() < 1e-12);
        prop_assert_eq!(bias.wl_for(true), bias.v_wl_on);
        prop_assert_eq!(bias.wl_for(false), bias.v_wl_off);
    }
}

mod batch {
    use ferrocim_cim::cells::TwoTransistorOneFefet;
    use ferrocim_cim::{ArrayConfig, ArrayEngine, CimArray, MacPath, MacRequest};
    use ferrocim_units::{Celsius, Second};
    use proptest::prelude::*;

    proptest! {
        // Full transients are expensive; a handful of random batches
        // over a small row already exercises the dedupe, retarget, and
        // scatter paths.
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// `ArrayEngine::mac_batch` must agree with looping
        /// `CimArray::run` over the same jobs to 1e-12 (they are in
        /// fact bitwise identical) for any weights, inputs — with
        /// duplicates — and temperature.
        #[test]
        fn mac_batch_matches_per_call_runs(
            weights in prop::collection::vec(any::<bool>(), 4),
            inputs in prop::collection::vec(prop::collection::vec(any::<bool>(), 4), 1..4),
            dup in 0usize..3,
            temp_c in prop::sample::select(vec![0.0, 27.0, 85.0]),
        ) {
            let config = ArrayConfig {
                cells_per_row: 4,
                dt: Second(100e-12),
                ..ArrayConfig::paper_default()
            };
            let array =
                CimArray::new(TwoTransistorOneFefet::paper_default(), config).unwrap();
            // Duplicate one job so the dedupe path always runs.
            let mut inputs = inputs;
            inputs.push(inputs[dup % inputs.len()].clone());
            let temp = Celsius(temp_c);
            let engine = ArrayEngine::new(&array, &weights).unwrap();
            let batch = engine.mac_batch(&inputs, temp).unwrap();
            prop_assert_eq!(batch.len(), inputs.len());
            for (x, got) in inputs.iter().zip(&batch) {
                let solo = array
                    .run(
                        &MacRequest::new(x)
                            .weights(&weights)
                            .at(temp)
                            .path(MacPath::Transient),
                    )
                    .unwrap();
                prop_assert!(
                    (got.v_acc.value() - solo.v_acc.value()).abs() < 1e-12,
                    "v_acc {} vs {}", got.v_acc.value(), solo.v_acc.value()
                );
                prop_assert!(
                    (got.energy.value() - solo.energy.value()).abs()
                        < 1e-12 * solo.energy.value().abs().max(1e-30),
                    "energy {} vs {}", got.energy.value(), solo.energy.value()
                );
                prop_assert_eq!(got, &solo);
            }
        }
    }
}
