//! Telemetry consistency: the counts an [`Aggregator`] accumulates from
//! an instrumented run must match, bitwise, the reports the simulator
//! returns about that same run (`StepReport`, `RescueReport`,
//! `FanOutReport`) — and per-thread aggregators merged after a parallel
//! fan-out must equal the single shared-aggregator total.

use ferrocim_device::{MosfetModel, MosfetParams};
use ferrocim_spice::{
    fan_out, Circuit, DcAnalysis, Element, FailurePolicy, MonteCarlo, NewtonOptions, NodeId,
    TransientAnalysis, Waveform,
};
use ferrocim_telemetry::{Aggregator, Event, Telemetry};
use ferrocim_units::{Farad, Ohm, Second, Volt};
use std::sync::{Arc, Mutex};

/// A pulsed RC divider: the fast edges force the adaptive controller to
/// shrink and re-grow its step, so the run has both accepted and
/// rejected steps to count.
fn pulsed_rc() -> Circuit {
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let out = ckt.node("out");
    ckt.add(Element::vsource(
        "V1",
        a,
        NodeId::GROUND,
        Waveform::Pulse {
            v0: Volt(0.0),
            v1: Volt(1.0),
            delay: Second(0.2e-9),
            rise: Second(5e-12),
            width: Second(1e-9),
            fall: Second(5e-12),
        },
    ))
    .unwrap();
    ckt.add(Element::resistor("R1", a, out, Ohm(1e3))).unwrap();
    ckt.add(Element::capacitor("C1", out, NodeId::GROUND, Farad(1e-12)))
        .unwrap();
    ckt
}

/// A 3 V rail through 10 kΩ into two stacked diode-connected NMOS:
/// travel-limited for plain Newton under a small iteration budget, so
/// the default rescue ladder must climb (same stack as the
/// `failure_injection` suite).
fn travel_limited_stack() -> Circuit {
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let d = ckt.node("d");
    let m = ckt.node("m");
    ckt.add(Element::vdc("VDD", vdd, NodeId::GROUND, Volt(3.0)))
        .unwrap();
    ckt.add(Element::resistor("R", vdd, d, Ohm(1e4))).unwrap();
    ckt.add(Element::mosfet(
        "M1",
        d,
        d,
        m,
        MosfetModel::new(MosfetParams::nmos_14nm()),
    ))
    .unwrap();
    ckt.add(Element::mosfet(
        "M2",
        m,
        m,
        NodeId::GROUND,
        MosfetModel::new(MosfetParams::nmos_14nm()),
    ))
    .unwrap();
    ckt
}

#[test]
fn adaptive_transient_counts_match_the_step_report() {
    let agg = Arc::new(Aggregator::new());
    let ckt = pulsed_rc();
    let res = TransientAnalysis::over(&ckt, Second(3e-9))
        .with_recorder(Telemetry::new(agg.clone()))
        .run()
        .expect("pulsed RC is benign");
    let report = res.step_report();
    let counts = agg.counts();
    assert!(report.accepted > 0);
    assert_eq!(counts.steps_accepted, report.accepted as u64);
    assert_eq!(counts.steps_rejected, report.rejected as u64);
    assert_eq!(counts.rescues_succeeded, report.rescued as u64);
    // Every accepted step converged at least one Newton solve, and a
    // converged solve records at least one iteration.
    assert!(counts.newton_converged >= counts.steps_accepted);
    assert!(counts.newton_iters >= counts.newton_converged);
}

#[test]
fn rescued_dc_solve_counts_match_the_rescue_report() {
    let agg = Arc::new(Aggregator::new());
    let ckt = travel_limited_stack();
    let op = DcAnalysis::new(&ckt)
        .with_options(NewtonOptions {
            max_iterations: 8,
            ..NewtonOptions::default()
        })
        .with_recorder(Telemetry::new(agg.clone()))
        .solve()
        .expect("the ladder rescues the solve");
    let report = op.rescue_report();
    assert!(report.was_rescued());
    let counts = agg.counts();
    // One RescueAttempt event per recorded rung attempt, and exactly
    // the final one succeeded.
    assert_eq!(counts.rescue_attempts, report.attempts.len() as u64);
    assert_eq!(
        counts.rescues_succeeded,
        report.attempts.iter().filter(|a| a.converged).count() as u64
    );
    assert_eq!(counts.rescues_succeeded, 1);
}

#[test]
fn parallel_monte_carlo_counts_match_the_fan_out_report() {
    const RUNS: usize = 24;
    let agg = Arc::new(Aggregator::new());
    let report = MonteCarlo::new(RUNS, 0xBEEF)
        .with_recorder(Telemetry::new(agg.clone()))
        .try_run(
            &FailurePolicy::SkipAndReport { max_failures: RUNS },
            |run, _rng| {
                if (run + 1).is_multiple_of(4) {
                    Err(format!("synthetic failure in run {run}"))
                } else {
                    Ok(run as f64)
                }
            },
        )
        .expect("SkipAndReport tolerates the failures");
    let counts = agg.counts();
    assert_eq!(counts.mc_runs_started, RUNS as u64);
    assert_eq!(counts.mc_runs_failed, report.failures as u64);
    assert_eq!(counts.mc_runs_ok, (RUNS - report.failures) as u64);
}

#[test]
fn merged_per_thread_aggregators_equal_the_shared_total() {
    const JOBS: usize = 64;
    // Per-worker aggregators: each fan-out thread records into its own
    // (created by `init`, registered in the shared list), so no event
    // crosses a thread boundary until the final merge.
    let locals: Mutex<Vec<Arc<Aggregator>>> = Mutex::new(Vec::new());
    let emit = |tele: &Telemetry, job: usize| {
        tele.record(&Event::McRunStarted { run: job as u64 });
        tele.record(&Event::NewtonConverged { iterations: 3 });
        tele.record(&Event::McRunDone {
            run: job as u64,
            ok: !job.is_multiple_of(3),
        });
    };
    fan_out(
        JOBS,
        true,
        || {
            let agg = Arc::new(Aggregator::new());
            locals.lock().expect("no poison").push(agg.clone());
            Telemetry::new(agg)
        },
        |tele, job| emit(tele, job),
    );
    let merged = Aggregator::new();
    for local in locals.lock().expect("no poison").iter() {
        merged.merge_from(local);
    }

    // Reference: the same event stream recorded into one shared
    // aggregator sequentially.
    let shared = Arc::new(Aggregator::new());
    let tele = Telemetry::new(shared.clone());
    for job in 0..JOBS {
        emit(&tele, job);
    }

    assert_eq!(merged.counts(), shared.counts());
    assert_eq!(merged.counts().mc_runs_started, JOBS as u64);
    assert_eq!(
        merged.newton_histogram().counts(),
        shared.newton_histogram().counts()
    );
    assert_eq!(merged.newton_histogram().total(), JOBS as u64);
}

#[test]
fn mc_fleet_reuses_one_symbolic_analysis_across_runs() {
    use ferrocim_spice::{SolverConfig, Workspace};
    use rand::Rng as _;
    // A fixed-topology resistor ladder, wide enough that the sparse
    // backend has real work to analyze. Every Monte-Carlo run perturbs
    // only element *values*, so the pattern — and therefore the one
    // symbolic analysis — must be shared by the whole fleet.
    let n = 12;
    let mut base = Circuit::new();
    let nodes: Vec<NodeId> = (0..n).map(|i| base.node(&format!("n{i}"))).collect();
    base.add(Element::vdc("V1", nodes[0], NodeId::GROUND, Volt(1.0)))
        .unwrap();
    for i in 0..n {
        let next = if i + 1 < n {
            nodes[i + 1]
        } else {
            NodeId::GROUND
        };
        base.add(Element::resistor(format!("R{i}"), nodes[i], next, Ohm(1e3)))
            .unwrap();
    }
    let agg = Arc::new(Aggregator::new());
    let tele = Telemetry::new(agg.clone());
    let ws = Mutex::new(Workspace::with_solver(SolverConfig::sparse()));
    let runs = 16;
    let fleet = MonteCarlo::new(runs, 0xfe_f37)
        .sequential()
        .with_recorder(tele.clone());
    let outs = fleet.run(|_run, rng| {
        let mut ckt = base.clone();
        for i in 0..n {
            if let Some(Element::Resistor { resistance, .. }) = ckt.element_mut(&format!("R{i}")) {
                *resistance = Ohm(1e3 * (1.0 + 0.2 * rng.random::<f64>()));
            }
        }
        let mut ws = ws.lock().expect("no poisoned lock");
        DcAnalysis::new(&ckt)
            .with_recorder(tele.clone())
            .solve_in(&mut ws)
            .expect("a resistor ladder converges")
            .voltage(nodes[n - 1])
            .value()
    });
    assert_eq!(outs.len(), runs);
    let counts = agg.counts();
    // At least one linear solve per run happened through the recorder…
    assert!(counts.solver_solves >= runs as u64);
    // …but the symbolic analysis ran exactly once for the entire fleet.
    assert_eq!(counts.solver_symbolic, 1);
    let ws = ws.into_inner().expect("no poisoned lock");
    assert_eq!(
        ws.sparse_factor_counts(),
        Some((1, counts.solver_solves)),
        "workspace factor counters must match the telemetry view"
    );
}
