//! Property-based tests of the circuit solver: physical invariants that
//! must hold for *any* valid circuit, not just hand-picked examples.

use ferrocim_spice::{Circuit, DcAnalysis, Element, NodeId, SwitchSchedule, TransientAnalysis};
use ferrocim_units::{Celsius, Farad, Ohm, Second, Volt};
use proptest::prelude::*;

/// Builds a random resistor network: `n` internal nodes, a source on
/// node 1, and a set of resistor edges guaranteeing connectivity (a
/// chain plus random chords).
fn resistor_network(n: usize, chord_targets: &[usize], resistances: &[f64], v_src: f64) -> Circuit {
    let mut ckt = Circuit::new();
    let nodes: Vec<NodeId> = (0..n).map(|i| ckt.node(&format!("n{i}"))).collect();
    ckt.add(Element::vdc("V1", nodes[0], NodeId::GROUND, Volt(v_src)))
        .expect("add source");
    let mut r_iter = resistances.iter().cycle();
    // Chain guaranteeing connectivity to ground.
    for i in 0..n {
        let next = if i + 1 < n {
            nodes[i + 1]
        } else {
            NodeId::GROUND
        };
        ckt.add(Element::resistor(
            format!("Rchain{i}"),
            nodes[i],
            next,
            Ohm(*r_iter.next().expect("cycle")),
        ))
        .expect("add chain resistor");
    }
    // Random chords.
    for (k, &target) in chord_targets.iter().enumerate() {
        let a = nodes[k % n];
        let b = if target % (n + 1) == n {
            NodeId::GROUND
        } else {
            nodes[target % (n + 1)]
        };
        if a == b {
            continue;
        }
        ckt.add(Element::resistor(
            format!("Rchord{k}"),
            a,
            b,
            Ohm(*r_iter.next().expect("cycle")),
        ))
        .expect("add chord resistor");
    }
    ckt
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// KCL: at the solved operating point of any resistor network, the
    /// net current into every non-source node is (near) zero.
    #[test]
    fn kcl_holds_at_dc_solution(
        n in 2usize..8,
        chords in prop::collection::vec(0usize..9, 0..6),
        rs in prop::collection::vec(1e2f64..1e6, 4..10),
        v in -2.0f64..2.0,
    ) {
        let ckt = resistor_network(n, &chords, &rs, v);
        let op = DcAnalysis::new(&ckt).solve().expect("dc");
        // For every internal node, sum resistor currents.
        for i in 1..n {
            let node = ckt.find_node(&format!("n{i}")).expect("node exists");
            let vn = op.voltage(node).value();
            let mut net = 0.0;
            for e in ckt.elements() {
                if let Element::Resistor { a, b, resistance, .. } = e {
                    if *a == node {
                        net += (vn - op.voltage(*b).value()) / resistance.value();
                    } else if *b == node {
                        net += (vn - op.voltage(*a).value()) / resistance.value();
                    }
                }
            }
            prop_assert!(net.abs() < 1e-9 + 1e-6 * vn.abs(), "node n{i} residual {net}");
        }
    }

    /// Superposition: doubling the only source doubles every node
    /// voltage in a linear network.
    #[test]
    fn linear_network_scales_with_source(
        n in 2usize..6,
        chords in prop::collection::vec(0usize..7, 0..4),
        rs in prop::collection::vec(1e3f64..1e5, 4..8),
        v in 0.1f64..2.0,
    ) {
        let ckt1 = resistor_network(n, &chords, &rs, v);
        let ckt2 = resistor_network(n, &chords, &rs, 2.0 * v);
        let op1 = DcAnalysis::new(&ckt1).solve().expect("dc1");
        let op2 = DcAnalysis::new(&ckt2).solve().expect("dc2");
        for i in 0..n {
            let node = ckt1.find_node(&format!("n{i}")).expect("node");
            let v1 = op1.voltage(node).value();
            let v2 = op2.voltage(node).value();
            prop_assert!((v2 - 2.0 * v1).abs() < 1e-9 + 1e-6 * v1.abs());
        }
    }

    /// Charge conservation: sharing between two floating capacitors
    /// preserves total charge for any initial voltages and sizes.
    #[test]
    fn charge_sharing_conserves_charge(
        v1 in -1.0f64..1.0,
        v2 in -1.0f64..1.0,
        c1 in 0.5f64..4.0, // fF
        c2 in 0.5f64..4.0,
    ) {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        let (c1, c2) = (c1 * 1e-15, c2 * 1e-15);
        ckt.add(Element::Capacitor {
            name: "C1".into(),
            a,
            b: NodeId::GROUND,
            capacitance: Farad(c1),
            initial: Some(Volt(v1)),
        }).expect("add");
        ckt.add(Element::Capacitor {
            name: "C2".into(),
            a: b,
            b: NodeId::GROUND,
            capacitance: Farad(c2),
            initial: Some(Volt(v2)),
        }).expect("add");
        ckt.add(Element::switch(
            "S",
            a,
            b,
            SwitchSchedule::open().then_at(Second(0.5e-9), true),
        )).expect("add");
        let res = TransientAnalysis::over(&ckt, Second(4e-9)).with_fixed_step(Second(2e-12))
            .at(Celsius(27.0))
            .run()
            .expect("transient");
        let q_before = c1 * v1 + c2 * v2;
        let q_after = c1 * res.final_voltage(a).value() + c2 * res.final_voltage(b).value();
        prop_assert!(
            (q_after - q_before).abs() < 1e-17 + 0.02 * q_before.abs(),
            "charge {q_before} -> {q_after}"
        );
        // And both plates equalized.
        prop_assert!((res.final_voltage(a).value() - res.final_voltage(b).value()).abs() < 5e-3);
    }

    /// The transient of a driven RC settles to the DC solution.
    #[test]
    fn transient_settles_to_dc(
        r in 1e2f64..1e4,
        c in 0.1f64..2.0, // pF
        v in 0.1f64..1.5,
    ) {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.add(Element::vdc("V1", vin, NodeId::GROUND, Volt(v))).expect("add");
        ckt.add(Element::resistor("R", vin, out, Ohm(r))).expect("add");
        ckt.add(Element::Capacitor {
            name: "C".into(),
            a: out,
            b: NodeId::GROUND,
            capacitance: Farad(c * 1e-12),
            initial: Some(Volt(0.0)),
        }).expect("add");
        let tau = r * c * 1e-12;
        let res = TransientAnalysis::over(&ckt, Second(10.0 * tau)).with_fixed_step(Second(tau / 50.0))
            .run()
            .expect("transient");
        let dc = DcAnalysis::new(&ckt).solve().expect("dc");
        prop_assert!(
            (res.final_voltage(out).value() - dc.voltage(out).value()).abs() < 0.01 * v,
            "transient {} vs dc {}",
            res.final_voltage(out).value(),
            dc.voltage(out).value()
        );
    }
}

mod continuation {
    use ferrocim_device::{MosfetModel, MosfetParams};
    use ferrocim_spice::sweep::voltage_sweep;
    use ferrocim_spice::{Circuit, DcAnalysis, DcSweep, Element, NodeId, Waveform};
    use ferrocim_units::{Ohm, Volt};
    use proptest::prelude::*;

    /// A transistor with a resistive load — nonlinear enough that the
    /// Newton iteration actually works for its answer.
    fn transistor_load(r_load: f64, vdd: f64, vg: f64) -> Circuit {
        let mut ckt = Circuit::new();
        let vdd_n = ckt.node("vdd");
        let g = ckt.node("g");
        let d = ckt.node("d");
        ckt.add(Element::vdc("VDD", vdd_n, NodeId::GROUND, Volt(vdd)))
            .unwrap();
        ckt.add(Element::vdc("VG", g, NodeId::GROUND, Volt(vg)))
            .unwrap();
        ckt.add(Element::resistor("RL", vdd_n, d, Ohm(r_load)))
            .unwrap();
        ckt.add(Element::mosfet(
            "M1",
            d,
            g,
            NodeId::GROUND,
            MosfetModel::new(MosfetParams::nmos_14nm()),
        ))
        .unwrap();
        ckt
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Warm-started continuation must not change where Newton
        /// lands: every point of a `DcSweep` equals a from-scratch
        /// cold solve of the same circuit.
        #[test]
        fn warm_started_sweep_lands_on_cold_start_points(
            r_load in 1e3f64..1e6,
            vdd in 0.4f64..1.2,
            v_stop in 0.3f64..1.0,
            steps in 3usize..12,
        ) {
            let ckt = transistor_load(r_load, vdd, 0.0);
            let points = DcSweep::new(&ckt, "VG", voltage_sweep(Volt(0.0), Volt(v_stop), steps))
                .solve()
                .unwrap();
            prop_assert_eq!(points.len(), steps);
            let d = ckt.find_node("d").unwrap();
            for (vg, warm_op) in &points {
                // Cold reference: fresh circuit, fresh analysis, no
                // warm start, allocating solve path.
                let mut cold_ckt = ckt.clone();
                if let Some(Element::VoltageSource { waveform, .. }) =
                    cold_ckt.element_mut("VG")
                {
                    *waveform = Waveform::dc(*vg);
                }
                let cold_op = DcAnalysis::new(&cold_ckt).solve().unwrap();
                let dv = (warm_op.voltage(d).value() - cold_op.voltage(d).value()).abs();
                prop_assert!(
                    dv < 1e-9,
                    "warm vs cold diverged by {} V at VG = {} V", dv, vg.value()
                );
            }
        }
    }
}

mod fault_tolerant_fan_out {
    use super::*;
    use ferrocim_spice::{FailurePolicy, FanOutError, JobError, MonteCarlo, SpiceError};
    use rand::rngs::StdRng;
    use rand::Rng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// For every failure policy and failure pattern, the jobs that
        /// succeed under `try_run` produce results bitwise identical to
        /// a plain `run` with the same seed: fault tolerance must never
        /// perturb healthy work.
        #[test]
        fn try_run_successes_match_run_bitwise(
            runs in 1usize..12,
            seed in any::<u64>(),
            fail_mask in prop::collection::vec(any::<bool>(), 12),
            policy_kind in 0u8..3,
            parallel in any::<bool>(),
        ) {
            let mut mc = MonteCarlo::new(runs, seed);
            if !parallel {
                mc = mc.sequential();
            }
            let clean: Vec<f64> = mc.run(|_, rng| rng.random::<f64>());
            let policy = match policy_kind {
                0 => FailurePolicy::FailFast,
                1 => FailurePolicy::SkipAndReport { max_failures: runs },
                _ => FailurePolicy::Substitute(f64::NEG_INFINITY),
            };
            let job = |run: usize, rng: &mut StdRng| -> Result<f64, SpiceError> {
                // Draw before deciding to fail, so failing jobs consume
                // the same stream prefix as their healthy counterparts.
                let v = rng.random::<f64>();
                if fail_mask[run] {
                    Err(SpiceError::NoConvergence {
                        iterations: 1,
                        residual: 1.0,
                    })
                } else {
                    Ok(v)
                }
            };
            let first_failure = fail_mask[..runs].iter().position(|&f| f);
            match mc.try_run(&policy, job) {
                Ok(report) => {
                    prop_assert_eq!(report.results.len(), runs);
                    prop_assert_eq!(
                        report.failures,
                        fail_mask[..runs].iter().filter(|&&f| f).count()
                    );
                    for run in 0..runs {
                        if fail_mask[run] {
                            match &policy {
                                FailurePolicy::Substitute(fallback) => prop_assert_eq!(
                                    report.results[run].as_ref().ok().map(|v| v.to_bits()),
                                    Some(fallback.to_bits())
                                ),
                                _ => prop_assert!(matches!(
                                    report.results[run],
                                    Err(JobError::Failed(SpiceError::NoConvergence { .. }))
                                )),
                            }
                        } else {
                            // The healthy job's value is bit-for-bit the
                            // plain run's value.
                            prop_assert_eq!(
                                report.results[run].as_ref().ok().map(|v| v.to_bits()),
                                Some(clean[run].to_bits())
                            );
                        }
                    }
                    if matches!(policy, FailurePolicy::FailFast) {
                        prop_assert_eq!(first_failure, None);
                    }
                }
                Err(FanOutError::Job { index, .. }) => {
                    prop_assert!(matches!(policy, FailurePolicy::FailFast));
                    prop_assert_eq!(Some(index), first_failure);
                }
                Err(e) => prop_assert!(false, "unexpected batch error {e}"),
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Backend parity: the sparse KLU-style solver and the dense LU
    /// reference must agree to 1e-10 max-norm on any random network —
    /// including resistances spanning nine decades and extra voltage
    /// sources, whose zero-diagonal branch rows are the pathological
    /// pivot case the sparse factorization must pivot through just
    /// like the dense one.
    #[test]
    fn sparse_and_dense_backends_agree_on_random_networks(
        n in 2usize..10,
        chords in prop::collection::vec(0usize..11, 0..8),
        rs in prop::collection::vec(1e0f64..1e9, 4..12),
        v in -2.0f64..2.0,
        tie in 0usize..7,
    ) {
        use ferrocim_spice::{FillOrdering, SolverConfig};
        let mut ckt = resistor_network(n, &chords, &rs, v);
        // A second source on an internal node adds another branch row
        // (zero diagonal) somewhere in the middle of the matrix.
        if n >= 3 {
            let a = ckt
                .find_node(&format!("n{}", 1 + tie % (n - 1)))
                .expect("node exists");
            ckt.add(Element::vdc("V2", a, NodeId::GROUND, Volt(0.25 * v)))
                .expect("add second source");
        }
        let dense = DcAnalysis::new(&ckt)
            .with_solver(SolverConfig::dense())
            .solve()
            .expect("dense dc");
        for ordering in [FillOrdering::MinDegree, FillOrdering::Natural] {
            for parallel in [false, true] {
                let config = SolverConfig::sparse()
                    .with_ordering(ordering)
                    .with_parallel_blocks(parallel);
                let sparse = DcAnalysis::new(&ckt)
                    .with_solver(config)
                    .solve()
                    .expect("sparse dc");
                for i in 0..n {
                    let node = ckt.find_node(&format!("n{i}")).expect("node");
                    let dv = (dense.voltage(node).value()
                        - sparse.voltage(node).value())
                        .abs();
                    prop_assert!(
                        dv <= 1e-10,
                        "node n{i} disagrees by {dv:e} ({ordering:?}, parallel {parallel})"
                    );
                }
            }
        }
    }
}
