//! Failure-injection tests: degenerate circuits and hostile inputs must
//! produce typed errors (or well-defined fallbacks), never panics.

use ferrocim_spice::{
    Circuit, DcAnalysis, Element, NewtonOptions, NodeId, SpiceError, TransientAnalysis,
};
use ferrocim_units::{Celsius, Farad, Ohm, Second, Volt};

#[test]
fn floating_node_is_rescued_by_gmin() {
    // A node connected only through a capacitor has no DC path; the
    // built-in GMIN leak must keep the matrix solvable.
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let b = ckt.node("b");
    ckt.add(Element::vdc("V1", a, NodeId::GROUND, Volt(1.0)))
        .unwrap();
    ckt.add(Element::capacitor("C1", a, b, Farad(1e-15)))
        .unwrap();
    let op = DcAnalysis::new(&ckt)
        .solve()
        .expect("gmin rescues the float");
    assert!(op.voltage(b).value().abs() < 1.5);
}

#[test]
fn voltage_source_loop_is_singular() {
    // Two ideal sources forcing different voltages across the same pair
    // of nodes → contradictory constraints → singular system.
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    ckt.add(Element::vdc("V1", a, NodeId::GROUND, Volt(1.0)))
        .unwrap();
    ckt.add(Element::vdc("V2", a, NodeId::GROUND, Volt(2.0)))
        .unwrap();
    let err = DcAnalysis::new(&ckt).solve().unwrap_err();
    assert!(matches!(err, SpiceError::SingularMatrix { .. }), "{err}");
}

#[test]
fn impossible_iteration_budget_reports_no_convergence() {
    use ferrocim_device::{MosfetModel, MosfetParams};
    // A nonlinear circuit with a 1-iteration budget cannot converge.
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let d = ckt.node("d");
    ckt.add(Element::vdc("VDD", vdd, NodeId::GROUND, Volt(1.2)))
        .unwrap();
    ckt.add(Element::resistor("R", vdd, d, Ohm(1e5))).unwrap();
    ckt.add(Element::mosfet(
        "M1",
        d,
        d,
        NodeId::GROUND,
        MosfetModel::new(MosfetParams::nmos_14nm()),
    ))
    .unwrap();
    let options = NewtonOptions {
        max_iterations: 1,
        ..NewtonOptions::default()
    };
    let err = DcAnalysis::new(&ckt)
        .with_options(options)
        .solve()
        .unwrap_err();
    assert!(
        matches!(err, SpiceError::NoConvergence { iterations: 1, .. }),
        "{err}"
    );
}

#[test]
fn empty_circuit_solves_trivially() {
    let ckt = Circuit::new();
    let op = DcAnalysis::new(&ckt).solve().expect("empty system");
    assert_eq!(op.voltage(NodeId::GROUND), Volt(0.0));
}

#[test]
fn transient_rejects_nan_timestep() {
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    ckt.add(Element::vdc("V1", a, NodeId::GROUND, Volt(1.0)))
        .unwrap();
    let err = TransientAnalysis::new(&ckt, Second(f64::NAN), Second(1e-9))
        .run()
        .unwrap_err();
    assert!(matches!(err, SpiceError::InvalidValue { .. }));
}

#[test]
fn extreme_temperatures_do_not_break_the_solver() {
    use ferrocim_device::{Fefet, FefetParams, PolarizationState};
    let mut ckt = Circuit::new();
    let bl = ckt.node("bl");
    let wl = ckt.node("wl");
    let out = ckt.node("out");
    ckt.add(Element::vdc("VBL", bl, NodeId::GROUND, Volt(1.2)))
        .unwrap();
    ckt.add(Element::vdc("VWL", wl, NodeId::GROUND, Volt(0.35)))
        .unwrap();
    ckt.add(Element::resistor("R", bl, out, Ohm(2.5e5)))
        .unwrap();
    let mut f = Fefet::new(FefetParams::paper_default());
    f.force_state(PolarizationState::LowVt);
    ckt.add(Element::fefet("F1", out, wl, NodeId::GROUND, f))
        .unwrap();
    // Well outside the paper's range, still must converge cleanly.
    for t in [-40.0, 125.0] {
        let op = DcAnalysis::new(&ckt)
            .at(Celsius(t))
            .solve()
            .expect("solves");
        assert!(op.voltage(out).value().is_finite());
    }
}

#[test]
fn duplicate_and_unknown_probes_are_typed_errors() {
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    ckt.add(Element::vdc("V1", a, NodeId::GROUND, Volt(1.0)))
        .unwrap();
    assert!(matches!(
        ckt.add(Element::vdc("V1", a, NodeId::GROUND, Volt(2.0))),
        Err(SpiceError::DuplicateElement { .. })
    ));
    let op = DcAnalysis::new(&ckt).solve().unwrap();
    assert!(matches!(
        op.source_current("VX"),
        Err(SpiceError::UnknownElement { .. })
    ));
}
