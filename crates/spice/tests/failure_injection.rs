//! Failure-injection tests: degenerate circuits and hostile inputs must
//! produce typed errors (or well-defined fallbacks), never panics.

use ferrocim_spice::{
    Circuit, DcAnalysis, Element, FailurePolicy, FanOutError, JobError, MonteCarlo, NewtonOptions,
    NodeId, RescuePolicy, RescueRung, SpiceError, TransientAnalysis, Waveform,
};
use ferrocim_units::{Ampere, Celsius, Farad, Ohm, Second, Volt};
use rand::Rng;

#[test]
fn floating_node_is_rescued_by_gmin() {
    // A node connected only through a capacitor has no DC path; the
    // built-in GMIN leak must keep the matrix solvable.
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let b = ckt.node("b");
    ckt.add(Element::vdc("V1", a, NodeId::GROUND, Volt(1.0)))
        .unwrap();
    ckt.add(Element::capacitor("C1", a, b, Farad(1e-15)))
        .unwrap();
    let op = DcAnalysis::new(&ckt)
        .solve()
        .expect("gmin rescues the float");
    assert!(op.voltage(b).value().abs() < 1.5);
}

#[test]
fn voltage_source_loop_is_singular() {
    // Two ideal sources forcing different voltages across the same pair
    // of nodes → contradictory constraints → singular system.
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    ckt.add(Element::vdc("V1", a, NodeId::GROUND, Volt(1.0)))
        .unwrap();
    ckt.add(Element::vdc("V2", a, NodeId::GROUND, Volt(2.0)))
        .unwrap();
    let err = DcAnalysis::new(&ckt).solve().unwrap_err();
    assert!(matches!(err, SpiceError::SingularMatrix { .. }), "{err}");
}

#[test]
fn impossible_iteration_budget_reports_no_convergence() {
    use ferrocim_device::{MosfetModel, MosfetParams};
    // A nonlinear circuit with a 1-iteration budget cannot converge.
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let d = ckt.node("d");
    ckt.add(Element::vdc("VDD", vdd, NodeId::GROUND, Volt(1.2)))
        .unwrap();
    ckt.add(Element::resistor("R", vdd, d, Ohm(1e5))).unwrap();
    ckt.add(Element::mosfet(
        "M1",
        d,
        d,
        NodeId::GROUND,
        MosfetModel::new(MosfetParams::nmos_14nm()),
    ))
    .unwrap();
    let options = NewtonOptions {
        max_iterations: 1,
        ..NewtonOptions::default()
    };
    let err = DcAnalysis::new(&ckt)
        .with_options(options)
        .solve()
        .unwrap_err();
    assert!(
        matches!(err, SpiceError::NoConvergence { iterations: 1, .. }),
        "{err}"
    );
}

#[test]
fn empty_circuit_solves_trivially() {
    let ckt = Circuit::new();
    let op = DcAnalysis::new(&ckt).solve().expect("empty system");
    assert_eq!(op.voltage(NodeId::GROUND), Volt(0.0));
}

#[test]
fn transient_rejects_nan_timestep() {
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    ckt.add(Element::vdc("V1", a, NodeId::GROUND, Volt(1.0)))
        .unwrap();
    let err = TransientAnalysis::over(&ckt, Second(1e-9))
        .with_fixed_step(Second(f64::NAN))
        .run()
        .unwrap_err();
    assert!(matches!(err, SpiceError::InvalidValue { .. }));
}

#[test]
fn extreme_temperatures_do_not_break_the_solver() {
    use ferrocim_device::{Fefet, FefetParams, PolarizationState};
    let mut ckt = Circuit::new();
    let bl = ckt.node("bl");
    let wl = ckt.node("wl");
    let out = ckt.node("out");
    ckt.add(Element::vdc("VBL", bl, NodeId::GROUND, Volt(1.2)))
        .unwrap();
    ckt.add(Element::vdc("VWL", wl, NodeId::GROUND, Volt(0.35)))
        .unwrap();
    ckt.add(Element::resistor("R", bl, out, Ohm(2.5e5)))
        .unwrap();
    let mut f = Fefet::new(FefetParams::paper_default());
    f.force_state(PolarizationState::LowVt);
    ckt.add(Element::fefet("F1", out, wl, NodeId::GROUND, f))
        .unwrap();
    // Well outside the paper's range, still must converge cleanly.
    for t in [-40.0, 125.0] {
        let op = DcAnalysis::new(&ckt)
            .at(Celsius(t))
            .solve()
            .expect("solves");
        assert!(op.voltage(out).value().is_finite());
    }
}

#[test]
fn non_finite_source_values_are_rejected_at_add() {
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    assert!(matches!(
        ckt.add(Element::vdc("VN", a, NodeId::GROUND, Volt(f64::NAN))),
        Err(SpiceError::InvalidValue { .. })
    ));
    assert!(matches!(
        ckt.add(Element::vdc("VI", a, NodeId::GROUND, Volt(f64::INFINITY))),
        Err(SpiceError::InvalidValue { .. })
    ));
    assert!(matches!(
        ckt.add(Element::CurrentSource {
            name: "IN".into(),
            pos: a,
            neg: NodeId::GROUND,
            current: Ampere(f64::NAN),
        }),
        Err(SpiceError::InvalidValue { .. })
    ));
    // The rejected elements must not have been half-added.
    assert!(ckt
        .add(Element::vdc("VN", a, NodeId::GROUND, Volt(1.0)))
        .is_ok());
}

#[test]
fn pwl_waveforms_validate_their_points() {
    assert!(matches!(
        Waveform::pwl(vec![(Second(0.0), Volt(f64::NAN))]),
        Err(SpiceError::InvalidValue { .. })
    ));
    assert!(matches!(
        Waveform::pwl(vec![(Second(f64::NAN), Volt(0.0))]),
        Err(SpiceError::InvalidValue { .. })
    ));
    assert!(matches!(
        Waveform::pwl(vec![(Second(1e-9), Volt(0.0)), (Second(0.5e-9), Volt(1.0))]),
        Err(SpiceError::InvalidValue { .. })
    ));
    assert!(Waveform::pwl(vec![(Second(0.0), Volt(0.0)), (Second(1e-9), Volt(1.0))]).is_ok());
}

/// A 3 V rail through 10 kΩ into two stacked diode-connected NMOS: with
/// the default 0.2 V/iteration step clamp, plain Newton from the zero
/// guess is travel-limited and cannot converge within a small budget.
fn travel_limited_stack() -> (Circuit, NodeId) {
    use ferrocim_device::{MosfetModel, MosfetParams};
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let d = ckt.node("d");
    let m = ckt.node("m");
    ckt.add(Element::vdc("VDD", vdd, NodeId::GROUND, Volt(3.0)))
        .unwrap();
    ckt.add(Element::resistor("R", vdd, d, Ohm(1e4))).unwrap();
    ckt.add(Element::mosfet(
        "M1",
        d,
        d,
        m,
        MosfetModel::new(MosfetParams::nmos_14nm()),
    ))
    .unwrap();
    ckt.add(Element::mosfet(
        "M2",
        m,
        m,
        NodeId::GROUND,
        MosfetModel::new(MosfetParams::nmos_14nm()),
    ))
    .unwrap();
    (ckt, d)
}

#[test]
fn rescue_ladder_recovers_what_plain_newton_cannot() {
    let (ckt, d) = travel_limited_stack();
    let options = NewtonOptions {
        max_iterations: 8,
        ..NewtonOptions::default()
    };
    // With the ladder disabled, the iteration-starved solve fails.
    let err = DcAnalysis::new(&ckt)
        .with_options(options)
        .with_rescue(RescuePolicy::none())
        .solve()
        .unwrap_err();
    assert!(matches!(err, SpiceError::NoConvergence { .. }), "{err}");
    // The default policy escalates through the ladder and converges.
    let op = DcAnalysis::new(&ckt)
        .with_options(options)
        .solve()
        .expect("ladder rescues the solve");
    let report = op.rescue_report();
    assert!(report.was_rescued());
    let rung = report.succeeded_by().expect("some rung succeeded");
    assert!(
        matches!(rung, RescueRung::GminStepping | RescueRung::SourceStepping),
        "unexpected rung {rung}"
    );
    // Every earlier rung must be recorded as a failed attempt.
    assert!(report.attempts.len() > 1);
    assert!(report.attempts.iter().rev().skip(1).all(|a| !a.converged));
    // The rescued solution agrees with an unconstrained plain solve.
    let reference = DcAnalysis::new(&ckt)
        .with_rescue(RescuePolicy::none())
        .solve()
        .expect("500 iterations suffice");
    assert!(!reference.rescue_report().was_rescued());
    assert!((op.voltage(d).value() - reference.voltage(d).value()).abs() < 1e-6);
}

#[test]
fn overflow_reports_numerical_blowup() {
    // An (absurd but finite) source current overflows the solved node
    // voltage to infinity — the solver must name the iteration and
    // unknown rather than propagate non-finite values.
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    ckt.add(Element::CurrentSource {
        name: "I1".into(),
        pos: a,
        neg: NodeId::GROUND,
        current: Ampere(1e308),
    })
    .unwrap();
    ckt.add(Element::resistor("R1", a, NodeId::GROUND, Ohm(1e5)))
        .unwrap();
    let err = DcAnalysis::new(&ckt)
        .with_rescue(RescuePolicy::none())
        .solve()
        .unwrap_err();
    assert!(
        matches!(
            err,
            SpiceError::NumericalBlowup {
                iteration: 1,
                unknown: 0
            }
        ),
        "{err}"
    );
    // The default ladder cannot fix an overflow either, and must hand
    // back the original typed error instead of a rescue artifact.
    let err = DcAnalysis::new(&ckt).solve().map(|_| ()).unwrap_err();
    assert!(matches!(err, SpiceError::NumericalBlowup { .. }), "{err}");
}

#[test]
fn panicking_monte_carlo_job_is_contained() {
    let mc = MonteCarlo::new(8, 1234);
    let policy = FailurePolicy::SkipAndReport { max_failures: 1 };
    let report = mc
        .try_run::<f64, SpiceError, _>(&policy, |run, rng| {
            assert!(run != 3, "injected panic in run 3");
            Ok(rng.random::<f64>())
        })
        .expect("one failure is within budget");
    assert_eq!(report.failures, 1);
    assert!(matches!(
        &report.results[3],
        Err(JobError::Panicked { message }) if message.contains("injected panic")
    ));
    // Every other job's value is bitwise identical to a clean run: the
    // per-run RNG stream does not depend on its neighbours' fate.
    let clean = mc.run(|_, rng| rng.random::<f64>());
    for (run, slot) in report.results.iter().enumerate() {
        if run != 3 {
            assert_eq!(slot.as_ref().ok(), Some(&clean[run]), "run {run}");
        }
    }
    // FailFast surfaces the panic as the first failed job.
    let err = mc
        .try_run::<f64, SpiceError, _>(&FailurePolicy::FailFast, |run, rng| {
            assert!(run != 3, "injected panic in run 3");
            Ok(rng.random::<f64>())
        })
        .unwrap_err();
    assert!(matches!(
        err,
        FanOutError::Job {
            index: 3,
            error: JobError::Panicked { .. }
        }
    ));
    // And a zero-tolerance budget converts the panic into a typed
    // too-many-failures error.
    let err = mc
        .try_run::<f64, SpiceError, _>(
            &FailurePolicy::SkipAndReport { max_failures: 0 },
            |run, rng| {
                assert!(run != 3, "injected panic in run 3");
                Ok(rng.random::<f64>())
            },
        )
        .unwrap_err();
    assert!(matches!(
        err,
        FanOutError::TooManyFailures {
            failed: 1,
            max_failures: 0,
            ..
        }
    ));
}

#[test]
fn substitute_policy_completes_with_fallback() {
    let mc = MonteCarlo::new(6, 9).sequential();
    let report = mc
        .try_run(&FailurePolicy::Substitute(-1.0f64), |run, rng| {
            if run % 2 == 0 {
                Err(SpiceError::NoConvergence {
                    iterations: 1,
                    residual: 1.0,
                })
            } else {
                Ok(rng.random::<f64>())
            }
        })
        .expect("substitute never fails");
    assert_eq!(report.failures, 3);
    assert_eq!(report.results.len(), 6);
    for (run, slot) in report.results.iter().enumerate() {
        let value = *slot.as_ref().expect("all substituted");
        if run % 2 == 0 {
            assert_eq!(value, -1.0);
        } else {
            assert!((0.0..1.0).contains(&value));
        }
    }
}

#[test]
fn duplicate_and_unknown_probes_are_typed_errors() {
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    ckt.add(Element::vdc("V1", a, NodeId::GROUND, Volt(1.0)))
        .unwrap();
    assert!(matches!(
        ckt.add(Element::vdc("V1", a, NodeId::GROUND, Volt(2.0))),
        Err(SpiceError::DuplicateElement { .. })
    ));
    let op = DcAnalysis::new(&ckt).solve().unwrap();
    assert!(matches!(
        op.source_current("VX"),
        Err(SpiceError::UnknownElement { .. })
    ));
}
