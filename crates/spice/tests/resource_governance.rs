//! Integration tests for the resource-governance layer: adaptive LTE
//! stepping against analytic references and fine fixed-step runs,
//! budget/deadline/cancellation aborts across every analysis entry
//! point, and killed-and-resumed Monte-Carlo sweeps.

use ferrocim_spice::{
    AdaptiveOptions, Budget, BudgetResource, CancelToken, Circuit, DcAnalysis, DcSweep, Deadline,
    Element, Integrator, McError, MonteCarlo, NewtonOptions, NodeId, SimEngine, SpiceError,
    TransientAnalysis,
};
use ferrocim_units::{Celsius, Farad, Ohm, Second, Volt};
use proptest::prelude::*;
use rand::Rng;
use std::path::PathBuf;
use std::time::Duration;

/// A series RC charged from a DC source: `v_c(t) = V·(1 − e^(−t/RC))`.
fn rc_circuit(r: f64, c: f64, v: f64) -> (Circuit, NodeId) {
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let b = ckt.node("b");
    ckt.add(Element::vdc("V1", a, NodeId::GROUND, Volt(v)))
        .expect("add source");
    ckt.add(Element::resistor("R1", a, b, Ohm(r)))
        .expect("add resistor");
    ckt.add(Element::Capacitor {
        name: "C1".into(),
        a: b,
        b: NodeId::GROUND,
        capacitance: Farad(c),
        initial: Some(Volt::ZERO),
    })
    .expect("add capacitor");
    (ckt, b)
}

/// A diode-connected MOSFET load — nonlinear enough that every solve
/// takes several Newton iterations.
fn nonlinear_circuit() -> Circuit {
    use ferrocim_device::{MosfetModel, MosfetParams};
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let d = ckt.node("d");
    ckt.add(Element::vdc("VDD", vdd, NodeId::GROUND, Volt(1.0)))
        .expect("add source");
    ckt.add(Element::resistor("R", vdd, d, Ohm(1e5)))
        .expect("add resistor");
    ckt.add(Element::mosfet(
        "M1",
        d,
        d,
        NodeId::GROUND,
        MosfetModel::new(MosfetParams::nmos_14nm()),
    ))
    .expect("add mosfet");
    ckt
}

fn scratch_path(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "ferrocim-governance-{tag}-{}.json",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&p);
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// On a smooth RC charging curve the adaptive stepper must stay
    /// within its LTE tolerance of the analytic solution at every
    /// accepted sample, for any (R, C, V) in a broad physical range.
    #[test]
    fn adaptive_rc_tracks_the_analytic_solution(
        r_exp in 3.0f64..6.0,
        c_exp in -15.0f64..-12.0,
        v in 0.2f64..1.5,
    ) {
        let r = 10f64.powf(r_exp);
        let c = 10f64.powf(c_exp);
        let tau = r * c;
        let t_stop = 5.0 * tau;
        let (ckt, node) = rc_circuit(r, c, v);
        let opts = AdaptiveOptions::for_duration(Second(t_stop));
        let result = TransientAnalysis::over(&ckt, Second(t_stop))
            .with_adaptive_options(opts)
            .run()
            .expect("adaptive run");
        let report = result.step_report();
        prop_assert!(report.accepted > 0);
        // Pointwise error against the analytic curve: the global error
        // of an LTE-controlled run stays within a small multiple of the
        // per-step tolerance (relative to the source amplitude).
        // Sample 0 is the DC pre-solve (caps open), not the capacitor's
        // initial condition; the analytic comparison starts at t > 0.
        for (i, t) in result.times().iter().enumerate().skip(1) {
            let got = result.voltage_at(node, i);
            let want = v * (1.0 - (-t.value() / tau).exp());
            prop_assert!(
                (got.value() - want).abs() <= 5e-3 * v + 1e-9,
                "at t={} got {} want {}", t.value(), got.value(), want
            );
        }
    }

    /// The adaptive run must use far fewer steps than a 10× finer
    /// fixed-step reference while matching it within the LTE tolerance.
    #[test]
    fn adaptive_beats_a_10x_finer_fixed_reference(
        v in 0.3f64..1.2,
    ) {
        let (r, c) = (1e5, 1e-13);
        let tau = r * c;
        let t_stop = 5.0 * tau;
        let (ckt, node) = rc_circuit(r, c, v);
        let opts = AdaptiveOptions::for_duration(Second(t_stop));
        let adaptive = TransientAnalysis::over(&ckt, Second(t_stop))
            .with_adaptive_options(opts)
            .run()
            .expect("adaptive run");
        // Reference: fixed steps 10× finer than the adaptive dt_max.
        let dt_ref = Second(opts.dt_max.value() / 10.0);
        let fixed = TransientAnalysis::over(&ckt, Second(t_stop)).with_fixed_step(dt_ref)
            .run()
            .expect("fixed run");
        let end_a = adaptive.final_voltage(node).value();
        let end_f = fixed.final_voltage(node).value();
        prop_assert!(
            (end_a - end_f).abs() <= opts.lte_tol * v.max(1.0) * 10.0,
            "adaptive {end_a} vs fixed {end_f}"
        );
        prop_assert!(
            adaptive.step_report().attempted() < fixed.times().len(),
            "adaptive took {} attempts vs {} fixed steps",
            adaptive.step_report().attempted(),
            fixed.times().len()
        );
    }
}

#[test]
fn adaptive_trapezoidal_also_tracks_the_reference() {
    let (r, c, v) = (2e5, 5e-14, 1.0);
    let tau = r * c;
    let t_stop = 4.0 * tau;
    let (ckt, node) = rc_circuit(r, c, v);
    let result = TransientAnalysis::over(&ckt, Second(t_stop))
        .with_integrator(Integrator::Trapezoidal)
        .run()
        .expect("trap adaptive run");
    let want = v * (1.0 - (-t_stop / tau).exp());
    assert!(
        (result.final_voltage(node).value() - want).abs() < 5e-3,
        "got {} want {want}",
        result.final_voltage(node).value()
    );
}

#[test]
fn newton_budget_aborts_a_dc_solve_with_a_typed_error() {
    let ckt = nonlinear_circuit();
    let budget = Budget::unlimited().with_max_newton_iterations(2);
    let err = DcAnalysis::new(&ckt)
        .with_budget(budget.clone())
        .solve()
        .unwrap_err();
    assert!(
        matches!(
            err,
            SpiceError::BudgetExceeded {
                resource: BudgetResource::NewtonIterations { .. }
            }
        ),
        "{err}"
    );
    // The spend counter reflects the charge that tripped the limit.
    assert!(budget.newton_iterations_spent() >= 2);
}

#[test]
fn step_budget_aborts_a_transient_mid_run() {
    let (ckt, _) = rc_circuit(1e5, 1e-13, 1.0);
    let budget = Budget::unlimited().with_max_steps(5);
    let err = TransientAnalysis::over(&ckt, Second(1e-7))
        .with_fixed_step(Second(1e-10))
        .with_budget(budget)
        .run()
        .unwrap_err();
    assert!(
        matches!(
            err,
            SpiceError::BudgetExceeded {
                resource: BudgetResource::Steps { .. }
            }
        ),
        "{err}"
    );
}

#[test]
fn expired_deadline_aborts_every_entry_point() {
    let (ckt, _) = rc_circuit(1e5, 1e-13, 1.0);
    let deadline = Deadline::after(Duration::ZERO);
    let wall = |err: &SpiceError| {
        matches!(
            err,
            SpiceError::BudgetExceeded {
                resource: BudgetResource::WallClock
            }
        )
    };
    let err = DcAnalysis::new(&ckt)
        .with_budget(Budget::unlimited().with_deadline(deadline))
        .solve()
        .unwrap_err();
    assert!(wall(&err), "dc: {err}");
    let err = TransientAnalysis::over(&ckt, Second(1e-8))
        .with_fixed_step(Second(1e-10))
        .with_budget(Budget::unlimited().with_deadline(deadline))
        .run()
        .unwrap_err();
    assert!(wall(&err), "transient: {err}");
    let err = TransientAnalysis::over(&ckt, Second(1e-8))
        .with_budget(Budget::unlimited().with_deadline(deadline))
        .run()
        .unwrap_err();
    assert!(wall(&err), "adaptive: {err}");
    let err = DcSweep::new(&ckt, "V1", vec![Volt(0.0), Volt(0.5)])
        .with_budget(Budget::unlimited().with_deadline(deadline))
        .solve()
        .unwrap_err();
    assert!(wall(&err), "sweep: {err}");
}

#[test]
fn cancel_token_aborts_a_dc_sweep() {
    let ckt = nonlinear_circuit();
    let token = CancelToken::new();
    token.cancel();
    let err = DcSweep::new(&ckt, "VDD", vec![Volt(0.2), Volt(0.4)])
        .with_budget(Budget::unlimited().with_cancel_token(&token))
        .solve()
        .unwrap_err();
    assert!(matches!(err, SpiceError::Cancelled), "{err}");
}

#[test]
fn sim_engine_threads_its_budget_into_every_analysis() {
    let (ckt, _) = rc_circuit(1e5, 1e-13, 1.0);
    let token = CancelToken::new();
    token.cancel();
    let mut engine = SimEngine::new().with_budget(Budget::unlimited().with_cancel_token(&token));
    let err = engine.dc(&ckt).unwrap_err();
    assert!(matches!(err, SpiceError::Cancelled), "dc: {err}");
    let err = engine
        .transient(&ckt, Second(1e-10), Second(1e-8))
        .unwrap_err();
    assert!(matches!(err, SpiceError::Cancelled), "transient: {err}");
    let err = engine
        .transient_adaptive(
            &ckt,
            Second(1e-8),
            AdaptiveOptions::for_duration(Second(1e-8)),
        )
        .unwrap_err();
    assert!(matches!(err, SpiceError::Cancelled), "adaptive: {err}");
}

#[test]
fn budget_clones_share_one_spend_pool() {
    let (ckt, _) = rc_circuit(1e5, 1e-13, 1.0);
    // 12 time steps fit under the limit once, but not twice: the second
    // run draws from the same pool and must hit the ceiling.
    let budget = Budget::unlimited().with_max_steps(18);
    let analysis = TransientAnalysis::over(&ckt, Second(1e-8))
        .with_fixed_step(Second(1e-9))
        .with_budget(budget.clone());
    analysis.clone().run().expect("first run fits");
    let err = analysis.run().unwrap_err();
    assert!(
        matches!(err, SpiceError::BudgetExceeded { .. }),
        "second run must exhaust the shared pool: {err}"
    );
    assert!(budget.steps_spent() >= 18);
}

#[test]
fn unlimited_budget_changes_nothing() {
    let (ckt, node) = rc_circuit(1e5, 1e-13, 1.0);
    let plain = TransientAnalysis::over(&ckt, Second(1e-8))
        .with_fixed_step(Second(1e-10))
        .run()
        .expect("plain");
    let governed = TransientAnalysis::over(&ckt, Second(1e-8))
        .with_fixed_step(Second(1e-10))
        .with_budget(Budget::unlimited())
        .run()
        .expect("governed");
    assert_eq!(plain.times(), governed.times());
    for i in 0..plain.times().len() {
        assert_eq!(
            plain.voltage_at(node, i).value().to_bits(),
            governed.voltage_at(node, i).value().to_bits()
        );
    }
}

/// One Monte-Carlo sample: the DC solution of an RC divider whose
/// resistor is drawn from the run's RNG.
fn mc_sample(run: usize, rng: &mut rand::rngs::StdRng) -> f64 {
    let r: f64 = rng.random_range(1e3..1e6);
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let b = ckt.node("b");
    ckt.add(Element::vdc("V1", a, NodeId::GROUND, Volt(1.0)))
        .expect("add source");
    ckt.add(Element::resistor("R1", a, b, Ohm(r)))
        .expect("add top resistor");
    ckt.add(Element::resistor(
        "R2",
        b,
        NodeId::GROUND,
        Ohm(1e4 + run as f64),
    ))
    .expect("add bottom resistor");
    DcAnalysis::new(&ckt)
        .with_options(NewtonOptions::default())
        .at(Celsius::ROOM)
        .solve()
        .expect("divider solves")
        .voltage(b)
        .value()
}

#[test]
fn killed_and_resumed_monte_carlo_is_bitwise_identical() {
    let mc = MonteCarlo::new(12, 0xFEED_F00D).sequential();
    let uninterrupted: Vec<f64> = mc.run(mc_sample);

    let path = scratch_path("mc-resume");
    // "Kill" the sweep partway via a step budget: only 5 samples fit.
    let tight = Budget::unlimited().with_max_steps(5);
    let err = mc
        .run_resumable(&path, 2, &tight, mc_sample)
        .expect_err("tight budget must interrupt");
    match &err {
        McError::Interrupted { reason, partial } => {
            assert!(
                matches!(reason, SpiceError::BudgetExceeded { .. }),
                "{reason}"
            );
            assert!(!partial.is_empty() && partial.len() < 12);
            // Completed samples match the uninterrupted run exactly.
            for (run, value) in partial {
                assert_eq!(value.to_bits(), uninterrupted[*run].to_bits());
            }
        }
        other => panic!("expected Interrupted, got {other:?}"),
    }
    assert!(path.exists(), "checkpoint file must survive the kill");

    // Resume without limits: bitwise identical to the uninterrupted run.
    let resumed = mc
        .run_resumable(&path, 2, &Budget::unlimited(), mc_sample)
        .expect("resume completes");
    assert_eq!(resumed.len(), uninterrupted.len());
    for (a, b) in resumed.iter().zip(&uninterrupted) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn cancelled_monte_carlo_preserves_partial_results() {
    let mc = MonteCarlo::new(6, 7).sequential();
    let path = scratch_path("mc-cancel");
    let token = CancelToken::new();
    // Cancel after the first chunk by budgeting exactly one chunk of
    // steps and cancelling from the typed error path.
    let budget = Budget::unlimited().with_max_steps(2);
    let err = mc
        .run_resumable(&path, 2, &budget, mc_sample)
        .expect_err("must interrupt");
    assert!(matches!(err, McError::Interrupted { .. }));
    // A cancelled token aborts immediately with Cancelled.
    token.cancel();
    let cancelled = Budget::unlimited().with_cancel_token(&token);
    let err = mc
        .run_resumable(&path, 2, &cancelled, mc_sample)
        .expect_err("cancelled");
    match err {
        McError::Interrupted { reason, partial } => {
            assert!(matches!(reason, SpiceError::Cancelled), "{reason}");
            // The first chunk from the earlier attempt is preserved.
            assert_eq!(partial.len(), 2);
        }
        other => panic!("expected Interrupted, got {other:?}"),
    }
    let _ = std::fs::remove_file(&path);
}
