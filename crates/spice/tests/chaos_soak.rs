//! Chaos soak: deterministic fault injection against the numerical
//! health guardrails.
//!
//! Every injection in this file is derived from a small integer seed
//! through [`ChaosRng`], so a failing case replays exactly. The claim
//! under test is the crate's robustness contract: **no injected fault
//! may produce a silent wrong answer** — every solve either certifies
//! (and then independently re-verifies here), fails with a typed
//! [`SpiceError`] / [`McError`] / [`JobError`], or panics inside a
//! fan-out worker where the harness converts it to a typed job failure.
//!
//! The file runs well over 1000 seeded injections:
//! * 600 matrix faults (NaN poison, large perturbations, zeroed pivots)
//!   through both solver backends,
//! * 200 forced factorization failures inside a Monte-Carlo fleet,
//! * 120 checkpoint corruptions (truncation + garbage bytes),
//! * 100 panicking fan-out workers,
//! * 60 deadlines expiring mid-transient and mid-sweep.

use ferrocim_spice::chaos::{corrupt_checkpoint, ChaosRng, FileFault, MatrixFault};
use ferrocim_spice::{
    certify_solution, fan_out, try_fan_out, Budget, BudgetResource, Circuit, Deadline, DenseLu,
    Element, FailurePolicy, HealthPolicy, JobError, LinearSystem, McError, MonteCarlo, NodeId,
    SparseLu, SpiceError, Telemetry, TransientAnalysis, Waveform,
};
use ferrocim_units::{Farad, Ohm, Second, Volt};
use std::path::PathBuf;
use std::time::Duration;

const DIM: usize = 6;

/// Stamps the clean reference system: diagonally dominant, banded,
/// comfortably well-conditioned — every fault is injected on top of it.
fn stamp_reference(system: &mut dyn LinearSystem) {
    system.clear();
    for i in 0..DIM {
        system.add(i, i, reference_diag(i));
        if i + 1 < DIM {
            system.add(i, i + 1, -1.0);
            system.add(i + 1, i, -1.0);
        }
        if i + 2 < DIM {
            system.add(i, i + 2, 0.5);
        }
    }
}

fn reference_diag(i: usize) -> f64 {
    4.0 + i as f64 * 0.25
}

/// Recomputes the componentwise-relative backward error of `x` against
/// the *currently stamped* system — independently of the certification
/// code path, so a bug there cannot vouch for itself.
fn independent_backward_error(system: &mut dyn LinearSystem, b: &[f64], x: &[f64]) -> f64 {
    let n = system.dim();
    let mut y = vec![0.0; n];
    system.matvec_into(x, &mut y);
    let mut rmax = 0.0f64;
    for i in 0..n {
        let r = (b[i] - y[i]).abs();
        if !r.is_finite() {
            return f64::INFINITY;
        }
        rmax = rmax.max(r);
    }
    let xmax = x.iter().fold(0.0f64, |m, v| m.max(v.abs()));
    let bmax = b.iter().fold(0.0f64, |m, v| m.max(v.abs()));
    let scale = system.inf_norm() * xmax + bmax;
    if scale == 0.0 {
        if rmax == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        rmax / scale
    }
}

fn scratch_path(tag: &str, seed: u64) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "ferrocim-chaos-soak-{tag}-{}-{seed}.json",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&p);
    p
}

/// 600 seeded matrix faults through both backends: every outcome must
/// be a certified (and here re-verified) solution or a typed error.
#[test]
fn matrix_fault_soak_never_yields_a_silent_wrong_answer() {
    let policy = HealthPolicy::default();
    let tele = Telemetry::off();
    let b: Vec<f64> = (0..DIM).map(|i| 1.0 + i as f64).collect();
    let mut certified = 0usize;
    let mut typed_errors = 0usize;

    for seed in 0..600u64 {
        let mut rng = ChaosRng::new(seed);
        let mut dense;
        let mut sparse;
        let system: &mut dyn LinearSystem = if seed % 2 == 0 {
            dense = DenseLu::with_dim(DIM);
            &mut dense
        } else {
            sparse = SparseLu::with_dim(DIM);
            &mut sparse
        };
        stamp_reference(system);
        let fault = MatrixFault::draw(&mut rng, DIM, reference_diag);
        fault.apply(system);

        let mut x = Vec::new();
        match system.solve_into(&b, &mut x, &tele) {
            Err(SpiceError::SingularMatrix { .. }) => typed_errors += 1,
            Err(other) => panic!("seed {seed}: unexpected solve error {other:?}"),
            Ok(_) => match certify_solution(system, &b, &mut x, &policy) {
                Err(SpiceError::UncertifiedSolve { .. }) => typed_errors += 1,
                Err(other) => panic!("seed {seed}: unexpected certify error {other:?}"),
                Ok(quality) => {
                    // The health layer certified the solve — re-verify
                    // from scratch against the faulted system.
                    assert!(
                        x.iter().all(|v| v.is_finite()),
                        "seed {seed} ({fault:?}): certified solution contains non-finite entries"
                    );
                    let be = independent_backward_error(system, &b, &x);
                    assert!(
                        be <= 1e-8,
                        "seed {seed} ({fault:?}): certified residual {} but independent \
                         backward error {be:e} — silent wrong answer",
                        quality.residual
                    );
                    certified += 1;
                }
            },
        }
    }
    assert_eq!(certified + typed_errors, 600);
    assert!(certified > 0, "some faults must still certify");
    assert!(typed_errors > 0, "some faults must fail typed");
}

/// 200-run Monte-Carlo fleet with factorization failures forced in a
/// deterministic subset of runs: failed runs surface as typed job
/// errors, surviving runs stay bitwise identical to the clean value.
#[test]
fn mc_fleet_survives_forced_factorization_failures() {
    let tele = Telemetry::off();
    let b: Vec<f64> = (0..DIM).map(|i| 1.0 + i as f64).collect();

    // The clean per-run value every healthy run must reproduce exactly.
    let reference = {
        let mut d = DenseLu::with_dim(DIM);
        stamp_reference(&mut d);
        let mut x = Vec::new();
        d.solve_into(&b, &mut x, &tele).unwrap();
        x[0]
    };

    let injected = |run: usize| ChaosRng::new(run as u64 ^ 0xC0FFEE).chance(0.3);
    let mc = MonteCarlo::new(200, 7).sequential();
    let report = mc
        .try_run::<f64, SpiceError, _>(
            &FailurePolicy::SkipAndReport { max_failures: 200 },
            |run, _rng| {
                let mut d = DenseLu::with_dim(DIM);
                stamp_reference(&mut d);
                if injected(run) {
                    // Wipe a whole row: the factorization has no pivot.
                    for c in 0..DIM {
                        let wiped = if c == 2 { reference_diag(2) } else { 0.0 };
                        let current = if c == 2 {
                            wiped
                        } else if c == 1 || c == 3 {
                            -1.0
                        } else if c == 4 {
                            0.5
                        } else {
                            0.0
                        };
                        d.add(2, c, -current);
                    }
                }
                let mut x = Vec::new();
                d.solve_into(&b, &mut x, &Telemetry::off())?;
                certify_solution(&mut d, &b, &mut x, &HealthPolicy::default())?;
                Ok(x[0])
            },
        )
        .unwrap();

    let expected_failures = (0..200).filter(|&r| injected(r)).count();
    assert_eq!(report.failures, expected_failures);
    assert!(expected_failures > 0, "the injection plan must fire");
    for (run, slot) in report.results.iter().enumerate() {
        match slot {
            Ok(v) => {
                assert!(!injected(run), "run {run}: injected fault went unnoticed");
                assert_eq!(
                    v.to_bits(),
                    reference.to_bits(),
                    "run {run}: healthy run diverged from the clean reference"
                );
            }
            Err(JobError::Failed(e)) => {
                assert!(injected(run), "run {run}: spurious failure {e:?}");
                assert!(
                    matches!(
                        e,
                        SpiceError::SingularMatrix { .. } | SpiceError::UncertifiedSolve { .. }
                    ),
                    "run {run}: untyped failure {e:?}"
                );
            }
            Err(JobError::Panicked { message }) => {
                panic!("run {run}: unexpected worker panic: {message}")
            }
        }
    }
}

/// 120 seeded checkpoint corruptions: every truncation or garbage byte
/// is answered with `McError::CorruptCheckpoint` (the envelope checksum
/// catches even flips that still parse as valid JSON), and a repaired
/// rerun reproduces the uninterrupted sweep bitwise.
#[test]
fn corrupted_checkpoints_always_fail_typed_and_repair_bitwise() {
    let mc = MonteCarlo::new(6, 21).sequential();
    let sample = |i: usize, rng: &mut rand::rngs::StdRng| {
        use rand::Rng;
        rng.random::<f64>() * (i as f64 + 1.0)
    };
    let clean: Vec<f64> = {
        let path = scratch_path("clean", 0);
        let out = mc
            .run_resumable(&path, 2, &Budget::unlimited(), sample)
            .unwrap();
        let _ = std::fs::remove_file(&path);
        out
    };

    for seed in 0..120u64 {
        let path = scratch_path("corrupt", seed);
        mc.run_resumable(&path, 2, &Budget::unlimited(), sample)
            .unwrap();
        let len = std::fs::metadata(&path).unwrap().len() as usize;
        let fault = FileFault::draw(&mut ChaosRng::new(seed), len);
        corrupt_checkpoint(&path, fault).unwrap();

        let err = mc
            .run_resumable(&path, 2, &Budget::unlimited(), sample)
            .unwrap_err();
        assert!(
            matches!(err, McError::CorruptCheckpoint { .. }),
            "seed {seed} ({fault:?}): corruption not detected — got {err:?}"
        );

        // Repair (operator deletes the damaged file) and rerun: the
        // result must be bitwise identical to the uninterrupted sweep.
        std::fs::remove_file(&path).unwrap();
        let repaired = mc
            .run_resumable(&path, 2, &Budget::unlimited(), sample)
            .unwrap();
        assert_eq!(
            repaired.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            clean.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "seed {seed}: repaired rerun diverged"
        );
        let _ = std::fs::remove_file(&path);
    }
}

/// 100 fan-out jobs with a deterministic subset panicking mid-job: the
/// fault-tolerant harness converts each panic to a typed `JobError`
/// and the surviving jobs stay bitwise correct.
#[test]
fn panicking_workers_become_typed_job_errors() {
    let panics = |job: usize| ChaosRng::new(job as u64 ^ 0xDEAD).chance(0.25);
    let expected: Vec<f64> = (0..100).map(|i| (i as f64).sqrt() + 1.0).collect();

    let report = try_fan_out::<_, f64, SpiceError, _, _>(
        100,
        true,
        &FailurePolicy::SkipAndReport { max_failures: 100 },
        || (),
        |(), job| {
            if panics(job) {
                panic!("chaos panic in job {job}");
            }
            Ok((job as f64).sqrt() + 1.0)
        },
    )
    .unwrap();

    let expected_failures = (0..100).filter(|&j| panics(j)).count();
    assert_eq!(report.failures, expected_failures);
    assert!(expected_failures > 0, "the panic plan must fire");
    for (job, slot) in report.results.iter().enumerate() {
        match slot {
            Ok(v) => {
                assert!(!panics(job));
                assert_eq!(v.to_bits(), expected[job].to_bits());
            }
            Err(JobError::Panicked { message }) => {
                assert!(panics(job));
                assert!(
                    message.contains("chaos panic"),
                    "job {job}: panic payload lost: {message}"
                );
            }
            Err(JobError::Failed(e)) => panic!("job {job}: unexpected typed failure {e:?}"),
        }
    }

    // The plain fan_out contract is the opposite and equally typed: a
    // panicking job takes the batch down by re-raising the payload.
    let outcome = std::panic::catch_unwind(|| {
        fan_out(
            4,
            false,
            || (),
            |(), i| {
                if i == 2 {
                    panic!("chaos panic in job 2");
                }
                i
            },
        )
    });
    assert!(outcome.is_err(), "fan_out must re-raise worker panics");
}

/// 60 deadline expiries injected mid-transient and mid-sweep: the
/// budget layer must answer each with its typed wall-clock error, and a
/// checkpointed sweep must keep its partial results recoverable.
#[test]
fn expired_deadlines_abort_with_typed_errors() {
    let mut ckt = Circuit::new();
    let vin = ckt.node("in");
    let out = ckt.node("out");
    ckt.add(Element::vsource(
        "V1",
        vin,
        NodeId::GROUND,
        Waveform::step(Volt(0.0), Volt(1.0), Second(1e-12)),
    ))
    .unwrap();
    ckt.add(Element::resistor("R1", vin, out, Ohm(1e3)))
        .unwrap();
    ckt.add(Element::Capacitor {
        name: "C1".into(),
        a: out,
        b: NodeId::GROUND,
        capacitance: Farad(1e-12),
        initial: Some(Volt(0.0)),
    })
    .unwrap();

    for seed in 0..30u64 {
        let budget = Budget::unlimited().with_deadline(Deadline::after(Duration::ZERO));
        let dt = Second(1e-12 * (1.0 + seed as f64 / 30.0));
        let err = TransientAnalysis::over(&ckt, Second(1e-9))
            .with_fixed_step(dt)
            .with_budget(budget)
            .run()
            .unwrap_err();
        assert!(
            matches!(
                err,
                SpiceError::BudgetExceeded {
                    resource: BudgetResource::WallClock
                }
            ),
            "seed {seed}: expected a wall-clock abort, got {err:?}"
        );
    }

    for seed in 0..30u64 {
        let path = scratch_path("deadline", seed);
        let mc = MonteCarlo::new(4, seed).sequential();
        let budget = Budget::unlimited().with_deadline(Deadline::after(Duration::ZERO));
        let err = mc
            .run_resumable(&path, 2, &budget, |i, _| i as f64)
            .unwrap_err();
        match err {
            McError::Interrupted { reason, .. } => {
                assert!(
                    matches!(
                        reason,
                        SpiceError::BudgetExceeded {
                            resource: BudgetResource::WallClock
                        }
                    ),
                    "seed {seed}: wrong interruption reason {reason:?}"
                );
            }
            other => panic!("seed {seed}: expected Interrupted, got {other:?}"),
        }
        // The save raced nothing: the checkpoint on disk is readable
        // and resumable once the deadline pressure is gone.
        let resumed = mc
            .run_resumable(&path, 2, &Budget::unlimited(), |i, _| i as f64)
            .unwrap();
        assert_eq!(resumed, vec![0.0, 1.0, 2.0, 3.0]);
        let _ = std::fs::remove_file(&path);
    }
}
