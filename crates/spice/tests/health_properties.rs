//! Property-based tests of the numerical-health layer and checkpoint
//! durability: invariants that must hold for *any* system and *any*
//! corruption, not just hand-picked examples.

use ferrocim_spice::chaos::{corrupt_checkpoint, FileFault};
use ferrocim_spice::{
    certify_solution, Budget, DenseLu, HealthPolicy, LinearSystem, McError, MonteCarlo, SparseLu,
    Telemetry,
};
use proptest::prelude::*;
use rand::Rng;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static SCRATCH_ID: AtomicU64 = AtomicU64::new(0);

fn scratch_path(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "ferrocim-health-prop-{tag}-{}-{}.json",
        std::process::id(),
        SCRATCH_ID.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_file(&p);
    p
}

/// Stamps a strictly diagonally dominant `n`×`n` system from the
/// proptest-supplied off-diagonal pool: well-conditioned by
/// construction, so certification must never need refinement.
fn stamp_dominant(system: &mut dyn LinearSystem, n: usize, off: &[f64], boost: f64) {
    system.clear();
    let mut k = 0usize;
    for i in 0..n {
        let mut row_sum = 0.0;
        for j in 0..n {
            if i == j {
                continue;
            }
            let v = off[k % off.len()];
            k += 1;
            if v != 0.0 {
                system.add(i, j, v);
                row_sum += v.abs();
            }
        }
        system.add(i, i, row_sum + boost);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any single truncation or garbage byte in a checkpoint file is
    /// answered with `McError::CorruptCheckpoint` — never an I/O error,
    /// never a silently-resumed sweep — and deleting the damaged file
    /// and rerunning reproduces the uninterrupted result bit for bit.
    #[test]
    fn checkpoint_corruption_is_typed_and_repair_is_bitwise(
        runs in 2usize..6,
        seed in any::<u64>(),
        every in 1usize..4,
        truncate in any::<bool>(),
        pos in any::<u64>(),
        byte in any::<u8>(),
    ) {
        let mc = MonteCarlo::new(runs, seed).sequential();
        let sample = |i: usize, rng: &mut rand::rngs::StdRng| {
            rng.random::<f64>() * (i as f64 + 1.0)
        };
        let clean: Vec<f64> = mc.run(sample);

        let path = scratch_path("ckpt");
        mc.run_resumable(&path, every, &Budget::unlimited(), sample)
            .expect("uninjected sweep");
        let len = std::fs::metadata(&path).expect("checkpoint exists").len() as usize;
        let at = (pos % len as u64) as usize;
        let fault = if truncate {
            FileFault::Truncate { keep: at }
        } else {
            FileFault::GarbageByte { at, byte }
        };
        corrupt_checkpoint(&path, fault).expect("inject fault");

        let err = mc
            .run_resumable(&path, every, &Budget::unlimited(), sample)
            .expect_err("corruption must not resume");
        prop_assert!(
            matches!(err, McError::CorruptCheckpoint { .. }),
            "fault {fault:?} at len {len}: got {err:?}"
        );

        // Repair: drop the damaged checkpoint and rerun from scratch.
        std::fs::remove_file(&path).expect("repair");
        let repaired = mc
            .run_resumable(&path, every, &Budget::unlimited(), sample)
            .expect("repaired sweep");
        let _ = std::fs::remove_file(&path);
        prop_assert_eq!(
            repaired.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            clean.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    /// Refinement parity: on a well-conditioned system the certified
    /// solve is the *same* solve — certification must report zero
    /// refinement passes and leave the solution bitwise untouched, on
    /// both solver backends.
    #[test]
    fn certification_is_bitwise_transparent_when_healthy(
        n in 2usize..10,
        off in prop::collection::vec(-0.5f64..0.5, 4..40),
        boost in 1.0f64..4.0,
        rhs in prop::collection::vec(-10.0f64..10.0, 10),
    ) {
        let tele = Telemetry::off();
        let policy = HealthPolicy::default();
        let b: Vec<f64> = (0..n).map(|i| rhs[i % rhs.len()]).collect();

        for dense in [true, false] {
            let mut d;
            let mut s;
            let system: &mut dyn LinearSystem = if dense {
                d = DenseLu::with_dim(n);
                &mut d
            } else {
                s = SparseLu::with_dim(n);
                &mut s
            };
            stamp_dominant(system, n, &off, boost);

            let mut plain = Vec::new();
            system.solve_into(&b, &mut plain, &tele).expect("plain solve");

            // Re-stamp and solve again with certification on top.
            stamp_dominant(system, n, &off, boost);
            let mut certified = Vec::new();
            system
                .solve_into(&b, &mut certified, &tele)
                .expect("certified solve");
            let quality = certify_solution(system, &b, &mut certified, &policy)
                .expect("well-conditioned system must certify");

            prop_assert_eq!(
                quality.refinement_passes, 0,
                "backend {:?}: spurious refinement", system.backend()
            );
            prop_assert!(
                quality.residual <= policy.residual_tol,
                "backend {:?}: residual {} over tolerance",
                system.backend(),
                quality.residual
            );
            prop_assert_eq!(
                certified.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                plain.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "backend {:?}: certification perturbed an acceptable solution",
                system.backend()
            );
        }
    }
}
