//! Deterministic fault injection for robustness ("chaos") testing.
//!
//! The numerical-health layer ([`crate::HealthPolicy`], the solver
//! degradation ladder) claims that no injected fault can turn into a
//! *silent* wrong answer — every solve either certifies or fails with a
//! typed error. This module is the attacker side of that claim: a
//! seeded, fully deterministic fault injector whose perturbations are
//! reproducible from a single `u64` (same seed → same faults, byte for
//! byte), so a failing soak iteration can be replayed under a debugger.
//!
//! Fault families (mirroring the soak matrix in
//! `crates/spice/tests/chaos_soak.rs`):
//!
//! * [`MatrixFault`] — NaN-poisoning, magnitude scaling, and row wipes
//!   applied through the public [`LinearSystem`] stamp interface, which
//!   is exactly where assembly bugs or corrupted device evaluations
//!   would land.
//! * [`corrupt_checkpoint`] — byte truncation and garbage overwrites of
//!   `McCheckpoint` files, which resume must answer with
//!   `McError::CorruptCheckpoint`.
//! * Worker panics and deadline expiry are injected directly by the
//!   soak test through `fan_out` closures and pre-expired
//!   [`crate::Deadline`]s — no helper needed beyond [`ChaosRng`].

use crate::solver::LinearSystem;
use std::path::Path;

/// A tiny deterministic RNG (splitmix64) for fault planning.
///
/// Deliberately *not* the Monte-Carlo engine's RNG: chaos draws must
/// never perturb the simulation's own deterministic sample streams.
///
/// # Examples
///
/// ```
/// use ferrocim_spice::chaos::ChaosRng;
///
/// let mut a = ChaosRng::new(42);
/// let mut b = ChaosRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// let r = a.next_f64();
/// assert!((0.0..1.0).contains(&r));
/// ```
#[derive(Debug, Clone)]
pub struct ChaosRng {
    state: u64,
}

impl ChaosRng {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> ChaosRng {
        ChaosRng { state: seed }
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// A uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform index in `[0, bound)`. `bound` must be nonzero.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "empty range");
        (self.next_u64() % bound as u64) as usize
    }

    /// `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

/// One deterministic perturbation of a stamped linear system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MatrixFault {
    /// Stamps `NaN` onto entry `(row, col)` — models a corrupted device
    /// evaluation reaching assembly.
    NanPoison {
        /// Target row.
        row: usize,
        /// Target column.
        col: usize,
    },
    /// Adds a large perturbation to entry `(row, col)`, pushing the
    /// solve away from the system the factors were computed for.
    Perturb {
        /// Target row.
        row: usize,
        /// Target column.
        col: usize,
        /// The added value.
        delta: f64,
    },
    /// Cancels the diagonal at `row` by stamping its negation — drives
    /// the factorization toward a zero pivot / singularity.
    ZeroDiagonal {
        /// Target row.
        row: usize,
        /// The stamped cancellation (the negated current diagonal).
        neg_diagonal: f64,
    },
}

impl MatrixFault {
    /// Draws a fault for an `n`-unknown system from `rng`. `diag` is
    /// the current diagonal value at the drawn row, used to build an
    /// exact cancellation for [`MatrixFault::ZeroDiagonal`].
    pub fn draw(rng: &mut ChaosRng, n: usize, diag: impl Fn(usize) -> f64) -> MatrixFault {
        let row = rng.below(n);
        match rng.below(3) {
            0 => MatrixFault::NanPoison {
                row,
                col: rng.below(n),
            },
            1 => MatrixFault::Perturb {
                row,
                col: rng.below(n),
                delta: (rng.next_f64() - 0.5) * 10f64.powi(rng.below(20) as i32 - 4),
            },
            _ => MatrixFault::ZeroDiagonal {
                row,
                neg_diagonal: -diag(row),
            },
        }
    }

    /// Applies the fault through the stamp interface.
    pub fn apply(&self, system: &mut dyn LinearSystem) {
        match *self {
            MatrixFault::NanPoison { row, col } => system.add(row, col, f64::NAN),
            MatrixFault::Perturb { row, col, delta } => system.add(row, col, delta),
            MatrixFault::ZeroDiagonal { row, neg_diagonal } => system.add(row, row, neg_diagonal),
        }
    }
}

/// How to damage a checkpoint file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileFault {
    /// Keep only the first `keep` bytes (a crash mid-write).
    Truncate {
        /// Bytes to keep.
        keep: usize,
    },
    /// Overwrite one byte at `at` with `byte` (media corruption).
    GarbageByte {
        /// Byte offset (clamped to the file length).
        at: usize,
        /// The replacement byte.
        byte: u8,
    },
}

impl FileFault {
    /// Draws a file fault for a `len`-byte file.
    pub fn draw(rng: &mut ChaosRng, len: usize) -> FileFault {
        if len == 0 || rng.chance(0.5) {
            FileFault::Truncate {
                keep: if len == 0 { 0 } else { rng.below(len) },
            }
        } else {
            FileFault::GarbageByte {
                at: rng.below(len),
                byte: (rng.next_u64() & 0xff) as u8,
            }
        }
    }
}

/// Applies a [`FileFault`] to a checkpoint (or any) file in place.
///
/// # Errors
///
/// Propagates I/O errors from reading or rewriting the file.
pub fn corrupt_checkpoint(path: &Path, fault: FileFault) -> std::io::Result<()> {
    let mut bytes = std::fs::read(path)?;
    match fault {
        FileFault::Truncate { keep } => bytes.truncate(keep),
        FileFault::GarbageByte { at, byte } => {
            if bytes.is_empty() {
                return Ok(());
            }
            let at = at.min(bytes.len() - 1);
            // Flipping to the same byte would be a no-op injection; make
            // sure the write actually changes the payload.
            bytes[at] = if bytes[at] == byte { !byte } else { byte };
        }
    }
    std::fs::write(path, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::DenseLu;

    #[test]
    fn rng_is_deterministic_and_uniform_ish() {
        let mut a = ChaosRng::new(7);
        let mut b = ChaosRng::new(7);
        let draws: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let again: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_eq!(draws, again);
        let mut c = ChaosRng::new(8);
        assert_ne!(draws[0], c.next_u64(), "different seeds diverge");
        for _ in 0..100 {
            let f = c.next_f64();
            assert!((0.0..1.0).contains(&f));
            assert!(c.below(5) < 5);
        }
    }

    #[test]
    fn matrix_faults_apply_through_the_stamp_interface() {
        let mut d = DenseLu::with_dim(2);
        d.add(0, 0, 2.0);
        d.add(1, 1, 3.0);
        MatrixFault::NanPoison { row: 0, col: 1 }.apply(&mut d);
        MatrixFault::ZeroDiagonal {
            row: 1,
            neg_diagonal: -3.0,
        }
        .apply(&mut d);
        let mut y = vec![0.0; 2];
        d.matvec_into(&[1.0, 1.0], &mut y);
        assert!(y[0].is_nan(), "NaN poison must reach the matrix");
        assert_eq!(y[1], 0.0, "diagonal must cancel exactly");
    }

    #[test]
    fn fault_draws_are_reproducible() {
        let draw_all = || {
            let mut rng = ChaosRng::new(99);
            (0..50)
                .map(|_| MatrixFault::draw(&mut rng, 8, |_| 4.0))
                .collect::<Vec<_>>()
        };
        assert_eq!(draw_all(), draw_all());
    }

    #[test]
    fn checkpoint_corruption_truncates_and_garbles() {
        let dir = std::env::temp_dir().join(format!("ferrocim-chaos-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.json");
        std::fs::write(&path, b"0123456789").unwrap();
        corrupt_checkpoint(&path, FileFault::Truncate { keep: 4 }).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"0123");
        corrupt_checkpoint(&path, FileFault::GarbageByte { at: 0, byte: b'0' }).unwrap();
        assert_ne!(
            std::fs::read(&path).unwrap()[0],
            b'0',
            "garbage injection must change the byte"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
