//! Monte-Carlo driver: runs a seeded closure many times, optionally in
//! parallel across OS threads.
//!
//! The paper's Fig. 9 runs 100 samples of the 2T-1FeFET array with
//! `σ_VT = 54 mV`; this driver provides the deterministic seeding and
//! fan-out for that experiment (and any other statistical sweep).

use crate::{Budget, SpiceError};
use ferrocim_telemetry::{Event, Telemetry};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{de, Deserialize, Serialize, Value};
use std::any::Any;
use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

/// A deterministic Monte-Carlo experiment runner.
///
/// Each run `i` receives its own RNG derived from `(seed, i)` by
/// SplitMix64 scrambling, so results are reproducible regardless of
/// thread scheduling and independent of how many runs execute.
#[derive(Debug, Clone)]
pub struct MonteCarlo {
    runs: usize,
    seed: u64,
    parallel: bool,
    telemetry: Telemetry,
}

/// Equality is the sweep identity (runs, seed, fan-out mode); the
/// attached telemetry handle is an observer, not part of the identity.
impl PartialEq for MonteCarlo {
    fn eq(&self, other: &Self) -> bool {
        self.runs == other.runs && self.seed == other.seed && self.parallel == other.parallel
    }
}

impl Eq for MonteCarlo {}

impl MonteCarlo {
    /// Creates a runner for `runs` samples from a base seed.
    pub fn new(runs: usize, seed: u64) -> Self {
        MonteCarlo {
            runs,
            seed,
            parallel: true,
            telemetry: Telemetry::off(),
        }
    }

    /// Disables thread fan-out (useful when the closure is not `Sync`
    /// friendly or for debugging).
    pub fn sequential(mut self) -> Self {
        self.parallel = false;
        self
    }

    /// Attaches a telemetry handle: every sample emits
    /// [`Event::McRunStarted`] when it begins and [`Event::McRunDone`]
    /// when it finishes (with `ok: false` for typed failures under
    /// [`MonteCarlo::try_run`]; a panicked run emits no `McRunDone`, so
    /// started minus done counts panics). The default handle is off.
    pub fn with_recorder(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Number of runs.
    pub fn runs(&self) -> usize {
        self.runs
    }

    /// The per-run RNG for run index `i` (exposed so callers can
    /// reproduce a single interesting run in isolation).
    pub fn rng_for(&self, run: usize) -> StdRng {
        StdRng::seed_from_u64(splitmix64(
            self.seed ^ (run as u64).wrapping_mul(0x9E3779B97F4A7C15),
        ))
    }

    /// Executes `f(run_index, rng)` for every run and collects the
    /// results in run order.
    pub fn run<T, F>(&self, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, &mut StdRng) -> T + Sync,
    {
        fan_out(
            self.runs,
            self.parallel,
            || (),
            |(), run| {
                self.telemetry
                    .emit(|| Event::McRunStarted { run: run as u64 });
                let mut rng = self.rng_for(run);
                let out = f(run, &mut rng);
                self.telemetry.emit(|| Event::McRunDone {
                    run: run as u64,
                    ok: true,
                });
                out
            },
        )
    }

    /// Fault-tolerant variant of [`MonteCarlo::run`]: `f` may fail with
    /// a typed error or panic, and the batch outcome is governed by
    /// `policy` (see [`FailurePolicy`]). Because every run derives its
    /// RNG from `(seed, run)` alone, the results of *successful* runs
    /// are bitwise identical to what [`MonteCarlo::run`] would have
    /// produced — failures never perturb other runs' draws.
    ///
    /// # Errors
    ///
    /// See [`try_fan_out`].
    pub fn try_run<T, E, F>(
        &self,
        policy: &FailurePolicy<T>,
        f: F,
    ) -> Result<FanOutReport<T, E>, FanOutError<E>>
    where
        T: Send + Clone,
        E: Send,
        F: Fn(usize, &mut StdRng) -> Result<T, E> + Sync,
    {
        try_fan_out(
            self.runs,
            self.parallel,
            policy,
            || (),
            |(), run| {
                self.telemetry
                    .emit(|| Event::McRunStarted { run: run as u64 });
                let mut rng = self.rng_for(run);
                let out = f(run, &mut rng);
                let ok = out.is_ok();
                self.telemetry.emit(|| Event::McRunDone {
                    run: run as u64,
                    ok,
                });
                out
            },
        )
    }

    /// Checkpointable, resumable variant of [`MonteCarlo::run`].
    ///
    /// Samples run in chunks of `checkpoint_every`; after each chunk
    /// the completed-sample state (seed, run count, per-run results) is
    /// atomically rewritten to `path`. If the file already exists the
    /// sweep **resumes**: finished samples are skipped and only pending
    /// runs execute. Because every run derives its RNG from
    /// `(seed, run)` alone, a killed-and-resumed sweep returns results
    /// bitwise identical to an uninterrupted one.
    ///
    /// The `budget` is consulted at every chunk boundary (one step
    /// charged per sample, up front per chunk). On exhaustion or
    /// cancellation the current state is saved and the sweep fails with
    /// [`McError::Interrupted`] carrying the partial results — rerun
    /// with the same arguments to continue where it stopped.
    ///
    /// The checkpoint file is left in place after a successful sweep
    /// (rerunning is then a pure replay from disk); delete it to start
    /// fresh.
    ///
    /// # Errors
    ///
    /// * [`McError::Io`] / [`McError::CorruptCheckpoint`] for
    ///   filesystem or parse failures on the checkpoint file (a
    ///   truncated or garbage file is reported with the path and the
    ///   offending content, never as a raw serde error).
    /// * [`McError::Mismatch`] when the checkpoint belongs to a sweep
    ///   with a different seed or run count.
    /// * [`McError::Interrupted`] when the budget ran out.
    pub fn run_resumable<T, F>(
        &self,
        path: impl AsRef<Path>,
        checkpoint_every: usize,
        budget: &Budget,
        f: F,
    ) -> Result<Vec<T>, McError<T>>
    where
        T: Send + Clone + Serialize + Deserialize,
        F: Fn(usize, &mut StdRng) -> T + Sync,
    {
        let path = path.as_ref();
        let mut ckpt = if path.exists() {
            let ckpt = McCheckpoint::resume_from(path)?;
            ckpt.matches(self)?;
            ckpt
        } else {
            McCheckpoint::empty(self)
        };
        let every = checkpoint_every.max(1);
        loop {
            let pending: Vec<usize> = ckpt.pending().take(every).collect();
            if pending.is_empty() {
                break;
            }
            if let Err(reason) = budget
                .check()
                .and_then(|()| budget.charge_steps(pending.len() as u64))
            {
                ckpt.save(path)?;
                return Err(McError::Interrupted {
                    reason,
                    partial: ckpt.partial(),
                });
            }
            let chunk = fan_out(
                pending.len(),
                self.parallel,
                || (),
                |(), k| {
                    let run = pending[k];
                    self.telemetry
                        .emit(|| Event::McRunStarted { run: run as u64 });
                    let mut rng = self.rng_for(run);
                    let out = f(run, &mut rng);
                    self.telemetry.emit(|| Event::McRunDone {
                        run: run as u64,
                        ok: true,
                    });
                    out
                },
            );
            for (k, value) in chunk.into_iter().enumerate() {
                ckpt.completed[pending[k]] = Some(value);
            }
            ckpt.save(path)?;
        }
        let total = ckpt.runs;
        let results: Vec<T> = ckpt.completed.into_iter().flatten().collect();
        if results.len() != total {
            return Err(McError::CorruptCheckpoint {
                path: path.to_path_buf(),
                detail: "checkpoint is missing completed samples".to_string(),
            });
        }
        Ok(results)
    }
}

const CHECKPOINT_FORMAT: &str = "ferrocim-mc-checkpoint-v1";

/// First-line envelope prefix of a checkpoint file. The header carries
/// an FNV-1a checksum of the JSON payload that follows, so *any*
/// flipped or truncated byte — including one that would still parse as
/// valid JSON with different numbers — is detected at resume instead of
/// silently corrupting resumed results.
const CHECKPOINT_HEADER: &str = "ferrocim-mc-checkpoint fnv1a:";

/// FNV-1a 64-bit over raw bytes; tiny, dependency-free, and good enough
/// to catch every single-byte corruption (this is an integrity check
/// against accidents, not an authenticity check against attackers).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// A persisted snapshot of a partially completed Monte-Carlo sweep: the
/// sweep identity (seed, run count) plus every finished sample.
///
/// Produced and consumed by [`MonteCarlo::run_resumable`]; exposed so
/// tooling can inspect a checkpoint (progress reporting, salvage of a
/// dead sweep's partial results).
#[derive(Debug, Clone, PartialEq)]
pub struct McCheckpoint<T> {
    seed: u64,
    runs: usize,
    completed: Vec<Option<T>>,
}

impl<T> McCheckpoint<T> {
    fn empty(mc: &MonteCarlo) -> McCheckpoint<T> {
        McCheckpoint {
            seed: mc.seed,
            runs: mc.runs,
            completed: (0..mc.runs).map(|_| None).collect(),
        }
    }

    /// The base seed of the sweep this checkpoint belongs to.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Total number of runs in the sweep.
    pub fn runs(&self) -> usize {
        self.runs
    }

    /// Number of samples already completed.
    pub fn completed_runs(&self) -> usize {
        self.completed.iter().filter(|s| s.is_some()).count()
    }

    /// True once every sample is present.
    pub fn is_complete(&self) -> bool {
        self.completed.iter().all(|s| s.is_some())
    }

    /// Indices of the runs still to do, ascending.
    pub fn pending(&self) -> impl Iterator<Item = usize> + '_ {
        self.completed
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_none())
            .map(|(i, _)| i)
    }

    /// The completed `(run, value)` pairs, in run order.
    pub fn partial(&self) -> Vec<(usize, T)>
    where
        T: Clone,
    {
        self.completed
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|v| (i, v.clone())))
            .collect()
    }

    /// Loads a checkpoint from disk.
    ///
    /// # Errors
    ///
    /// [`McError::Io`] if the file cannot be read,
    /// [`McError::CorruptCheckpoint`] if it does not parse as a
    /// checkpoint — covering truncated files, non-JSON garbage,
    /// well-formed JSON that is not a checkpoint, and any payload whose
    /// envelope checksum no longer matches (a flipped byte that still
    /// parses as different-but-valid JSON is caught here rather than
    /// silently resuming wrong samples). The error carries the path and
    /// enough parse context (the serde failure plus a preview of the
    /// offending content) to identify the damaged file without opening
    /// it.
    pub fn resume_from(path: impl AsRef<Path>) -> Result<McCheckpoint<T>, McError<T>>
    where
        T: Deserialize,
    {
        let path = path.as_ref();
        let bytes = std::fs::read(path).map_err(|e| McError::Io {
            path: path.to_path_buf(),
            message: e.to_string(),
        })?;
        let corrupt = |detail: String| McError::CorruptCheckpoint {
            path: path.to_path_buf(),
            detail,
        };
        // A checkpoint is pure ASCII JSON as written; a byte that breaks
        // UTF-8 is disk/transport corruption, not an I/O failure.
        let text = String::from_utf8(bytes)
            .map_err(|e| corrupt(format!("checkpoint is not valid UTF-8: {e}")))?;
        let (header, payload) = text
            .split_once('\n')
            .ok_or_else(|| corrupt(corrupt_detail(&text, "missing checksum header line")))?;
        let stored = header
            .strip_prefix(CHECKPOINT_HEADER)
            .and_then(|hex| u64::from_str_radix(hex.trim(), 16).ok())
            .ok_or_else(|| corrupt(corrupt_detail(&text, "missing checksum header line")))?;
        let actual = fnv1a64(payload.as_bytes());
        if actual != stored {
            return Err(corrupt(format!(
                "payload checksum mismatch (stored {stored:016x}, computed {actual:016x}) — \
                 the file was modified or truncated after it was written"
            )));
        }
        serde_json::from_str(payload).map_err(|e| corrupt(corrupt_detail(payload, &e.to_string())))
    }

    /// Atomically writes the checkpoint to `path` (via a sibling
    /// temporary file and rename, so a crash mid-write never corrupts
    /// an existing checkpoint). The temporary file is fsynced before
    /// the rename — and the parent directory after it — so the rename
    /// can never be reordered ahead of the data reaching disk (the
    /// classic way an "atomic" write leaves an empty file after a
    /// power loss). The file carries a first-line FNV-1a checksum of
    /// the JSON payload, verified by [`McCheckpoint::resume_from`].
    ///
    /// # Errors
    ///
    /// [`McError::Io`] on any filesystem failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), McError<T>>
    where
        T: Serialize,
    {
        let path = path.as_ref();
        let io_err = |e: std::io::Error| McError::Io {
            path: path.to_path_buf(),
            message: e.to_string(),
        };
        let mut tmp_name = path.as_os_str().to_owned();
        tmp_name.push(".tmp");
        let tmp = PathBuf::from(tmp_name);
        let payload = serde_json::to_string_pretty(self).map_err(|e| McError::Io {
            path: path.to_path_buf(),
            message: e.to_string(),
        })?;
        let text = format!(
            "{CHECKPOINT_HEADER}{:016x}\n{payload}",
            fnv1a64(payload.as_bytes())
        );
        {
            use std::io::Write;
            let mut file = std::fs::File::create(&tmp).map_err(io_err)?;
            file.write_all(text.as_bytes()).map_err(io_err)?;
            file.sync_all().map_err(io_err)?;
        }
        std::fs::rename(&tmp, path).map_err(io_err)?;
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::File::open(parent)
                .and_then(|dir| dir.sync_all())
                .map_err(io_err)?;
        }
        Ok(())
    }

    /// Fails unless the checkpoint's identity matches the runner's.
    fn matches(&self, mc: &MonteCarlo) -> Result<(), McError<T>> {
        if self.seed != mc.seed {
            return Err(McError::Mismatch {
                field: "seed",
                expected: mc.seed,
                found: self.seed,
            });
        }
        if self.runs != mc.runs {
            return Err(McError::Mismatch {
                field: "runs",
                expected: mc.runs as u64,
                found: self.runs as u64,
            });
        }
        Ok(())
    }
}

impl<T: Serialize> Serialize for McCheckpoint<T> {
    // Hand-written (not derived): the vendored derive macro does not
    // support generic types. The seed is stored as a hex string so
    // values above 2^53 survive the f64-backed JSON number type.
    fn to_json(&self) -> Value {
        let samples = self
            .completed
            .iter()
            .enumerate()
            .filter_map(|(run, slot)| {
                slot.as_ref().map(|v| {
                    Value::Object(vec![
                        ("run".to_string(), Value::Number(run as f64)),
                        ("value".to_string(), v.to_json()),
                    ])
                })
            })
            .collect();
        Value::Object(vec![
            (
                "format".to_string(),
                Value::String(CHECKPOINT_FORMAT.to_string()),
            ),
            (
                "seed".to_string(),
                Value::String(format!("{:016x}", self.seed)),
            ),
            ("runs".to_string(), Value::Number(self.runs as f64)),
            ("samples".to_string(), Value::Array(samples)),
        ])
    }
}

impl<T: Deserialize> Deserialize for McCheckpoint<T> {
    fn from_json(v: &Value) -> Result<Self, de::Error> {
        let field = |key: &str| {
            v.get(key)
                .ok_or_else(|| de::Error::msg(format!("missing `{key}`")))
        };
        match field("format")? {
            Value::String(s) if s == CHECKPOINT_FORMAT => {}
            _ => return Err(de::Error::msg("unrecognized checkpoint format")),
        }
        let seed = match field("seed")? {
            Value::String(s) => {
                u64::from_str_radix(s, 16).map_err(|e| de::Error::msg(format!("bad seed: {e}")))?
            }
            _ => return Err(de::Error::msg("seed must be a hex string")),
        };
        let runs = usize::from_json(field("runs")?)?;
        let mut completed: Vec<Option<T>> = (0..runs).map(|_| None).collect();
        let samples = match field("samples")? {
            Value::Array(a) => a,
            _ => return Err(de::Error::msg("samples must be an array")),
        };
        for s in samples {
            let run = usize::from_json(
                s.get("run")
                    .ok_or_else(|| de::Error::msg("sample missing `run`"))?,
            )?;
            if run >= runs {
                return Err(de::Error::msg(format!("sample run {run} out of range")));
            }
            let value = T::from_json(
                s.get("value")
                    .ok_or_else(|| de::Error::msg("sample missing `value`"))?,
            )?;
            completed[run] = Some(value);
        }
        Ok(McCheckpoint {
            seed,
            runs,
            completed,
        })
    }
}

/// Failures of a resumable Monte-Carlo sweep.
#[derive(Debug, Clone, PartialEq)]
pub enum McError<T> {
    /// The checkpoint file could not be read or written.
    Io {
        /// The checkpoint path involved.
        path: PathBuf,
        /// The underlying I/O error, rendered.
        message: String,
    },
    /// The checkpoint file exists but is not a parseable checkpoint
    /// (truncated write, garbage content, or wrong JSON shape).
    CorruptCheckpoint {
        /// The checkpoint path involved.
        path: PathBuf,
        /// What failed to parse, with a preview of the offending
        /// content.
        detail: String,
    },
    /// The checkpoint belongs to a different sweep (seed or run count
    /// differ); refusing to mix samples from two experiments.
    Mismatch {
        /// Which identity field differed.
        field: &'static str,
        /// The runner's value.
        expected: u64,
        /// The checkpoint's value.
        found: u64,
    },
    /// The budget ran out or the sweep was cancelled. Completed
    /// samples are preserved on disk and carried here; rerunning with
    /// the same checkpoint path continues from them.
    Interrupted {
        /// The budget error that stopped the sweep.
        reason: SpiceError,
        /// The completed `(run, value)` pairs so far.
        partial: Vec<(usize, T)>,
    },
}

impl<T> fmt::Display for McError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            McError::Io { path, message } => {
                write!(f, "checkpoint I/O failed at {}: {message}", path.display())
            }
            McError::CorruptCheckpoint { path, detail } => {
                write!(f, "corrupt checkpoint {}: {detail}", path.display())
            }
            McError::Mismatch {
                field,
                expected,
                found,
            } => write!(
                f,
                "checkpoint `{field}` mismatch: sweep has {expected}, file has {found}"
            ),
            McError::Interrupted { reason, partial } => write!(
                f,
                "sweep interrupted ({reason}); {} samples completed and checkpointed",
                partial.len()
            ),
        }
    }
}

impl<T: fmt::Debug> std::error::Error for McError<T> {}

/// How a fault-tolerant fan-out treats failed jobs.
#[derive(Debug, Clone, PartialEq)]
pub enum FailurePolicy<T> {
    /// The first failure (in job order) aborts the whole batch.
    FailFast,
    /// Failed jobs keep their per-job error in the report; the batch
    /// only fails once more than `max_failures` jobs have failed.
    SkipAndReport {
        /// Largest tolerated number of failed jobs.
        max_failures: usize,
    },
    /// Failed jobs are replaced by a clone of the fallback value and
    /// counted in [`FanOutReport::failures`]; the batch never fails.
    Substitute(T),
}

/// Why a single job of a fault-tolerant fan-out failed.
#[derive(Debug, Clone, PartialEq)]
pub enum JobError<E> {
    /// The job returned a typed error.
    Failed(E),
    /// The job panicked; the payload is rendered to a string so the
    /// batch stays `Send` and comparable.
    Panicked {
        /// The panic payload, stringified.
        message: String,
    },
}

impl<E: fmt::Display> fmt::Display for JobError<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Failed(e) => write!(f, "job failed: {e}"),
            JobError::Panicked { message } => write!(f, "job panicked: {message}"),
        }
    }
}

/// A batch-level failure of [`try_fan_out`] under a [`FailurePolicy`].
#[derive(Debug, Clone, PartialEq)]
pub enum FanOutError<E> {
    /// `FailFast`: the first failed job, in job order.
    Job {
        /// Index of the failed job.
        index: usize,
        /// What went wrong.
        error: JobError<E>,
    },
    /// `SkipAndReport`: more jobs failed than the policy tolerates.
    TooManyFailures {
        /// Number of failed jobs.
        failed: usize,
        /// The policy's failure budget.
        max_failures: usize,
        /// The first failure, for diagnosis.
        first: Box<JobError<E>>,
    },
}

impl<E: fmt::Display> fmt::Display for FanOutError<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FanOutError::Job { index, error } => write!(f, "job {index}: {error}"),
            FanOutError::TooManyFailures {
                failed,
                max_failures,
                first,
            } => write!(
                f,
                "{failed} jobs failed (budget {max_failures}); first: {first}"
            ),
        }
    }
}

impl<E: fmt::Display + fmt::Debug> std::error::Error for FanOutError<E> {}

/// The outcome of a fault-tolerant fan-out that was allowed to finish.
#[derive(Debug, Clone, PartialEq)]
pub struct FanOutReport<T, E> {
    /// Per-job results, in job order. Under
    /// [`FailurePolicy::Substitute`] every entry is `Ok` (failures were
    /// replaced by the fallback); under
    /// [`FailurePolicy::SkipAndReport`] failed jobs keep their error.
    pub results: Vec<Result<T, JobError<E>>>,
    /// Number of jobs that failed (including substituted ones).
    pub failures: usize,
}

impl<T, E> FanOutReport<T, E> {
    /// The successful values, in job order (skipping failed jobs).
    pub fn values(&self) -> impl Iterator<Item = &T> {
        self.results.iter().filter_map(|r| r.as_ref().ok())
    }

    /// True when every job succeeded.
    pub fn is_clean(&self) -> bool {
        self.failures == 0
    }
}

/// Renders a panic payload (as produced by `catch_unwind`) to a string.
fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `jobs` independent jobs, fanned out over OS threads when
/// `parallel`, and collects the results in job order.
///
/// Each worker thread builds one scratch state with `init` and hands it
/// to `f` for every job in its chunk, so per-job allocations (solver
/// workspaces, cloned circuits) are paid once per thread rather than
/// once per job. This is the machinery behind [`MonteCarlo::run`],
/// exposed for other batch drivers such as the CIM batched MAC engine.
///
/// Results depend only on the job index, never on the thread layout:
/// `f` must not leak state between jobs through `S` if callers compare
/// against a sequential reference bit for bit.
pub fn fan_out<S, T, I, F>(jobs: usize, parallel: bool, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    let mut out = Vec::with_capacity(jobs);
    for slot in fan_out_raw(jobs, parallel, &init, &f) {
        match slot {
            Ok(v) => out.push(v),
            // Preserve the historical contract: a panicking job takes
            // the whole fan-out down with its original payload.
            Err(payload) => resume_unwind(payload),
        }
    }
    out
}

/// Panic-isolating fan-out core: every job runs under `catch_unwind`,
/// and a panicked job yields its payload instead of poisoning the
/// batch. A worker whose scratch state witnessed a panic rebuilds it
/// with `init` before the next job, since `f` may have been interrupted
/// mid-mutation.
fn fan_out_raw<S, T, I, F>(
    jobs: usize,
    parallel: bool,
    init: &I,
    f: &F,
) -> Vec<Result<T, Box<dyn Any + Send>>>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    let run_job = |state: &mut S, i: usize| -> Result<T, Box<dyn Any + Send>> {
        let result = catch_unwind(AssertUnwindSafe(|| f(state, i)));
        if result.is_err() {
            *state = init();
        }
        result
    };
    if !parallel || jobs < 2 {
        let mut state = init();
        return (0..jobs).map(|i| run_job(&mut state, i)).collect();
    }
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(jobs);
    let mut results: Vec<Option<Result<T, Box<dyn Any + Send>>>> =
        (0..jobs).map(|_| None).collect();
    let chunk = jobs.div_ceil(threads);
    std::thread::scope(|scope| {
        for (t, slot_chunk) in results.chunks_mut(chunk).enumerate() {
            let run_job = &run_job;
            let init = &init;
            scope.spawn(move || {
                let mut state = init();
                for (j, slot) in slot_chunk.iter_mut().enumerate() {
                    *slot = Some(run_job(&mut state, t * chunk + j));
                }
            });
        }
    });
    results
        .into_iter()
        .map(|slot| {
            slot.unwrap_or_else(|| {
                Err(Box::new("fan-out job slot never filled".to_string()) as Box<dyn Any + Send>)
            })
        })
        .collect()
}

/// Fault-tolerant fan-out: like [`fan_out`] for fallible jobs, with the
/// batch outcome governed by a [`FailurePolicy`]. A job that returns
/// `Err` or panics becomes a [`JobError`] in the per-job results; the
/// other jobs are unaffected (each worker rebuilds its scratch state
/// after a panic).
///
/// # Errors
///
/// * [`FanOutError::Job`] under [`FailurePolicy::FailFast`] when any
///   job failed — carrying the first failure in job order.
/// * [`FanOutError::TooManyFailures`] under
///   [`FailurePolicy::SkipAndReport`] when more than `max_failures`
///   jobs failed.
///
/// [`FailurePolicy::Substitute`] never fails the batch.
pub fn try_fan_out<S, T, E, I, F>(
    jobs: usize,
    parallel: bool,
    policy: &FailurePolicy<T>,
    init: I,
    f: F,
) -> Result<FanOutReport<T, E>, FanOutError<E>>
where
    T: Send + Clone,
    E: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> Result<T, E> + Sync,
{
    let raw = fan_out_raw(jobs, parallel, &init, &f);
    let mut results: Vec<Result<T, JobError<E>>> = Vec::with_capacity(raw.len());
    let mut failures = 0usize;
    for slot in raw {
        let item = match slot {
            Ok(Ok(v)) => Ok(v),
            Ok(Err(e)) => Err(JobError::Failed(e)),
            Err(payload) => Err(JobError::Panicked {
                message: panic_message(payload.as_ref()),
            }),
        };
        if item.is_err() {
            failures += 1;
        }
        results.push(item);
    }
    apply_policy(results, failures, policy)
}

/// Folds per-job results and a failure count into the policy-governed
/// batch outcome. Shared by [`try_fan_out`] and higher-level batch
/// engines that count failures at their own job granularity (e.g. a
/// matrix-vector batch whose "job" spans several row solves).
pub fn apply_policy<T, E>(
    mut results: Vec<Result<T, JobError<E>>>,
    failures: usize,
    policy: &FailurePolicy<T>,
) -> Result<FanOutReport<T, E>, FanOutError<E>>
where
    T: Clone,
{
    match policy {
        FailurePolicy::FailFast if failures > 0 => {
            for (index, slot) in results.into_iter().enumerate() {
                if let Err(error) = slot {
                    return Err(FanOutError::Job { index, error });
                }
            }
            unreachable!("failures > 0 implies an Err slot")
        }
        FailurePolicy::SkipAndReport { max_failures } if failures > *max_failures => {
            for slot in results {
                if let Err(error) = slot {
                    return Err(FanOutError::TooManyFailures {
                        failed: failures,
                        max_failures: *max_failures,
                        first: Box::new(error),
                    });
                }
            }
            unreachable!("failures > max_failures implies an Err slot")
        }
        FailurePolicy::Substitute(fallback) => {
            for slot in results.iter_mut() {
                if slot.is_err() {
                    *slot = Ok(fallback.clone());
                }
            }
            Ok(FanOutReport { results, failures })
        }
        _ => Ok(FanOutReport { results, failures }),
    }
}

/// Builds the parse-context string for a corrupt checkpoint: the serde
/// failure plus a bounded preview of the file content (empty and
/// truncated files are called out explicitly).
fn corrupt_detail(text: &str, parse_error: &str) -> String {
    const PREVIEW: usize = 120;
    if text.trim().is_empty() {
        return format!("{parse_error} (file is empty)");
    }
    let flat: String = text
        .chars()
        .take(PREVIEW)
        .map(|c| if c.is_control() { ' ' } else { c })
        .collect();
    if text.chars().count() > PREVIEW {
        format!("{parse_error} (content starts {flat:?}…)")
    } else {
        format!("{parse_error} (content {flat:?})")
    }
}

/// SplitMix64 scrambler for decorrelating per-run seeds.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Summary statistics over a sample of scalars.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleStats {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl SampleStats {
    /// Computes statistics over the given samples. Returns `None` for an
    /// empty sample.
    pub fn of(samples: &[f64]) -> Option<SampleStats> {
        if samples.is_empty() {
            return None;
        }
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Some(SampleStats {
            n,
            mean,
            std_dev: var.sqrt(),
            min,
            max,
        })
    }
}

/// Builds a histogram of the samples over `bins` equal-width bins
/// between `lo` and `hi`; out-of-range samples are clamped into the end
/// bins. Returns the per-bin counts.
pub fn histogram(samples: &[f64], lo: f64, hi: f64, bins: usize) -> Vec<usize> {
    assert!(bins > 0, "histogram needs at least one bin");
    assert!(hi > lo, "histogram range must be non-empty");
    let mut counts = vec![0usize; bins];
    let width = (hi - lo) / bins as f64;
    for &s in samples {
        let idx = (((s - lo) / width).floor() as isize).clamp(0, bins as isize - 1) as usize;
        counts[idx] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CancelToken;
    use rand::Rng;

    #[test]
    fn results_are_in_run_order_and_reproducible() {
        let mc = MonteCarlo::new(32, 7);
        let a: Vec<u64> = mc.run(|i, rng| (i as u64) << 32 | rng.random::<u32>() as u64);
        let b: Vec<u64> = mc.run(|i, rng| (i as u64) << 32 | rng.random::<u32>() as u64);
        assert_eq!(a, b);
        for (i, v) in a.iter().enumerate() {
            assert_eq!(v >> 32, i as u64);
        }
    }

    #[test]
    fn sequential_matches_parallel() {
        let par = MonteCarlo::new(17, 99);
        let seq = par.clone().sequential();
        let f = |i: usize, rng: &mut StdRng| (i, rng.random::<u64>());
        assert_eq!(par.run(f), seq.run(f));
    }

    #[test]
    fn fewer_runs_than_threads_matches_sequential() {
        // The chunked fan-out must fill every slot even when the run
        // count is below the thread count (including the empty batch).
        let f = |i: usize, rng: &mut StdRng| (i as u64) ^ rng.random::<u64>();
        for runs in 0..4 {
            let par = MonteCarlo::new(runs, 3).run(f);
            let seq = MonteCarlo::new(runs, 3).sequential().run(f);
            assert_eq!(par, seq, "diverged at {runs} runs");
            assert_eq!(par.len(), runs);
        }
    }

    #[test]
    fn fan_out_keeps_job_order_and_thread_state() {
        // Per-thread scratch state must never change the results, only
        // amortize allocations; job order must be preserved.
        let par = fan_out(37, true, Vec::<usize>::new, |scratch, i| {
            scratch.push(i);
            i * i
        });
        let seq = fan_out(37, false, Vec::<usize>::new, |scratch, i| {
            scratch.push(i);
            i * i
        });
        assert_eq!(par, seq);
        assert_eq!(par[5], 25);
    }

    #[test]
    fn per_run_rngs_are_decorrelated() {
        let mc = MonteCarlo::new(100, 5);
        let firsts: Vec<u64> = mc.run(|_, rng| rng.random());
        let mut sorted = firsts.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), firsts.len(), "duplicate rng streams detected");
    }

    #[test]
    fn stats_of_known_sample() {
        let stats = SampleStats::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(stats.n, 4);
        assert!((stats.mean - 2.5).abs() < 1e-12);
        assert!((stats.std_dev - (1.25f64).sqrt()).abs() < 1e-12);
        assert_eq!(stats.min, 1.0);
        assert_eq!(stats.max, 4.0);
        assert!(SampleStats::of(&[]).is_none());
    }

    #[test]
    fn histogram_bins_and_clamps() {
        let h = histogram(&[0.1, 0.1, 0.5, 0.9, -3.0, 7.0], 0.0, 1.0, 10);
        assert_eq!(h.iter().sum::<usize>(), 6);
        assert_eq!(h[1], 2); // the two 0.1 samples
        assert_eq!(h[0], 1); // clamped -3.0
        assert_eq!(h[9], 2); // 0.9 and clamped 7.0
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_rejects_zero_bins() {
        let _ = histogram(&[1.0], 0.0, 1.0, 0);
    }

    fn scratch_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("ferrocim-mc-{tag}-{}.json", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn checkpoint_round_trips_exactly_through_json() {
        let mc = MonteCarlo::new(5, 0xDEAD_BEEF_CAFE_F00D);
        let mut ckpt: McCheckpoint<f64> = McCheckpoint::empty(&mc);
        ckpt.completed[0] = Some(1.0 / 3.0);
        ckpt.completed[3] = Some(-2.5e-18);
        let path = scratch_path("roundtrip");
        ckpt.save(&path).unwrap();
        let back: McCheckpoint<f64> = McCheckpoint::resume_from(&path).unwrap();
        assert_eq!(back, ckpt);
        assert_eq!(back.seed(), 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(back.completed_runs(), 2);
        assert_eq!(back.pending().collect::<Vec<_>>(), vec![1, 2, 4]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resumable_run_matches_uninterrupted_run_bitwise() {
        let mc = MonteCarlo::new(17, 42).sequential();
        let direct: Vec<f64> = mc.run(|i, rng| rng.random::<f64>() * (i as f64 + 1.0));
        let path = scratch_path("resume");

        // Interrupt the sweep after 6 samples via a step budget.
        let tight = Budget::unlimited().with_max_steps(6);
        let err = mc
            .run_resumable(&path, 3, &tight, |i, rng| {
                rng.random::<f64>() * (i as f64 + 1.0)
            })
            .unwrap_err();
        match &err {
            McError::Interrupted { reason, partial } => {
                assert!(matches!(reason, SpiceError::BudgetExceeded { .. }));
                assert_eq!(partial.len(), 6);
            }
            other => panic!("expected Interrupted, got {other:?}"),
        }

        // Resume with no limit: must complete and match bit for bit.
        let resumed = mc
            .run_resumable(&path, 3, &Budget::unlimited(), |i, rng| {
                rng.random::<f64>() * (i as f64 + 1.0)
            })
            .unwrap();
        assert_eq!(resumed, direct);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resumable_run_rejects_mismatched_checkpoints() {
        let path = scratch_path("mismatch");
        let mc = MonteCarlo::new(4, 1).sequential();
        mc.run_resumable(&path, 2, &Budget::unlimited(), |i, _| i as f64)
            .unwrap();
        let other = MonteCarlo::new(4, 2).sequential();
        let err = other
            .run_resumable(&path, 2, &Budget::unlimited(), |i, _| i as f64)
            .unwrap_err();
        assert!(matches!(err, McError::Mismatch { field: "seed", .. }));
        let wrong_runs = MonteCarlo::new(5, 1).sequential();
        let err = wrong_runs
            .run_resumable(&path, 2, &Budget::unlimited(), |i, _| i as f64)
            .unwrap_err();
        assert!(matches!(err, McError::Mismatch { field: "runs", .. }));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncated_or_garbage_checkpoints_are_typed_errors() {
        let path = scratch_path("corrupt");
        let mc = MonteCarlo::new(4, 11).sequential();

        // Garbage bytes (e.g. a crashed editor or disk corruption).
        std::fs::write(&path, "not json at all").unwrap();
        let err = mc
            .run_resumable(&path, 2, &Budget::unlimited(), |i, _| i as f64)
            .unwrap_err();
        match &err {
            McError::CorruptCheckpoint { path: p, detail } => {
                assert_eq!(p, &path);
                assert!(detail.contains("not json at all"), "detail: {detail}");
            }
            other => panic!("expected CorruptCheckpoint, got {other:?}"),
        }

        // A truncated write of an otherwise valid checkpoint.
        let _ = std::fs::remove_file(&path);
        mc.run_resumable(&path, 2, &Budget::unlimited(), |i, _| i as f64)
            .unwrap();
        let full = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        let err = mc
            .run_resumable(&path, 2, &Budget::unlimited(), |i, _| i as f64)
            .unwrap_err();
        assert!(matches!(err, McError::CorruptCheckpoint { .. }), "{err:?}");

        // An empty file is called out explicitly.
        std::fs::write(&path, "").unwrap();
        let err = McCheckpoint::<f64>::resume_from(&path).unwrap_err();
        match err {
            McError::CorruptCheckpoint { detail, .. } => {
                assert!(detail.contains("file is empty"), "detail: {detail}");
            }
            other => panic!("expected CorruptCheckpoint, got {other:?}"),
        }

        // Valid JSON with the wrong shape is still a checkpoint error.
        std::fs::write(&path, "{\"format\":\"something-else\"}").unwrap();
        let err = McCheckpoint::<f64>::resume_from(&path).unwrap_err();
        assert!(matches!(err, McError::CorruptCheckpoint { .. }), "{err:?}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn cancelled_resumable_run_saves_progress() {
        let path = scratch_path("cancel");
        let mc = MonteCarlo::new(8, 9).sequential();
        let token = CancelToken::new();
        token.cancel();
        let budget = Budget::unlimited().with_cancel_token(&token);
        let err = mc
            .run_resumable(&path, 4, &budget, |i, _| i as f64)
            .unwrap_err();
        match err {
            McError::Interrupted { reason, partial } => {
                assert!(matches!(reason, SpiceError::Cancelled));
                assert!(partial.is_empty());
            }
            other => panic!("expected Interrupted, got {other:?}"),
        }
        assert!(path.exists());
        let _ = std::fs::remove_file(&path);
    }
}
