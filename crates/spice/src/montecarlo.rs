//! Monte-Carlo driver: runs a seeded closure many times, optionally in
//! parallel across OS threads.
//!
//! The paper's Fig. 9 runs 100 samples of the 2T-1FeFET array with
//! `σ_VT = 54 mV`; this driver provides the deterministic seeding and
//! fan-out for that experiment (and any other statistical sweep).

use rand::rngs::StdRng;
use rand::SeedableRng;

/// A deterministic Monte-Carlo experiment runner.
///
/// Each run `i` receives its own RNG derived from `(seed, i)` by
/// SplitMix64 scrambling, so results are reproducible regardless of
/// thread scheduling and independent of how many runs execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonteCarlo {
    runs: usize,
    seed: u64,
    parallel: bool,
}

impl MonteCarlo {
    /// Creates a runner for `runs` samples from a base seed.
    pub fn new(runs: usize, seed: u64) -> Self {
        MonteCarlo {
            runs,
            seed,
            parallel: true,
        }
    }

    /// Disables thread fan-out (useful when the closure is not `Sync`
    /// friendly or for debugging).
    pub fn sequential(mut self) -> Self {
        self.parallel = false;
        self
    }

    /// Number of runs.
    pub fn runs(&self) -> usize {
        self.runs
    }

    /// The per-run RNG for run index `i` (exposed so callers can
    /// reproduce a single interesting run in isolation).
    pub fn rng_for(&self, run: usize) -> StdRng {
        StdRng::seed_from_u64(splitmix64(
            self.seed ^ (run as u64).wrapping_mul(0x9E3779B97F4A7C15),
        ))
    }

    /// Executes `f(run_index, rng)` for every run and collects the
    /// results in run order.
    pub fn run<T, F>(&self, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, &mut StdRng) -> T + Sync,
    {
        fan_out(
            self.runs,
            self.parallel,
            || (),
            |(), run| {
                let mut rng = self.rng_for(run);
                f(run, &mut rng)
            },
        )
    }
}

/// Runs `jobs` independent jobs, fanned out over OS threads when
/// `parallel`, and collects the results in job order.
///
/// Each worker thread builds one scratch state with `init` and hands it
/// to `f` for every job in its chunk, so per-job allocations (solver
/// workspaces, cloned circuits) are paid once per thread rather than
/// once per job. This is the machinery behind [`MonteCarlo::run`],
/// exposed for other batch drivers such as the CIM batched MAC engine.
///
/// Results depend only on the job index, never on the thread layout:
/// `f` must not leak state between jobs through `S` if callers compare
/// against a sequential reference bit for bit.
pub fn fan_out<S, T, I, F>(jobs: usize, parallel: bool, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    if !parallel || jobs < 2 {
        let mut state = init();
        return (0..jobs).map(|i| f(&mut state, i)).collect();
    }
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(jobs);
    let mut results: Vec<Option<T>> = (0..jobs).map(|_| None).collect();
    let chunk = jobs.div_ceil(threads);
    std::thread::scope(|scope| {
        for (t, slot_chunk) in results.chunks_mut(chunk).enumerate() {
            let init = &init;
            let f = &f;
            scope.spawn(move || {
                let mut state = init();
                for (j, slot) in slot_chunk.iter_mut().enumerate() {
                    *slot = Some(f(&mut state, t * chunk + j));
                }
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every job slot filled"))
        .collect()
}

/// SplitMix64 scrambler for decorrelating per-run seeds.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Summary statistics over a sample of scalars.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleStats {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl SampleStats {
    /// Computes statistics over the given samples. Returns `None` for an
    /// empty sample.
    pub fn of(samples: &[f64]) -> Option<SampleStats> {
        if samples.is_empty() {
            return None;
        }
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Some(SampleStats {
            n,
            mean,
            std_dev: var.sqrt(),
            min,
            max,
        })
    }
}

/// Builds a histogram of the samples over `bins` equal-width bins
/// between `lo` and `hi`; out-of-range samples are clamped into the end
/// bins. Returns the per-bin counts.
pub fn histogram(samples: &[f64], lo: f64, hi: f64, bins: usize) -> Vec<usize> {
    assert!(bins > 0, "histogram needs at least one bin");
    assert!(hi > lo, "histogram range must be non-empty");
    let mut counts = vec![0usize; bins];
    let width = (hi - lo) / bins as f64;
    for &s in samples {
        let idx = (((s - lo) / width).floor() as isize).clamp(0, bins as isize - 1) as usize;
        counts[idx] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn results_are_in_run_order_and_reproducible() {
        let mc = MonteCarlo::new(32, 7);
        let a: Vec<u64> = mc.run(|i, rng| (i as u64) << 32 | rng.random::<u32>() as u64);
        let b: Vec<u64> = mc.run(|i, rng| (i as u64) << 32 | rng.random::<u32>() as u64);
        assert_eq!(a, b);
        for (i, v) in a.iter().enumerate() {
            assert_eq!(v >> 32, i as u64);
        }
    }

    #[test]
    fn sequential_matches_parallel() {
        let par = MonteCarlo::new(17, 99);
        let seq = par.sequential();
        let f = |i: usize, rng: &mut StdRng| (i, rng.random::<u64>());
        assert_eq!(par.run(f), seq.run(f));
    }

    #[test]
    fn fewer_runs_than_threads_matches_sequential() {
        // The chunked fan-out must fill every slot even when the run
        // count is below the thread count (including the empty batch).
        let f = |i: usize, rng: &mut StdRng| (i as u64) ^ rng.random::<u64>();
        for runs in 0..4 {
            let par = MonteCarlo::new(runs, 3).run(f);
            let seq = MonteCarlo::new(runs, 3).sequential().run(f);
            assert_eq!(par, seq, "diverged at {runs} runs");
            assert_eq!(par.len(), runs);
        }
    }

    #[test]
    fn fan_out_keeps_job_order_and_thread_state() {
        // Per-thread scratch state must never change the results, only
        // amortize allocations; job order must be preserved.
        let par = fan_out(37, true, Vec::<usize>::new, |scratch, i| {
            scratch.push(i);
            i * i
        });
        let seq = fan_out(37, false, Vec::<usize>::new, |scratch, i| {
            scratch.push(i);
            i * i
        });
        assert_eq!(par, seq);
        assert_eq!(par[5], 25);
    }

    #[test]
    fn per_run_rngs_are_decorrelated() {
        let mc = MonteCarlo::new(100, 5);
        let firsts: Vec<u64> = mc.run(|_, rng| rng.random());
        let mut sorted = firsts.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), firsts.len(), "duplicate rng streams detected");
    }

    #[test]
    fn stats_of_known_sample() {
        let stats = SampleStats::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(stats.n, 4);
        assert!((stats.mean - 2.5).abs() < 1e-12);
        assert!((stats.std_dev - (1.25f64).sqrt()).abs() < 1e-12);
        assert_eq!(stats.min, 1.0);
        assert_eq!(stats.max, 4.0);
        assert!(SampleStats::of(&[]).is_none());
    }

    #[test]
    fn histogram_bins_and_clamps() {
        let h = histogram(&[0.1, 0.1, 0.5, 0.9, -3.0, 7.0], 0.0, 1.0, 10);
        assert_eq!(h.iter().sum::<usize>(), 6);
        assert_eq!(h[1], 2); // the two 0.1 samples
        assert_eq!(h[0], 1); // clamped -3.0
        assert_eq!(h[9], 2); // 0.9 and clamped 7.0
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_rejects_zero_bins() {
        let _ = histogram(&[1.0], 0.0, 1.0, 0);
    }
}
