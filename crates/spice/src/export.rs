//! SPICE-format netlist export, for inspecting the circuits the CIM
//! builders generate and for cross-checking against external
//! simulators.
//!
//! The emitted deck uses standard SPICE conventions where a direct
//! mapping exists (R/C/V/I cards) and comment-annotated behavioural
//! cards for the compact-model devices (which external simulators would
//! replace with their own `.model` definitions).

use crate::netlist::{Circuit, Element};
use ferrocim_units::Second;
use std::fmt::Write as _;

/// Renders a circuit as a SPICE-like netlist deck.
///
/// # Examples
///
/// ```
/// use ferrocim_spice::{export_netlist, Circuit, Element, NodeId};
/// use ferrocim_units::{Ohm, Volt};
///
/// # fn main() -> Result<(), ferrocim_spice::SpiceError> {
/// let mut ckt = Circuit::new();
/// let a = ckt.node("in");
/// ckt.add(Element::vdc("V1", a, NodeId::GROUND, Volt(1.2)))?;
/// ckt.add(Element::resistor("R1", a, NodeId::GROUND, Ohm(1e3)))?;
/// let deck = export_netlist(&ckt, "divider");
/// assert!(deck.contains("V1 in 0 DC 1.2"));
/// assert!(deck.contains("R1 in 0 1000"));
/// # Ok(())
/// # }
/// ```
pub fn export_netlist(circuit: &Circuit, title: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "* {title}");
    let _ = writeln!(out, "* exported by ferrocim-spice");
    let node = |id| circuit.node_name(id);
    for e in circuit.elements() {
        match e {
            Element::Resistor {
                name,
                a,
                b,
                resistance,
            } => {
                let _ = writeln!(
                    out,
                    "{name} {} {} {}",
                    node(*a),
                    node(*b),
                    resistance.value()
                );
            }
            Element::Capacitor {
                name,
                a,
                b,
                capacitance,
                initial,
            } => {
                let ic = initial
                    .map(|v| format!(" IC={}", v.value()))
                    .unwrap_or_default();
                let _ = writeln!(
                    out,
                    "{name} {} {} {:e}{ic}",
                    node(*a),
                    node(*b),
                    capacitance.value()
                );
            }
            Element::VoltageSource {
                name,
                pos,
                neg,
                waveform,
            } => {
                let v0 = waveform.at(Second::ZERO).value();
                let breakpoints = waveform.breakpoints();
                if breakpoints.is_empty() {
                    let _ = writeln!(out, "{name} {} {} DC {v0}", node(*pos), node(*neg));
                } else {
                    // Render as PWL samples at the breakpoints.
                    let mut card = format!("{name} {} {} PWL(0 {v0}", node(*pos), node(*neg));
                    for bp in breakpoints {
                        let _ = write!(card, " {:e} {}", bp.value(), waveform.at(bp).value());
                    }
                    card.push(')');
                    let _ = writeln!(out, "{card}");
                }
            }
            Element::CurrentSource {
                name,
                pos,
                neg,
                current,
            } => {
                let _ = writeln!(
                    out,
                    "{name} {} {} DC {:e}",
                    node(*pos),
                    node(*neg),
                    current.value()
                );
            }
            Element::Switch {
                name,
                a,
                b,
                r_on,
                r_off,
                schedule,
            } => {
                let _ = writeln!(
                    out,
                    "* switch {name}: Ron={} Roff={} initial={}",
                    r_on.value(),
                    r_off.value(),
                    if schedule.state_at(Second::ZERO) {
                        "closed"
                    } else {
                        "open"
                    }
                );
                let _ = writeln!(
                    out,
                    "S{name} {} {} ctrl_{name} 0 SW_{name}",
                    node(*a),
                    node(*b)
                );
            }
            Element::Mosfet {
                name,
                drain,
                gate,
                source,
                model,
                vth_offset,
            } => {
                let p = model.params();
                let _ = writeln!(
                    out,
                    "M{name} {} {} {} {} NMOS_EKV W={:e} L={:e} * vth0={} dvth={}",
                    node(*drain),
                    node(*gate),
                    node(*source),
                    node(*source),
                    p.width,
                    p.length,
                    p.vth0.value(),
                    vth_offset.value()
                );
            }
            Element::Fefet {
                name,
                drain,
                gate,
                source,
                device,
            } => {
                let p = device.params();
                let _ = writeln!(
                    out,
                    "X{name} {} {} {} FEFET_PREISACH P={:.3} lowVt={} highVt={} dvth={}",
                    node(*drain),
                    node(*gate),
                    node(*source),
                    device.polarization(),
                    p.low_vt.value(),
                    p.high_vt.value(),
                    device.vth_offset().value()
                );
            }
        }
    }
    out.push_str(".end\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::{NodeId, SwitchSchedule};
    use crate::Waveform;
    use ferrocim_device::{Fefet, FefetParams, MosfetModel, MosfetParams, PolarizationState};
    use ferrocim_units::{Farad, Ohm, Volt};

    #[test]
    fn deck_contains_every_element_card() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add(Element::vdc("V1", a, NodeId::GROUND, Volt(1.2)))
            .unwrap();
        ckt.add(Element::resistor("R1", a, b, Ohm(250e3))).unwrap();
        ckt.add(Element::capacitor("C1", b, NodeId::GROUND, Farad(1e-15)))
            .unwrap();
        ckt.add(Element::switch(
            "EN",
            a,
            b,
            SwitchSchedule::open().then_at(Second(1e-9), true),
        ))
        .unwrap();
        ckt.add(Element::mosfet(
            "1",
            a,
            b,
            NodeId::GROUND,
            MosfetModel::new(MosfetParams::nmos_14nm()),
        ))
        .unwrap();
        let mut f = Fefet::new(FefetParams::paper_default());
        f.force_state(PolarizationState::LowVt);
        ckt.add(Element::fefet("F1", a, b, NodeId::GROUND, f))
            .unwrap();
        let deck = export_netlist(&ckt, "everything");
        assert!(deck.starts_with("* everything\n"));
        assert!(deck.contains("V1 a 0 DC 1.2"));
        assert!(deck.contains("R1 a b 250000"));
        assert!(deck.contains("C1 b 0 1e-15"));
        assert!(deck.contains("SEN a b"));
        assert!(deck.contains("M1 a b 0 0 NMOS_EKV"));
        assert!(deck.contains("XF1 a b 0 FEFET_PREISACH P=1.000"));
        assert!(deck.ends_with(".end\n"));
    }

    #[test]
    fn pulse_sources_render_as_pwl() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add(Element::vsource(
            "VW",
            a,
            NodeId::GROUND,
            Waveform::step(Volt(0.0), Volt(0.55), Second(5e-9)),
        ))
        .unwrap();
        let deck = export_netlist(&ckt, "pwl");
        assert!(deck.contains("VW a 0 PWL(0 0"), "{deck}");
        assert!(deck.contains("0.55"));
    }
}
