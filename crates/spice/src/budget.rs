//! Resource governance for analyses: iteration/step caps, wall-clock
//! deadlines, and cooperative cancellation.
//!
//! A [`Budget`] is threaded through every analysis entry point — DC,
//! DC sweep, transient, Monte Carlo, and the batched CIM paths built on
//! them — so a long campaign can be bounded up front instead of killed
//! from the outside. Exhaustion surfaces as the typed errors
//! [`crate::SpiceError::BudgetExceeded`] and
//! [`crate::SpiceError::Cancelled`]; batch layers catch these and
//! return whatever partial results were already complete.
//!
//! Cloning a [`Budget`] shares its spend counters, so one budget handed
//! to a fan-out governs the *total* work across all worker threads, not
//! per-thread quotas.

use crate::SpiceError;
use ferrocim_telemetry::{Event, ResourceKind, Telemetry};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shareable cooperative-cancellation flag.
///
/// Clone it freely: all clones observe the same flag, so a supervisor
/// thread can hold one handle and cancel an analysis running elsewhere.
/// Cancellation is cooperative — solvers poll the token between Newton
/// iterations and time steps, so a cancelled analysis stops at the next
/// check, not instantly.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// A wall-clock deadline.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    at: Instant,
}

impl Deadline {
    /// A deadline this far in the future.
    pub fn after(d: Duration) -> Deadline {
        Deadline {
            at: Instant::now() + d,
        }
    }

    /// A deadline at an absolute instant.
    pub fn at(instant: Instant) -> Deadline {
        Deadline { at: instant }
    }

    /// Time left before the deadline, zero once passed.
    pub fn remaining(&self) -> Duration {
        self.at.saturating_duration_since(Instant::now())
    }

    /// Whether the deadline has passed.
    pub fn expired(&self) -> bool {
        Instant::now() >= self.at
    }
}

/// Which budgeted resource ran out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum BudgetResource {
    /// The cumulative Newton-iteration cap.
    NewtonIterations {
        /// The configured limit.
        limit: u64,
    },
    /// The cumulative step cap (transient time steps, sweep points,
    /// Monte-Carlo samples).
    Steps {
        /// The configured limit.
        limit: u64,
    },
    /// The wall-clock [`Deadline`] passed.
    WallClock,
}

impl std::fmt::Display for BudgetResource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BudgetResource::NewtonIterations { limit } => {
                write!(f, "newton iterations (limit {limit})")
            }
            BudgetResource::Steps { limit } => write!(f, "steps (limit {limit})"),
            BudgetResource::WallClock => write!(f, "wall-clock deadline"),
        }
    }
}

/// A resource budget for one analysis or a whole campaign.
///
/// The default budget is unlimited and adds near-zero overhead: solvers
/// only pay for the checks that are actually configured. Spend counters
/// live behind [`Arc`]s, so clones of one budget draw from a shared
/// pool — hand the same budget to a [`crate::MonteCarlo`] fan-out and
/// the cap covers the sum of all samples.
///
/// Step accounting is coarse by design: a transient charges one step
/// per attempted time step, a DC sweep one per point, Monte Carlo one
/// per sample. Newton iterations are charged one per linearized solve,
/// including rescue-ladder retries.
#[derive(Debug, Clone, Default)]
pub struct Budget {
    max_newton_iterations: Option<u64>,
    max_steps: Option<u64>,
    deadline: Option<Deadline>,
    cancel: Option<CancelToken>,
    newton_spent: Arc<AtomicU64>,
    steps_spent: Arc<AtomicU64>,
    telemetry: Telemetry,
}

impl Budget {
    /// A budget with no limits — every check passes.
    pub fn unlimited() -> Budget {
        Budget::default()
    }

    /// Caps the cumulative number of Newton iterations.
    pub fn with_max_newton_iterations(mut self, limit: u64) -> Budget {
        self.max_newton_iterations = Some(limit);
        self
    }

    /// Caps the cumulative number of steps (time steps, sweep points,
    /// Monte-Carlo samples).
    pub fn with_max_steps(mut self, limit: u64) -> Budget {
        self.max_steps = Some(limit);
        self
    }

    /// Aborts work once the deadline passes.
    pub fn with_deadline(mut self, deadline: Deadline) -> Budget {
        self.deadline = Some(deadline);
        self
    }

    /// Attaches a cancellation token; the budget's checks fail with
    /// [`SpiceError::Cancelled`] once the token fires.
    pub fn with_cancel_token(mut self, token: &CancelToken) -> Budget {
        self.cancel = Some(token.clone());
        self
    }

    /// Attaches a telemetry handle: every charge against a configured
    /// cap additionally emits [`Event::BudgetSpend`]. Clones share the
    /// recorder along with the spend pool.
    pub fn with_recorder(mut self, telemetry: Telemetry) -> Budget {
        self.telemetry = telemetry;
        self
    }

    /// Whether any limit, deadline, or token is configured.
    pub fn is_limited(&self) -> bool {
        self.max_newton_iterations.is_some()
            || self.max_steps.is_some()
            || self.deadline.is_some()
            || self.cancel.is_some()
    }

    /// Newton iterations charged so far (only counted while a Newton
    /// cap is configured).
    pub fn newton_iterations_spent(&self) -> u64 {
        self.newton_spent.load(Ordering::Relaxed)
    }

    /// Steps charged so far (only counted while a step cap is
    /// configured).
    pub fn steps_spent(&self) -> u64 {
        self.steps_spent.load(Ordering::Relaxed)
    }

    /// Fails if the budget has been cancelled or its deadline passed.
    /// Solvers call this at every step boundary.
    pub fn check(&self) -> Result<(), SpiceError> {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Err(SpiceError::Cancelled);
            }
        }
        if let Some(deadline) = &self.deadline {
            if deadline.expired() {
                return Err(SpiceError::BudgetExceeded {
                    resource: BudgetResource::WallClock,
                });
            }
        }
        Ok(())
    }

    /// Charges `n` Newton iterations against the pool; fails once the
    /// cumulative total exceeds a configured cap, the deadline has
    /// passed, or the budget was cancelled. The deadline/cancel check
    /// runs *before* the spend is counted, so a budget whose deadline
    /// was already expired at construction refuses the very first
    /// charge instead of permitting one free iteration.
    pub fn charge_newton(&self, n: u64) -> Result<(), SpiceError> {
        self.check()?;
        if let Some(limit) = self.max_newton_iterations {
            self.telemetry.emit(|| Event::BudgetSpend {
                resource: ResourceKind::NewtonIterations,
                amount: n,
            });
            let spent = self.newton_spent.fetch_add(n, Ordering::Relaxed) + n;
            if spent > limit {
                return Err(SpiceError::BudgetExceeded {
                    resource: BudgetResource::NewtonIterations { limit },
                });
            }
        }
        Ok(())
    }

    /// Charges `n` steps against the pool; fails once the cumulative
    /// total exceeds a configured cap, the deadline has passed, or the
    /// budget was cancelled (the same pre-spend check as
    /// [`Budget::charge_newton`]).
    pub fn charge_steps(&self, n: u64) -> Result<(), SpiceError> {
        self.check()?;
        if let Some(limit) = self.max_steps {
            self.telemetry.emit(|| Event::BudgetSpend {
                resource: ResourceKind::Steps,
                amount: n,
            });
            let spent = self.steps_spent.fetch_add(n, Ordering::Relaxed) + n;
            if spent > limit {
                return Err(SpiceError::BudgetExceeded {
                    resource: BudgetResource::Steps { limit },
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_always_passes() {
        let b = Budget::unlimited();
        assert!(!b.is_limited());
        assert!(b.check().is_ok());
        assert!(b.charge_newton(1_000_000).is_ok());
        assert!(b.charge_steps(1_000_000).is_ok());
    }

    #[test]
    fn cancel_token_is_shared_across_clones() {
        let token = CancelToken::new();
        let b = Budget::unlimited().with_cancel_token(&token);
        let b2 = b.clone();
        assert!(b2.check().is_ok());
        token.cancel();
        assert_eq!(b.check(), Err(SpiceError::Cancelled));
        assert_eq!(b2.check(), Err(SpiceError::Cancelled));
    }

    #[test]
    fn newton_cap_is_a_shared_pool() {
        let b = Budget::unlimited().with_max_newton_iterations(10);
        let b2 = b.clone();
        assert!(b.charge_newton(6).is_ok());
        assert!(b2.charge_newton(4).is_ok());
        assert_eq!(
            b.charge_newton(1),
            Err(SpiceError::BudgetExceeded {
                resource: BudgetResource::NewtonIterations { limit: 10 },
            })
        );
        assert_eq!(b2.newton_iterations_spent(), 11);
    }

    #[test]
    fn step_cap_trips_at_the_limit() {
        let b = Budget::unlimited().with_max_steps(3);
        assert!(b.charge_steps(3).is_ok());
        assert_eq!(
            b.charge_steps(1),
            Err(SpiceError::BudgetExceeded {
                resource: BudgetResource::Steps { limit: 3 },
            })
        );
    }

    #[test]
    fn expired_deadline_fails_the_first_charge() {
        // Regression: a deadline already expired at construction used
        // to permit one free iteration because only `check` (called at
        // step boundaries) consulted the clock — the first `charge_*`
        // must fail typed instead.
        let b = Budget::unlimited()
            .with_deadline(Deadline::after(Duration::ZERO))
            .with_max_newton_iterations(1000)
            .with_max_steps(1000);
        std::thread::sleep(Duration::from_millis(1));
        assert_eq!(
            b.charge_newton(1),
            Err(SpiceError::BudgetExceeded {
                resource: BudgetResource::WallClock,
            })
        );
        assert_eq!(
            b.charge_steps(1),
            Err(SpiceError::BudgetExceeded {
                resource: BudgetResource::WallClock,
            })
        );
        // Nothing was counted against the pools by the refused charges.
        assert_eq!(b.newton_iterations_spent(), 0);
        assert_eq!(b.steps_spent(), 0);
        // A cancelled budget refuses charges the same way.
        let token = CancelToken::new();
        let c = Budget::unlimited()
            .with_cancel_token(&token)
            .with_max_steps(10);
        token.cancel();
        assert_eq!(c.charge_steps(1), Err(SpiceError::Cancelled));
    }

    #[test]
    fn expired_deadline_fails_check() {
        let b = Budget::unlimited().with_deadline(Deadline::after(Duration::ZERO));
        std::thread::sleep(Duration::from_millis(1));
        assert_eq!(
            b.check(),
            Err(SpiceError::BudgetExceeded {
                resource: BudgetResource::WallClock,
            })
        );
        let far = Budget::unlimited().with_deadline(Deadline::after(Duration::from_secs(3600)));
        assert!(far.check().is_ok());
        assert!(far.deadline.as_ref().is_some_and(|d| !d.expired()));
        assert!(Deadline::after(Duration::from_secs(3600)).remaining() > Duration::from_secs(3000));
    }
}
