//! Circuit (netlist) construction: nodes and elements.

use crate::{SpiceError, Waveform};
use ferrocim_device::{Fefet, MosfetModel, MosfetParams};
use ferrocim_units::{Ampere, Farad, Ohm, Second, Volt};
use std::collections::HashMap;

/// An FNV-1a accumulator over a canonical byte encoding, used by
/// [`Circuit::content_hash`]. FNV-1a is chosen for the same reason the
/// Monte-Carlo checkpoint checksums use it: the hash must be identical
/// across runs, processes, and releases (no `RandomState`), and the
/// inputs are short enough that cryptographic strength buys nothing.
struct ContentHasher(u64);

impl ContentHasher {
    fn new() -> Self {
        ContentHasher(0xcbf2_9ce4_8422_2325)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn tag(&mut self, t: u8) {
        self.bytes(&[t]);
    }

    fn usize(&mut self, v: usize) {
        self.bytes(&(v as u64).to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        // Bit-pattern hashing: +0.0 and -0.0 hash differently, which is
        // fine — canonical construction code never mixes them for the
        // same physical value.
        self.bytes(&v.to_bits().to_le_bytes());
    }

    fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.bytes(s.as_bytes());
    }

    fn mosfet_params(&mut self, p: &MosfetParams) {
        self.f64(p.width);
        self.f64(p.length);
        self.f64(p.vth0.value());
        self.f64(p.ideality);
        self.f64(p.mobility);
        self.f64(p.cox);
        self.f64(p.lambda);
        self.f64(p.dibl);
        self.f64(p.vth_temp_coeff);
        self.f64(p.mobility_exponent);
        self.f64(p.gate_capacitance);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// A node handle within one [`Circuit`]. Node 0 is always ground.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The ground (reference) node.
    pub const GROUND: NodeId = NodeId(0);

    /// The raw index of this node within its circuit.
    pub fn index(self) -> usize {
        self.0
    }

    /// `true` if this is the ground node.
    pub fn is_ground(self) -> bool {
        self.0 == 0
    }
}

/// An ideal switch's open/close schedule: an initial state plus a sorted
/// list of `(time, closed)` transitions.
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchSchedule {
    initially_closed: bool,
    events: Vec<(Second, bool)>,
}

impl SwitchSchedule {
    /// A switch that stays open forever.
    pub fn open() -> Self {
        SwitchSchedule {
            initially_closed: false,
            events: Vec::new(),
        }
    }

    /// A switch that stays closed forever.
    pub fn closed() -> Self {
        SwitchSchedule {
            initially_closed: true,
            events: Vec::new(),
        }
    }

    /// Adds a transition to the given state at time `t`. Transitions may
    /// be added in any order; they are kept sorted.
    pub fn then_at(mut self, t: Second, closed: bool) -> Self {
        let pos = self
            .events
            .partition_point(|(et, _)| et.value() <= t.value());
        self.events.insert(pos, (t, closed));
        self
    }

    /// The switch state at time `t`.
    pub fn state_at(&self, t: Second) -> bool {
        let mut state = self.initially_closed;
        for &(et, s) in &self.events {
            if et.value() <= t.value() {
                state = s;
            } else {
                break;
            }
        }
        state
    }

    /// The transition times (transient breakpoints).
    pub fn breakpoints(&self) -> Vec<Second> {
        self.events.iter().map(|&(t, _)| t).collect()
    }
}

/// A circuit element. Construct via the associated functions and add to
/// a [`Circuit`] with [`Circuit::add`].
// The FeFET variant carries its Preisach domain ensemble and dwarfs the
// passive variants; netlists are small and built once, so the memory
// trade is irrelevant and boxing would only add indirection on the hot
// assembly path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum Element {
    /// A linear resistor between nodes `a` and `b`.
    Resistor {
        /// Unique element name.
        name: String,
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Resistance (must be positive).
        resistance: Ohm,
    },
    /// A linear capacitor between `a` and `b`. Open in DC analysis.
    Capacitor {
        /// Unique element name.
        name: String,
        /// Positive terminal (initial condition polarity).
        a: NodeId,
        /// Negative terminal.
        b: NodeId,
        /// Capacitance (must be positive).
        capacitance: Farad,
        /// Initial branch voltage `v(a) − v(b)` at the start of a
        /// transient; `None` takes the DC operating point.
        initial: Option<Volt>,
    },
    /// An independent voltage source from `neg` to `pos`.
    VoltageSource {
        /// Unique element name.
        name: String,
        /// Positive terminal.
        pos: NodeId,
        /// Negative terminal.
        neg: NodeId,
        /// The source waveform.
        waveform: Waveform,
    },
    /// An independent DC current source pushing current *into* `pos`
    /// (out of `neg`).
    CurrentSource {
        /// Unique element name.
        name: String,
        /// Terminal into which positive current flows externally.
        pos: NodeId,
        /// Terminal out of which positive current flows externally.
        neg: NodeId,
        /// The source current.
        current: Ampere,
    },
    /// A time-scheduled ideal switch, modelled as `r_on`/`r_off`.
    Switch {
        /// Unique element name.
        name: String,
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Closed-state resistance.
        r_on: Ohm,
        /// Open-state resistance.
        r_off: Ohm,
        /// Open/close schedule.
        schedule: SwitchSchedule,
    },
    /// An n-MOSFET (EKV model). Bulk is tied to source.
    Mosfet {
        /// Unique element name.
        name: String,
        /// Drain terminal.
        drain: NodeId,
        /// Gate terminal (no DC gate current).
        gate: NodeId,
        /// Source terminal.
        source: NodeId,
        /// The device model.
        model: MosfetModel,
        /// Per-instance threshold variation offset.
        vth_offset: Volt,
    },
    /// A FeFET with its stored polarization state.
    Fefet {
        /// Unique element name.
        name: String,
        /// Drain terminal.
        drain: NodeId,
        /// Gate terminal (no DC gate current).
        gate: NodeId,
        /// Source terminal.
        source: NodeId,
        /// The device (owns its polarization state and variation offset).
        device: Fefet,
    },
}

impl Element {
    /// Shorthand constructor for a resistor.
    pub fn resistor(name: impl Into<String>, a: NodeId, b: NodeId, r: Ohm) -> Self {
        Element::Resistor {
            name: name.into(),
            a,
            b,
            resistance: r,
        }
    }

    /// Shorthand constructor for a capacitor with no initial condition.
    pub fn capacitor(name: impl Into<String>, a: NodeId, b: NodeId, c: Farad) -> Self {
        Element::Capacitor {
            name: name.into(),
            a,
            b,
            capacitance: c,
            initial: None,
        }
    }

    /// Shorthand constructor for a DC voltage source.
    pub fn vdc(name: impl Into<String>, pos: NodeId, neg: NodeId, v: Volt) -> Self {
        Element::VoltageSource {
            name: name.into(),
            pos,
            neg,
            waveform: Waveform::dc(v),
        }
    }

    /// Shorthand constructor for a voltage source with a waveform.
    pub fn vsource(name: impl Into<String>, pos: NodeId, neg: NodeId, w: Waveform) -> Self {
        Element::VoltageSource {
            name: name.into(),
            pos,
            neg,
            waveform: w,
        }
    }

    /// Shorthand constructor for a switch with sensible on/off
    /// resistances (1 kΩ / 10 GΩ).
    pub fn switch(name: impl Into<String>, a: NodeId, b: NodeId, schedule: SwitchSchedule) -> Self {
        Element::Switch {
            name: name.into(),
            a,
            b,
            r_on: Ohm(1e3),
            r_off: Ohm(1e10),
            schedule,
        }
    }

    /// Shorthand constructor for an n-MOSFET with zero variation offset.
    pub fn mosfet(
        name: impl Into<String>,
        drain: NodeId,
        gate: NodeId,
        source: NodeId,
        model: MosfetModel,
    ) -> Self {
        Element::Mosfet {
            name: name.into(),
            drain,
            gate,
            source,
            model,
            vth_offset: Volt::ZERO,
        }
    }

    /// Shorthand constructor for a FeFET element.
    pub fn fefet(
        name: impl Into<String>,
        drain: NodeId,
        gate: NodeId,
        source: NodeId,
        device: Fefet,
    ) -> Self {
        Element::Fefet {
            name: name.into(),
            drain,
            gate,
            source,
            device,
        }
    }

    /// The element's unique name.
    pub fn name(&self) -> &str {
        match self {
            Element::Resistor { name, .. }
            | Element::Capacitor { name, .. }
            | Element::VoltageSource { name, .. }
            | Element::CurrentSource { name, .. }
            | Element::Switch { name, .. }
            | Element::Mosfet { name, .. }
            | Element::Fefet { name, .. } => name,
        }
    }

    /// All node ids this element touches.
    pub fn nodes(&self) -> Vec<NodeId> {
        match self {
            Element::Resistor { a, b, .. }
            | Element::Capacitor { a, b, .. }
            | Element::Switch { a, b, .. } => vec![*a, *b],
            Element::VoltageSource { pos, neg, .. } | Element::CurrentSource { pos, neg, .. } => {
                vec![*pos, *neg]
            }
            Element::Mosfet {
                drain,
                gate,
                source,
                ..
            }
            | Element::Fefet {
                drain,
                gate,
                source,
                ..
            } => vec![*drain, *gate, *source],
        }
    }

    fn validate(&self) -> Result<(), SpiceError> {
        let invalid = |name: &str, value: f64, requirement: &'static str| {
            Err(SpiceError::InvalidValue {
                name: name.to_string(),
                value,
                requirement,
            })
        };
        match self {
            Element::Resistor {
                name, resistance, ..
            } => {
                if !(resistance.value().is_finite() && resistance.value() > 0.0) {
                    return invalid(name, resistance.value(), "a positive finite resistance");
                }
            }
            Element::Capacitor {
                name, capacitance, ..
            } => {
                if !(capacitance.value().is_finite() && capacitance.value() > 0.0) {
                    return invalid(name, capacitance.value(), "a positive finite capacitance");
                }
            }
            Element::Switch {
                name, r_on, r_off, ..
            } => {
                if !(r_on.value().is_finite() && r_on.value() > 0.0) {
                    return invalid(name, r_on.value(), "a positive finite on-resistance");
                }
                if !(r_off.value().is_finite() && r_off.value() > 0.0) {
                    return invalid(name, r_off.value(), "a positive finite off-resistance");
                }
            }
            Element::VoltageSource { name, waveform, .. } => {
                waveform.validate(name)?;
            }
            Element::CurrentSource { name, current, .. } => {
                if !current.value().is_finite() {
                    return invalid(name, current.value(), "a finite source current");
                }
            }
            Element::Mosfet {
                name, vth_offset, ..
            } => {
                if !vth_offset.value().is_finite() {
                    return invalid(name, vth_offset.value(), "a finite threshold offset");
                }
            }
            Element::Fefet { .. } => {}
        }
        Ok(())
    }
}

/// A flat netlist: named nodes plus elements.
///
/// # Examples
///
/// ```
/// use ferrocim_spice::{Circuit, Element, NodeId};
/// use ferrocim_units::{Ohm, Volt};
///
/// # fn main() -> Result<(), ferrocim_spice::SpiceError> {
/// let mut ckt = Circuit::new();
/// let vin = ckt.node("in");
/// let out = ckt.node("out");
/// ckt.add(Element::vdc("V1", vin, NodeId::GROUND, Volt(1.0)))?;
/// ckt.add(Element::resistor("R1", vin, out, Ohm(1e3)))?;
/// ckt.add(Element::resistor("R2", out, NodeId::GROUND, Ohm(1e3)))?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Circuit {
    node_names: Vec<String>,
    node_index: HashMap<String, NodeId>,
    elements: Vec<Element>,
    element_index: HashMap<String, usize>,
}

impl Circuit {
    /// Creates an empty circuit containing only the ground node `"0"`.
    pub fn new() -> Self {
        let mut c = Circuit {
            node_names: vec!["0".to_string()],
            node_index: HashMap::new(),
            elements: Vec::new(),
            element_index: HashMap::new(),
        };
        c.node_index.insert("0".to_string(), NodeId::GROUND);
        c
    }

    /// Returns the node with the given name, creating it if necessary.
    pub fn node(&mut self, name: &str) -> NodeId {
        if let Some(&id) = self.node_index.get(name) {
            return id;
        }
        let id = NodeId(self.node_names.len());
        self.node_names.push(name.to_string());
        self.node_index.insert(name.to_string(), id);
        id
    }

    /// Looks up an existing node by name.
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        self.node_index.get(name).copied()
    }

    /// The name of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node id does not belong to this circuit.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.node_names[id.0]
    }

    /// Number of nodes including ground.
    pub fn node_count(&self) -> usize {
        self.node_names.len()
    }

    /// Adds an element after validating its parameters, node references,
    /// and name uniqueness.
    ///
    /// # Errors
    ///
    /// * [`SpiceError::DuplicateElement`] if the name is taken.
    /// * [`SpiceError::UnknownNode`] if a node id is out of range.
    /// * [`SpiceError::InvalidValue`] for non-physical parameters.
    pub fn add(&mut self, element: Element) -> Result<(), SpiceError> {
        element.validate()?;
        if self.element_index.contains_key(element.name()) {
            return Err(SpiceError::DuplicateElement {
                name: element.name().to_string(),
            });
        }
        for node in element.nodes() {
            if node.0 >= self.node_names.len() {
                return Err(SpiceError::UnknownNode {
                    element: element.name().to_string(),
                    node: node.0,
                });
            }
        }
        self.element_index
            .insert(element.name().to_string(), self.elements.len());
        self.elements.push(element);
        Ok(())
    }

    /// The elements in insertion order.
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Looks up an element by name.
    pub fn element(&self, name: &str) -> Option<&Element> {
        self.element_index.get(name).map(|&i| &self.elements[i])
    }

    /// Mutable access to an element by name (e.g. to reprogram a FeFET
    /// or change a waveform between analyses).
    pub fn element_mut(&mut self, name: &str) -> Option<&mut Element> {
        let idx = *self.element_index.get(name)?;
        Some(&mut self.elements[idx])
    }

    /// Mutable access to a FeFET device by element name, for programming
    /// its polarization state between analyses.
    pub fn fefet_mut(&mut self, name: &str) -> Option<&mut Fefet> {
        match self.element_mut(name)? {
            Element::Fefet { device, .. } => Some(device),
            _ => None,
        }
    }

    /// A stable 64-bit content hash of the netlist topology: element
    /// kinds, names, node connectivity, and every reachable scalar
    /// parameter (resistances, capacitances, waveform shapes, switch
    /// schedules, device model parameters, programmed FeFET
    /// polarization, and per-instance threshold offsets).
    ///
    /// Two circuits built the same way hash identically across runs and
    /// processes (FNV-1a over a canonical byte encoding — no
    /// `RandomState`), and any change to a parameter or connection
    /// changes the hash with overwhelming probability. This is the
    /// netlist component of the `ferrocim-surrogate` content-address
    /// key; it deliberately hashes elements in insertion order, because
    /// element order is part of how callers construct a given topology.
    pub fn content_hash(&self) -> u64 {
        let mut h = ContentHasher::new();
        h.usize(self.node_names.len());
        for name in &self.node_names {
            h.str(name);
        }
        h.usize(self.elements.len());
        for e in &self.elements {
            match e {
                Element::Resistor {
                    name,
                    a,
                    b,
                    resistance,
                } => {
                    h.tag(1);
                    h.str(name);
                    h.usize(a.0);
                    h.usize(b.0);
                    h.f64(resistance.value());
                }
                Element::Capacitor {
                    name,
                    a,
                    b,
                    capacitance,
                    initial,
                } => {
                    h.tag(2);
                    h.str(name);
                    h.usize(a.0);
                    h.usize(b.0);
                    h.f64(capacitance.value());
                    match initial {
                        Some(v) => {
                            h.tag(1);
                            h.f64(v.value());
                        }
                        None => h.tag(0),
                    }
                }
                Element::VoltageSource {
                    name,
                    pos,
                    neg,
                    waveform,
                } => {
                    h.tag(3);
                    h.str(name);
                    h.usize(pos.0);
                    h.usize(neg.0);
                    // A waveform is fully characterized by its value at
                    // t = 0, its breakpoints, and its value just after
                    // each breakpoint (every supported waveform is
                    // piecewise-linear between breakpoints).
                    h.f64(waveform.at(Second(0.0)).value());
                    let points = waveform.breakpoints();
                    h.usize(points.len());
                    for t in points {
                        h.f64(t.value());
                        h.f64(waveform.at(t).value());
                        h.f64(waveform.at(Second(t.value() + 1e-15)).value());
                    }
                }
                Element::CurrentSource {
                    name,
                    pos,
                    neg,
                    current,
                } => {
                    h.tag(4);
                    h.str(name);
                    h.usize(pos.0);
                    h.usize(neg.0);
                    h.f64(current.value());
                }
                Element::Switch {
                    name,
                    a,
                    b,
                    r_on,
                    r_off,
                    schedule,
                } => {
                    h.tag(5);
                    h.str(name);
                    h.usize(a.0);
                    h.usize(b.0);
                    h.f64(r_on.value());
                    h.f64(r_off.value());
                    h.tag(u8::from(schedule.initially_closed));
                    h.usize(schedule.events.len());
                    for &(t, closed) in &schedule.events {
                        h.f64(t.value());
                        h.tag(u8::from(closed));
                    }
                }
                Element::Mosfet {
                    name,
                    drain,
                    gate,
                    source,
                    model,
                    vth_offset,
                } => {
                    h.tag(6);
                    h.str(name);
                    h.usize(drain.0);
                    h.usize(gate.0);
                    h.usize(source.0);
                    h.mosfet_params(model.params());
                    h.f64(vth_offset.value());
                }
                Element::Fefet {
                    name,
                    drain,
                    gate,
                    source,
                    device,
                } => {
                    h.tag(7);
                    h.str(name);
                    h.usize(drain.0);
                    h.usize(gate.0);
                    h.usize(source.0);
                    let p = device.params();
                    h.mosfet_params(&p.channel);
                    h.f64(p.low_vt.value());
                    h.f64(p.high_vt.value());
                    h.f64(p.low_vt_temp_coeff);
                    h.f64(p.high_vt_temp_coeff);
                    h.usize(p.preisach.domains);
                    h.f64(p.preisach.coercive.value());
                    h.f64(p.preisach.sigma.value());
                    h.f64(p.preisach.attempt_time.value());
                    h.f64(p.preisach.activation.value());
                    h.f64(p.preisach.erase_slowdown);
                    // The programmed state and variation offset are part
                    // of the content: a reprogrammed cell is a
                    // different operating point.
                    h.f64(device.polarization());
                    h.f64(device.vth_offset().value());
                }
            }
        }
        h.finish()
    }

    /// All transient breakpoints contributed by waveforms and switch
    /// schedules.
    pub fn breakpoints(&self) -> Vec<Second> {
        let mut points: Vec<Second> = Vec::new();
        for e in &self.elements {
            match e {
                Element::VoltageSource { waveform, .. } => points.extend(waveform.breakpoints()),
                Element::Switch { schedule, .. } => points.extend(schedule.breakpoints()),
                _ => {}
            }
        }
        points.sort_by(|a, b| a.value().total_cmp(&b.value()));
        points.dedup_by(|a, b| (a.value() - b.value()).abs() < 1e-18);
        points
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nodes_are_interned_by_name() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let a2 = c.node("a");
        let b = c.node("b");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(c.node_count(), 3); // ground + a + b
        assert_eq!(c.node_name(a), "a");
        assert_eq!(c.find_node("b"), Some(b));
        assert_eq!(c.find_node("missing"), None);
    }

    #[test]
    fn duplicate_element_names_rejected() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add(Element::resistor("R1", a, NodeId::GROUND, Ohm(1.0)))
            .unwrap();
        let err = c
            .add(Element::resistor("R1", a, NodeId::GROUND, Ohm(2.0)))
            .unwrap_err();
        assert!(matches!(err, SpiceError::DuplicateElement { .. }));
    }

    #[test]
    fn invalid_resistance_rejected() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let err = c
            .add(Element::resistor("R1", a, NodeId::GROUND, Ohm(0.0)))
            .unwrap_err();
        assert!(matches!(err, SpiceError::InvalidValue { .. }));
        let err = c
            .add(Element::resistor("R2", a, NodeId::GROUND, Ohm(f64::NAN)))
            .unwrap_err();
        assert!(matches!(err, SpiceError::InvalidValue { .. }));
    }

    #[test]
    fn foreign_node_rejected() {
        let mut c = Circuit::new();
        let err = c
            .add(Element::resistor(
                "R1",
                NodeId(57),
                NodeId::GROUND,
                Ohm(1.0),
            ))
            .unwrap_err();
        assert!(matches!(err, SpiceError::UnknownNode { .. }));
    }

    #[test]
    fn switch_schedule_ordering() {
        let s = SwitchSchedule::open()
            .then_at(Second(3e-9), false)
            .then_at(Second(1e-9), true);
        assert!(!s.state_at(Second(0.5e-9)));
        assert!(s.state_at(Second(2e-9)));
        assert!(!s.state_at(Second(4e-9)));
        assert_eq!(s.breakpoints().len(), 2);
        assert!(s.breakpoints()[0] < s.breakpoints()[1]);
    }

    #[test]
    fn fefet_lookup_and_mutation() {
        use ferrocim_device::{Fefet, FefetParams, PolarizationState};
        let mut c = Circuit::new();
        let d = c.node("d");
        let g = c.node("g");
        c.add(Element::fefet(
            "F1",
            d,
            g,
            NodeId::GROUND,
            Fefet::new(FefetParams::paper_default()),
        ))
        .unwrap();
        assert!(c.fefet_mut("missing").is_none());
        let f = c.fefet_mut("F1").unwrap();
        f.force_state(PolarizationState::LowVt);
        assert_eq!(
            c.fefet_mut("F1").unwrap().stored_state(),
            Some(PolarizationState::LowVt)
        );
    }

    fn divider(r2: Ohm) -> Circuit {
        let mut c = Circuit::new();
        let vin = c.node("in");
        let out = c.node("out");
        c.add(Element::vdc("V1", vin, NodeId::GROUND, Volt(1.0)))
            .unwrap();
        c.add(Element::resistor("R1", vin, out, Ohm(1e3))).unwrap();
        c.add(Element::resistor("R2", out, NodeId::GROUND, r2))
            .unwrap();
        c
    }

    #[test]
    fn content_hash_is_stable_and_parameter_sensitive() {
        // Identical construction → identical hash (and rebuilding from
        // scratch, not cloning, so interning order is exercised too).
        assert_eq!(
            divider(Ohm(1e3)).content_hash(),
            divider(Ohm(1e3)).content_hash()
        );
        // A parameter change far below any display precision changes it.
        assert_ne!(
            divider(Ohm(1e3)).content_hash(),
            divider(Ohm(1e3 + 1e-9)).content_hash()
        );
        // So does renaming an element or rewiring a node.
        let mut renamed = Circuit::new();
        let vin = renamed.node("in");
        let out = renamed.node("out");
        renamed
            .add(Element::vdc("V1", vin, NodeId::GROUND, Volt(1.0)))
            .unwrap();
        renamed
            .add(Element::resistor("Rx", vin, out, Ohm(1e3)))
            .unwrap();
        renamed
            .add(Element::resistor("R2", out, NodeId::GROUND, Ohm(1e3)))
            .unwrap();
        assert_ne!(divider(Ohm(1e3)).content_hash(), renamed.content_hash());
    }

    #[test]
    fn content_hash_sees_waveforms_devices_and_programmed_state() {
        use ferrocim_device::{Fefet, FefetParams, PolarizationState};
        let build = |state: PolarizationState, t_step: Second| {
            let mut c = Circuit::new();
            let d = c.node("d");
            let g = c.node("g");
            c.add(Element::vsource(
                "VG",
                g,
                NodeId::GROUND,
                Waveform::step(Volt(0.0), Volt(0.8), t_step),
            ))
            .unwrap();
            let mut dev = Fefet::new(FefetParams::paper_default());
            dev.force_state(state);
            c.add(Element::fefet("F1", d, g, NodeId::GROUND, dev))
                .unwrap();
            c
        };
        let a = build(PolarizationState::LowVt, Second(1e-9));
        assert_eq!(
            a.content_hash(),
            build(PolarizationState::LowVt, Second(1e-9)).content_hash()
        );
        // Reprogramming the FeFET is a different operating point.
        assert_ne!(
            a.content_hash(),
            build(PolarizationState::HighVt, Second(1e-9)).content_hash()
        );
        // Moving a waveform breakpoint changes the drive.
        assert_ne!(
            a.content_hash(),
            build(PolarizationState::LowVt, Second(2e-9)).content_hash()
        );
    }

    #[test]
    fn breakpoints_are_sorted_and_deduped() {
        use crate::Waveform;
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add(Element::vsource(
            "V1",
            a,
            NodeId::GROUND,
            Waveform::step(Volt(0.0), Volt(1.0), Second(2e-9)),
        ))
        .unwrap();
        c.add(Element::switch(
            "S1",
            a,
            NodeId::GROUND,
            SwitchSchedule::open().then_at(Second(1e-9), true),
        ))
        .unwrap();
        let bp = c.breakpoints();
        assert!(!bp.is_empty());
        assert!(bp.windows(2).all(|w| w[0].value() <= w[1].value()));
    }
}
