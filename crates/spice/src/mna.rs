//! Modified nodal analysis: system layout, stamping, and the shared
//! Newton–Raphson solve used by both DC and transient analyses.

use crate::health::{certify, HealthPolicy};
use crate::netlist::{Circuit, Element, NodeId};
use crate::solver::LinearSystem;
use crate::SpiceError;
use ferrocim_telemetry::{Event, Telemetry};
use ferrocim_units::{Celsius, Second};
use std::collections::HashMap;

/// Tiny conductance from every node to ground, preventing singular
/// systems from floating nodes (e.g. capacitor-only nodes in DC).
pub(crate) const GMIN: f64 = 1e-12;

/// Continuation knobs threaded through [`assemble`] by the rescue
/// ladder. The nominal settings reproduce the plain solve exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct SolveSettings {
    /// Node-to-ground leak conductance, siemens. Gmin stepping starts
    /// this far above [`GMIN`] and relaxes it back to nominal.
    pub gmin: f64,
    /// Scale factor on every independent source value in `[0, 1]`.
    /// Source stepping ramps this from 0 to 1.
    pub source_scale: f64,
}

impl SolveSettings {
    /// Nominal settings: built-in GMIN, full-strength sources.
    pub const NOMINAL: SolveSettings = SolveSettings {
        gmin: GMIN,
        source_scale: 1.0,
    };
}

/// Knobs for the Newton iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NewtonOptions {
    /// Maximum iterations before giving up.
    pub max_iterations: usize,
    /// Absolute node-voltage convergence tolerance, volts.
    pub vtol: f64,
    /// Relative convergence tolerance on all unknowns.
    pub reltol: f64,
    /// Per-iteration clamp on node-voltage updates, volts. Limiting the
    /// step keeps the exponential subthreshold models inside the range
    /// where their linearization is meaningful.
    pub max_step: f64,
}

impl Default for NewtonOptions {
    fn default() -> Self {
        NewtonOptions {
            max_iterations: 500,
            vtol: 1e-9,
            reltol: 1e-9,
            max_step: 0.2,
        }
    }
}

/// Index layout of the MNA unknown vector: node voltages (ground
/// excluded) followed by voltage-source branch currents.
#[derive(Debug, Clone)]
pub(crate) struct Layout {
    /// Number of non-ground nodes.
    pub n_nodes: usize,
    /// Element-vector index → branch-current row for voltage sources.
    pub branch_of_element: HashMap<usize, usize>,
    /// Total unknown count.
    pub size: usize,
}

impl Layout {
    pub fn of(circuit: &Circuit) -> Layout {
        let n_nodes = circuit.node_count() - 1;
        let mut branch_of_element = HashMap::new();
        let mut next = n_nodes;
        for (idx, e) in circuit.elements().iter().enumerate() {
            if matches!(e, Element::VoltageSource { .. }) {
                branch_of_element.insert(idx, next);
                next += 1;
            }
        }
        Layout {
            n_nodes,
            branch_of_element,
            size: next,
        }
    }

    /// The unknown-vector row of a node, or `None` for ground.
    #[inline]
    pub fn row_of(&self, node: NodeId) -> Option<usize> {
        if node.is_ground() {
            None
        } else {
            Some(node.index() - 1)
        }
    }

    /// Node voltage from the unknown vector (0 for ground).
    #[inline]
    pub fn voltage(&self, x: &[f64], node: NodeId) -> f64 {
        match self.row_of(node) {
            Some(r) => x[r],
            None => 0.0,
        }
    }
}

/// Per-capacitor companion state carried across transient steps.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CapState {
    /// Branch voltage `v(a) − v(b)` at the previous accepted step.
    pub v_prev: f64,
    /// Branch current at the previous accepted step (trapezoidal only).
    pub i_prev: f64,
}

/// What the stamper should do with capacitors.
#[derive(Debug, Clone, Copy)]
pub(crate) enum CapMode<'a> {
    /// DC: capacitors are open circuits.
    Open,
    /// Transient step of size `dt` with previous-step states, using the
    /// given integration method.
    Companion {
        dt: f64,
        states: &'a HashMap<usize, CapState>,
        trapezoidal: bool,
    },
}

/// Assembles the linearized MNA system `A·x = z` around the candidate
/// solution `x0` at time `t`. Stamping goes through the
/// [`LinearSystem`] trait, so the same code fills the dense matrix and
/// the sparse slot table.
#[allow(clippy::too_many_arguments)]
pub(crate) fn assemble(
    circuit: &Circuit,
    layout: &Layout,
    x0: &[f64],
    t: Second,
    temp: Celsius,
    caps: CapMode<'_>,
    settings: &SolveSettings,
    a: &mut dyn LinearSystem,
    z: &mut [f64],
) {
    a.clear();
    z.fill(0.0);

    let stamp_conductance = |a: &mut dyn LinearSystem, na: NodeId, nb: NodeId, g: f64| {
        if let Some(ra) = layout.row_of(na) {
            a.add(ra, ra, g);
            if let Some(rb) = layout.row_of(nb) {
                a.add(ra, rb, -g);
            }
        }
        if let Some(rb) = layout.row_of(nb) {
            a.add(rb, rb, g);
            if let Some(ra) = layout.row_of(na) {
                a.add(rb, ra, -g);
            }
        }
    };

    for (idx, e) in circuit.elements().iter().enumerate() {
        match e {
            Element::Resistor {
                a: na,
                b: nb,
                resistance,
                ..
            } => {
                stamp_conductance(a, *na, *nb, 1.0 / resistance.value());
            }
            Element::Switch {
                a: na,
                b: nb,
                r_on,
                r_off,
                schedule,
                ..
            } => {
                let r = if schedule.state_at(t) { r_on } else { r_off };
                stamp_conductance(a, *na, *nb, 1.0 / r.value());
            }
            Element::Capacitor {
                a: na,
                b: nb,
                capacitance,
                ..
            } => match caps {
                CapMode::Open => {}
                CapMode::Companion {
                    dt,
                    states,
                    trapezoidal,
                } => {
                    let state = states.get(&idx).copied().unwrap_or(CapState {
                        v_prev: 0.0,
                        i_prev: 0.0,
                    });
                    let c = capacitance.value();
                    // Companion: i = g·v − i_eq, with
                    //   BE:   g = C/dt,   i_eq = g·v_prev
                    //   trap: g = 2C/dt,  i_eq = g·v_prev + i_prev
                    let (g, i_eq) = if trapezoidal {
                        let g = 2.0 * c / dt;
                        (g, g * state.v_prev + state.i_prev)
                    } else {
                        let g = c / dt;
                        (g, g * state.v_prev)
                    };
                    stamp_conductance(a, *na, *nb, g);
                    if let Some(ra) = layout.row_of(*na) {
                        z[ra] += i_eq;
                    }
                    if let Some(rb) = layout.row_of(*nb) {
                        z[rb] -= i_eq;
                    }
                }
            },
            Element::VoltageSource {
                pos, neg, waveform, ..
            } => {
                let row = layout.branch_of_element[&idx];
                if let Some(rp) = layout.row_of(*pos) {
                    a.add(rp, row, 1.0);
                    a.add(row, rp, 1.0);
                }
                if let Some(rn) = layout.row_of(*neg) {
                    a.add(rn, row, -1.0);
                    a.add(row, rn, -1.0);
                }
                z[row] = waveform.at(t).value() * settings.source_scale;
            }
            Element::CurrentSource {
                pos, neg, current, ..
            } => {
                if let Some(rp) = layout.row_of(*pos) {
                    z[rp] += current.value() * settings.source_scale;
                }
                if let Some(rn) = layout.row_of(*neg) {
                    z[rn] -= current.value() * settings.source_scale;
                }
            }
            Element::Mosfet {
                drain,
                gate,
                source,
                model,
                vth_offset,
                ..
            } => {
                let vg = layout.voltage(x0, *gate);
                let vd = layout.voltage(x0, *drain);
                let vs = layout.voltage(x0, *source);
                let ss = model.evaluate_shifted(
                    ferrocim_units::Volt(vg - vs),
                    ferrocim_units::Volt(vd - vs),
                    temp,
                    *vth_offset,
                );
                stamp_transistor(a, z, layout, *drain, *gate, *source, vg, vd, vs, ss);
            }
            Element::Fefet {
                drain,
                gate,
                source,
                device,
                ..
            } => {
                let vg = layout.voltage(x0, *gate);
                let vd = layout.voltage(x0, *drain);
                let vs = layout.voltage(x0, *source);
                let ss = device.evaluate(
                    ferrocim_units::Volt(vg - vs),
                    ferrocim_units::Volt(vd - vs),
                    temp,
                );
                stamp_transistor(a, z, layout, *drain, *gate, *source, vg, vd, vs, ss);
            }
        }
    }

    // GMIN from every node to ground keeps the system non-singular.
    for r in 0..layout.n_nodes {
        a.add(r, r, settings.gmin);
    }
}

/// Stamps the linearized transistor companion model:
/// `I_ds ≈ I₀ + gm·Δv_gs + gds·Δv_ds`, as a VCCS pair plus an
/// equivalent current source.
#[allow(clippy::too_many_arguments)]
fn stamp_transistor(
    a: &mut dyn LinearSystem,
    z: &mut [f64],
    layout: &Layout,
    drain: NodeId,
    gate: NodeId,
    source: NodeId,
    vg: f64,
    vd: f64,
    vs: f64,
    ss: ferrocim_device::SmallSignal,
) {
    let gm = ss.gm.value();
    let gds = ss.gds.value();
    let i_eq = ss.ids.value() - gm * (vg - vs) - gds * (vd - vs);
    // Current I leaves `drain` and enters `source`:
    //   row(drain):  +gm·(vg−vs) + gds·(vd−vs) stamped on the LHS,
    //                −i_eq on the RHS,
    //   row(source): the negation.
    let rd = layout.row_of(drain);
    let rg = layout.row_of(gate);
    let rs = layout.row_of(source);
    if let Some(rd) = rd {
        if let Some(rg) = rg {
            a.add(rd, rg, gm);
        }
        if let Some(rdd) = layout.row_of(drain) {
            a.add(rd, rdd, gds);
        }
        if let Some(rs) = rs {
            a.add(rd, rs, -(gm + gds));
        }
        z[rd] -= i_eq;
    }
    if let Some(rs_row) = rs {
        if let Some(rg) = rg {
            a.add(rs_row, rg, -gm);
        }
        if let Some(rd_col) = layout.row_of(drain) {
            a.add(rs_row, rd_col, -gds);
        }
        a.add(rs_row, rs_row, gm + gds);
        z[rs_row] += i_eq;
    }
}

/// Runs the damped Newton iteration through a caller-owned
/// [`crate::Workspace`]: repeatedly assembles the linearized system
/// around the current candidate and solves, until the unknown vector
/// stops moving. `x` holds the initial guess on entry and the solution
/// on success, and all matrix/vector buffers come from `ws`, so a
/// converged solve performs no heap allocation after the workspace is
/// warm.
///
/// The iteration sequence is identical to a fresh-buffer solve; results
/// are bitwise equal regardless of what the workspace previously held.
///
/// Returns the number of iterations used (including the converging one).
/// A non-finite entry in the linear-solve result aborts with
/// [`SpiceError::NumericalBlowup`] rather than iterating on garbage.
///
/// Each iteration is charged against `budget` and the budget's
/// cancel/deadline state is polled, so even a single pathological solve
/// honours [`SpiceError::BudgetExceeded`] / [`SpiceError::Cancelled`].
///
/// Each iteration also emits [`Event::NewtonIter`] (and a converging
/// solve [`Event::NewtonConverged`]) through `tele`; like the budget
/// check, the off state is hoisted to one boolean test per iteration.
/// At `DetailLevel::Iterations` every iteration additionally emits
/// [`Event::NewtonResidual`] with the damped residual norm and the
/// damping factor, so a stalled solve is diagnosable from the trace.
///
/// When `health` is enabled every linear solve is *certified*: the
/// backward error of the solution is measured against the assembled
/// system, iterative refinement runs when it misses tolerance
/// ([`Event::SolveRefined`]), and a still-unacceptable solve escalates
/// down the workspace's degradation ladder — fresh symbolic analysis,
/// alternate fill ordering, dense fallback ([`Event::SolveDegraded`],
/// one Newton-budget charge per rung) — before the iteration refuses
/// with [`SpiceError::UncertifiedSolve`] rather than continuing on an
/// unverified solution. An acceptable solve is returned untouched, so a
/// healthy iteration is bitwise identical to `HealthPolicy::off()`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn newton_solve_in(
    circuit: &Circuit,
    layout: &Layout,
    t: Second,
    temp: Celsius,
    caps: CapMode<'_>,
    settings: &SolveSettings,
    x: &mut [f64],
    options: &NewtonOptions,
    budget: &crate::Budget,
    tele: &Telemetry,
    health: &HealthPolicy,
    ws: &mut crate::Workspace,
) -> Result<usize, SpiceError> {
    debug_assert_eq!(x.len(), layout.size);
    ws.ensure_size(layout.size);
    let limited = budget.is_limited();
    let observed = tele.is_on();
    let diagnosed = tele.wants_iterations();
    let mut last_delta = f64::INFINITY;
    for iter in 0..options.max_iterations {
        if limited {
            budget.check()?;
            budget.charge_newton(1)?;
        }
        if observed {
            tele.emit(|| Event::NewtonIter {
                iteration: iter as u64 + 1,
            });
        }
        // Assemble-solve-certify, escalating the workspace down its
        // degradation ladder until the solve certifies, the ladder is
        // exhausted, or certification is off. Escalated rungs rebuild
        // the backend, so assembly re-runs inside the loop.
        loop {
            let outcome = {
                let crate::Workspace {
                    system,
                    z,
                    x_new,
                    resid,
                    corr,
                    ..
                } = &mut *ws;
                assemble(circuit, layout, x, t, temp, caps, settings, system, z);
                let info = system.solve_into(z, x_new, tele)?;
                if observed {
                    tele.emit(|| Event::SolverSolved {
                        backend: info.backend,
                        symbolic: info.symbolic,
                    });
                }
                if !health.enabled {
                    None
                } else {
                    Some(certify(system, z, x_new, health, resid, corr))
                }
            };
            let Some(outcome) = outcome else {
                break;
            };
            if observed && outcome.quality.refinement_passes > 0 {
                tele.emit(|| Event::SolveRefined {
                    passes: outcome.quality.refinement_passes as u64,
                    residual: outcome.quality.residual,
                });
            }
            if outcome.acceptable {
                ws.last_quality = Some(outcome.quality);
                break;
            }
            match ws.escalate_degrade() {
                Some(stage) => {
                    if observed {
                        tele.emit(|| Event::SolveDegraded {
                            stage,
                            residual: outcome.quality.residual,
                        });
                    }
                    // Escalation repeats the factor-and-solve: charge it
                    // like the extra Newton-iteration work it is.
                    if limited {
                        budget.charge_newton(1)?;
                    }
                }
                None => {
                    ws.last_quality = Some(outcome.quality);
                    if ws.x_new[..layout.size].iter().all(|v| v.is_finite()) {
                        return Err(SpiceError::UncertifiedSolve {
                            residual: outcome.quality.residual,
                            cond_estimate: outcome.quality.cond_estimate,
                        });
                    }
                    // Non-finite solutions fall through to the blowup
                    // check below, preserving the historical error (and
                    // the warm-start fallbacks keyed on it).
                    break;
                }
            }
        }
        let crate::Workspace { x_new, .. } = &mut *ws;
        if let Some(unknown) = x_new[..layout.size].iter().position(|v| !v.is_finite()) {
            return Err(SpiceError::NumericalBlowup {
                iteration: iter + 1,
                unknown,
            });
        }
        let mut converged = true;
        let mut max_delta = 0.0f64;
        let mut raw_max_delta = 0.0f64;
        for i in 0..layout.size {
            let mut delta = x_new[i] - x[i];
            if i < layout.n_nodes {
                // Damp node-voltage updates only; branch currents are
                // linear consequences and may jump freely.
                raw_max_delta = raw_max_delta.max(delta.abs());
                delta = delta.clamp(-options.max_step, options.max_step);
                max_delta = max_delta.max(delta.abs());
                if delta.abs() > options.vtol + options.reltol * x[i].abs() {
                    converged = false;
                }
            }
            x[i] += delta;
        }
        if diagnosed {
            tele.emit(|| Event::NewtonResidual {
                iteration: iter as u64 + 1,
                residual: max_delta,
                damping: if raw_max_delta > options.max_step {
                    options.max_step / raw_max_delta
                } else {
                    1.0
                },
            });
        }
        if converged {
            if observed {
                tele.emit(|| Event::NewtonConverged {
                    iterations: iter as u64 + 1,
                });
            }
            return Ok(iter + 1);
        }
        last_delta = max_delta;
    }
    Err(SpiceError::NoConvergence {
        iterations: options.max_iterations,
        residual: last_delta,
    })
}
