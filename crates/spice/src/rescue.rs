//! Convergence rescue: an escalation ladder for Newton solves that
//! fail under nominal conditions.
//!
//! Production SPICE engines (Spectre, ngspice) survive stiff operating
//! points by escalating through a sequence of continuation strategies
//! when plain Newton stalls. This module implements the same ladder:
//!
//! 1. **Plain Newton** — the nominal damped solve.
//! 2. **Stronger damping** — retry with a tighter per-iteration voltage
//!    clamp; fixes oscillating iterations around exponential devices.
//! 3. **Gmin stepping** — solve with a large node-to-ground leak
//!    (everything near a resistive divider, trivially convergent), then
//!    relax the leak decade by decade down to the built-in `GMIN`,
//!    warm-starting each level from the previous solution.
//! 4. **Source stepping** — homotopy on the sources: ramp every
//!    independent source from 0 (trivial all-zero solution) to full
//!    value in small increments, warm-starting each step.
//!
//! The ladder only activates after the plain solve fails, so rescued
//! and non-rescued circuits see bit-identical nominal iteration
//! sequences.

use crate::health::HealthPolicy;
use crate::mna::{CapMode, Layout, NewtonOptions, SolveSettings, GMIN};
use crate::netlist::Circuit;
use crate::{SpiceError, Workspace};
use ferrocim_telemetry::{Event, RungKind, Telemetry};
use ferrocim_units::{Celsius, Second};

/// One rung of the rescue ladder.
#[derive(Debug, Clone, PartialEq)]
pub enum RescueRung {
    /// The nominal damped Newton solve.
    PlainNewton,
    /// Retry with a tighter per-iteration voltage clamp.
    Damping {
        /// The `max_step` override used for this attempt, volts.
        max_step: f64,
    },
    /// Gmin continuation from a large leak down to nominal `GMIN`.
    GminStepping,
    /// Source continuation ramping all sources from 0 to full value.
    SourceStepping,
}

impl std::fmt::Display for RescueRung {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RescueRung::PlainNewton => write!(f, "plain newton"),
            RescueRung::Damping { max_step } => write!(f, "damping (max_step {max_step} V)"),
            RescueRung::GminStepping => write!(f, "gmin stepping"),
            RescueRung::SourceStepping => write!(f, "source stepping"),
        }
    }
}

/// The outcome of one rung attempt.
#[derive(Debug, Clone, PartialEq)]
pub struct RungAttempt {
    /// Which rung was tried.
    pub rung: RescueRung,
    /// Total Newton iterations spent on this rung (summed over all
    /// continuation sub-solves for the stepping rungs).
    pub iterations: usize,
    /// Whether the rung produced a converged nominal solution.
    pub converged: bool,
}

/// How a solve converged: which rungs were attempted and which one, if
/// any, succeeded. Attached to every [`crate::OperatingPoint`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RescueReport {
    /// Rung attempts in escalation order. The last entry is the
    /// successful one when the solve converged.
    pub attempts: Vec<RungAttempt>,
}

impl RescueReport {
    /// A report for a solve that converged on the first, plain attempt.
    pub(crate) fn plain(iterations: usize) -> RescueReport {
        RescueReport {
            attempts: vec![RungAttempt {
                rung: RescueRung::PlainNewton,
                iterations,
                converged: true,
            }],
        }
    }

    /// The rung that produced the solution, if the solve converged.
    pub fn succeeded_by(&self) -> Option<&RescueRung> {
        self.attempts
            .last()
            .filter(|a| a.converged)
            .map(|a| &a.rung)
    }

    /// True if the solution required escalating beyond plain Newton.
    pub fn was_rescued(&self) -> bool {
        matches!(self.succeeded_by(), Some(r) if *r != RescueRung::PlainNewton)
    }

    /// Total Newton iterations across all attempts.
    pub fn total_iterations(&self) -> usize {
        self.attempts.iter().map(|a| a.iterations).sum()
    }
}

/// Configuration of the rescue ladder. The default policy enables every
/// rung; [`RescuePolicy::none`] reproduces the pre-rescue behaviour of
/// failing immediately with the plain-Newton error.
#[derive(Debug, Clone, PartialEq)]
pub struct RescuePolicy {
    /// `max_step` overrides to retry with, in order. Empty disables the
    /// damping rung.
    pub damping_steps: Vec<f64>,
    /// Gmin ladder in siemens, from large to small; the built-in
    /// nominal `GMIN` is always appended as the final level. Empty
    /// disables the gmin rung.
    pub gmin_ladder: Vec<f64>,
    /// Number of source-ramp increments from 0 to full value. 0
    /// disables the source-stepping rung.
    pub source_steps: usize,
}

impl Default for RescuePolicy {
    fn default() -> Self {
        RescuePolicy {
            damping_steps: vec![0.05],
            gmin_ladder: vec![1e-3, 1e-4, 1e-5, 1e-6, 1e-7, 1e-8, 1e-9, 1e-10, 1e-11],
            source_steps: 16,
        }
    }
}

impl RescuePolicy {
    /// Disables every rung: a failed plain Newton solve returns its
    /// error immediately.
    pub fn none() -> RescuePolicy {
        RescuePolicy {
            damping_steps: Vec::new(),
            gmin_ladder: Vec::new(),
            source_steps: 0,
        }
    }

    /// True if at least one rescue rung is enabled.
    pub fn is_enabled(&self) -> bool {
        !self.damping_steps.is_empty() || !self.gmin_ladder.is_empty() || self.source_steps > 0
    }
}

/// The telemetry-event mirror of a rung (parameter-free, `Copy`).
fn rung_kind(rung: &RescueRung) -> RungKind {
    match rung {
        RescueRung::PlainNewton => RungKind::PlainNewton,
        RescueRung::Damping { .. } => RungKind::Damping,
        RescueRung::GminStepping => RungKind::GminStepping,
        RescueRung::SourceStepping => RungKind::SourceStepping,
    }
}

/// True for errors the ladder can plausibly fix by continuation.
/// An uncertified solve qualifies: continuation moves the iteration to
/// better-conditioned operating points where certification can succeed.
pub(crate) fn is_rescuable(err: &SpiceError) -> bool {
    matches!(
        err,
        SpiceError::NoConvergence { .. }
            | SpiceError::NumericalBlowup { .. }
            | SpiceError::SingularMatrix { .. }
            | SpiceError::UncertifiedSolve { .. }
    )
}

/// Runs the rescue ladder after a failed plain solve. `x` is scratch
/// space (clobbered; holds the solution on success), `initial_guess` is
/// the guess the plain solve started from, and `plain_error` is what it
/// failed with — returned unchanged if every rung also fails.
///
/// On success the report's last attempt names the winning rung and the
/// preceding entries record the failed ones (including the plain solve).
///
/// Rescue retries are charged against `budget` like any other Newton
/// work; a budget/cancellation failure aborts the ladder immediately
/// rather than being mistaken for a failed rung.
///
/// Every rung attempt recorded in the report is mirrored as an
/// [`Event::RescueAttempt`] through `tele` (including the failed plain
/// solve that started the ladder), so an aggregator's attempt counts
/// match the report's `attempts` exactly.
#[allow(clippy::too_many_arguments)]
pub(crate) fn rescue_solve(
    circuit: &Circuit,
    layout: &Layout,
    t: Second,
    temp: Celsius,
    caps: CapMode<'_>,
    x: &mut [f64],
    initial_guess: &[f64],
    options: &NewtonOptions,
    policy: &RescuePolicy,
    budget: &crate::Budget,
    tele: &Telemetry,
    health: &HealthPolicy,
    ws: &mut Workspace,
    plain_error: SpiceError,
) -> Result<RescueReport, SpiceError> {
    let attempt = |a: &RungAttempt| {
        let kind = rung_kind(&a.rung);
        let iterations = a.iterations as u64;
        let converged = a.converged;
        tele.emit(|| Event::RescueAttempt {
            rung: kind,
            iterations,
            converged,
        });
    };
    let mut report = RescueReport {
        attempts: vec![RungAttempt {
            rung: RescueRung::PlainNewton,
            iterations: options.max_iterations,
            converged: false,
        }],
    };
    attempt(&report.attempts[0]);

    // Rung 2: stronger damping at nominal settings.
    for &max_step in &policy.damping_steps {
        x.copy_from_slice(initial_guess);
        let damped = NewtonOptions {
            max_step,
            ..*options
        };
        let rung = RescueRung::Damping { max_step };
        match crate::mna::newton_solve_in(
            circuit,
            layout,
            t,
            temp,
            caps,
            &SolveSettings::NOMINAL,
            x,
            &damped,
            budget,
            tele,
            health,
            ws,
        ) {
            Ok(iters) => {
                let won = RungAttempt {
                    rung,
                    iterations: iters,
                    converged: true,
                };
                attempt(&won);
                report.attempts.push(won);
                return Ok(report);
            }
            Err(e) if !is_rescuable(&e) => return Err(e),
            Err(_) => {
                let failed = RungAttempt {
                    rung,
                    iterations: damped.max_iterations,
                    converged: false,
                };
                attempt(&failed);
                report.attempts.push(failed);
            }
        }
    }

    // Rung 3: gmin stepping, relaxing the leak down to nominal.
    if !policy.gmin_ladder.is_empty() {
        x.copy_from_slice(initial_guess);
        let mut iterations = 0;
        let mut converged = true;
        for &gmin in policy.gmin_ladder.iter().chain(std::iter::once(&GMIN)) {
            let settings = SolveSettings {
                gmin,
                source_scale: 1.0,
            };
            match crate::mna::newton_solve_in(
                circuit, layout, t, temp, caps, &settings, x, options, budget, tele, health, ws,
            ) {
                Ok(iters) => iterations += iters,
                Err(e) if !is_rescuable(&e) => return Err(e),
                Err(_) => {
                    iterations += options.max_iterations;
                    converged = false;
                    break;
                }
            }
        }
        let tried = RungAttempt {
            rung: RescueRung::GminStepping,
            iterations,
            converged,
        };
        attempt(&tried);
        report.attempts.push(tried);
        if converged {
            return Ok(report);
        }
    }

    // Rung 4: source stepping — homotopy from the all-zero solution.
    if policy.source_steps > 0 {
        x.fill(0.0);
        let mut iterations = 0;
        let mut converged = true;
        for k in 1..=policy.source_steps {
            let settings = SolveSettings {
                gmin: GMIN,
                source_scale: k as f64 / policy.source_steps as f64,
            };
            match crate::mna::newton_solve_in(
                circuit, layout, t, temp, caps, &settings, x, options, budget, tele, health, ws,
            ) {
                Ok(iters) => iterations += iters,
                Err(e) if !is_rescuable(&e) => return Err(e),
                Err(_) => {
                    iterations += options.max_iterations;
                    converged = false;
                    break;
                }
            }
        }
        let tried = RungAttempt {
            rung: RescueRung::SourceStepping,
            iterations,
            converged,
        };
        attempt(&tried);
        report.attempts.push(tried);
        if converged {
            return Ok(report);
        }
    }

    Err(plain_error)
}
