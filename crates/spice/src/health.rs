//! Numerical-health certification for linear solves.
//!
//! PR 6's sparse backend reuses a frozen pivot sequence across numeric
//! refactorizations, which is fast but can silently lose precision on
//! the ill-conditioned operating points subthreshold FeFET rows produce
//! (nano-siemens cell conductances against the bitline hub). This
//! module closes the loop: after every factor-and-solve the residual is
//! measured against the *stamped* matrix, the solution is iteratively
//! refined when it misses tolerance, and the final verdict ships as a
//! typed [`SolveQuality`] — so a caller either gets a certified answer
//! or a typed [`crate::SpiceError::UncertifiedSolve`], never a quietly
//! wrong number.
//!
//! The certification quantity is the componentwise-relative **backward
//! error** `max|b − A·x| / (‖A‖∞·max|x| + max|b|)`: it is scale-free
//! (doubling every conductance leaves it unchanged) and a small value
//! proves `x` exactly solves a nearby system — the strongest statement
//! a finite-precision solve can make. Condition is estimated with
//! Hager's 1-norm power iteration on `A⁻¹` (a handful of extra
//! triangular solves through the existing factors, no refactorization),
//! and only on the cold path where a solve has already failed
//! certification.

use crate::solver::LinearSystem;

/// Quality verdict attached to a certified linear solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveQuality {
    /// Componentwise-relative backward error of the returned solution:
    /// `max|b − A·x| / (‖A‖∞·max|x| + max|b|)`.
    pub residual: f64,
    /// Iterative-refinement passes applied (0 = the raw solve already
    /// met tolerance).
    pub refinement_passes: u32,
    /// Element growth of the factorization: the largest `U` magnitude
    /// over the largest stamped magnitude. Values far above 1 flag
    /// precision loss during elimination.
    pub pivot_growth: f64,
    /// Hager 1-norm condition estimate `‖A‖₁·est(‖A⁻¹‖₁)`, computed
    /// only when a solve fails certification (it costs extra triangular
    /// solves).
    pub cond_estimate: Option<f64>,
}

/// Residual-certification policy, threaded through the analysis
/// builders (`DcAnalysis`/`TransientAnalysis`/`SimEngine`) via their
/// `with_health` methods.
///
/// The default policy is **on**: every Newton linear solve is checked,
/// refined up to twice when it misses tolerance, and escalated down the
/// solver degradation ladder when refinement cannot rescue it. The
/// check itself is one sparse matvec per solve — `probe_health` pins
/// the overhead below 5% on the 256-cell row workload.
///
/// # Examples
///
/// ```
/// use ferrocim_spice::HealthPolicy;
///
/// let default = HealthPolicy::default();
/// assert!(default.enabled);
/// assert_eq!(default.max_refinement_passes, 2);
/// let off = HealthPolicy::off();
/// assert!(!off.enabled);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthPolicy {
    /// Whether solves are certified at all. When `false` the solver
    /// behaves exactly as before this layer existed (bitwise-identical
    /// solutions, no residual computation).
    pub enabled: bool,
    /// Largest acceptable relative backward error. The default `1e-9`
    /// sits ~7 decades above the `f64` unit roundoff, so a healthy
    /// factorization passes untouched while genuine degradation
    /// (pivot-growth blowups, poisoned entries) is caught.
    pub residual_tol: f64,
    /// Upper bound on iterative-refinement passes per solve.
    pub max_refinement_passes: u32,
    /// Whether to compute the Hager condition estimate when a solve
    /// fails certification (diagnostic only; costs extra triangular
    /// solves on the already-cold failure path).
    pub estimate_condition: bool,
}

impl Default for HealthPolicy {
    fn default() -> HealthPolicy {
        HealthPolicy {
            enabled: true,
            residual_tol: 1e-9,
            max_refinement_passes: 2,
            estimate_condition: true,
        }
    }
}

impl HealthPolicy {
    /// Certification disabled: solves behave exactly as before the
    /// health layer existed.
    pub fn off() -> HealthPolicy {
        HealthPolicy {
            enabled: false,
            ..HealthPolicy::default()
        }
    }

    /// Overrides the backward-error tolerance (builder style).
    pub fn with_residual_tol(mut self, tol: f64) -> HealthPolicy {
        self.residual_tol = tol;
        self
    }

    /// Overrides the refinement-pass bound (builder style).
    pub fn with_max_refinement_passes(mut self, passes: u32) -> HealthPolicy {
        self.max_refinement_passes = passes;
        self
    }

    /// Enables or disables the condition estimate (builder style).
    pub fn with_condition_estimate(mut self, on: bool) -> HealthPolicy {
        self.estimate_condition = on;
        self
    }
}

/// The outcome of certifying (and possibly refining) one solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct CertifyOutcome {
    /// The measured quality, after any refinement passes.
    pub quality: SolveQuality,
    /// Whether the final residual meets the policy tolerance.
    pub acceptable: bool,
}

/// Measures the relative backward error of `x` against the stamped
/// system, writing the raw residual `b − A·x` into `resid` (sized to
/// the system dimension) as a side effect.
fn backward_error(
    system: &mut dyn LinearSystem,
    b: &[f64],
    x: &[f64],
    resid: &mut Vec<f64>,
) -> f64 {
    let n = system.dim();
    resid.clear();
    resid.resize(n, 0.0);
    system.matvec_into(x, resid);
    let mut rmax = 0.0f64;
    for (rk, &bk) in resid.iter_mut().zip(b) {
        *rk = bk - *rk;
        rmax = rmax.max(rk.abs());
    }
    // NaN anywhere in the residual must read as "infinitely bad", not
    // fall out of the max fold: fold with max() keeps NaN only if it is
    // the first element, so detect it explicitly.
    if resid.iter().any(|v| !v.is_finite()) {
        return f64::INFINITY;
    }
    let xmax = x.iter().fold(0.0f64, |a, &v| a.max(v.abs()));
    let bmax = b.iter().fold(0.0f64, |a, &v| a.max(v.abs()));
    if !xmax.is_finite() {
        return f64::INFINITY;
    }
    let scale = system.inf_norm() * xmax + bmax;
    if scale == 0.0 {
        // Zero matrix, zero RHS, zero solution: certified trivially.
        return if rmax == 0.0 { 0.0 } else { f64::INFINITY };
    }
    rmax / scale
}

/// Hager's 1-norm condition estimator: a few power-iteration steps on
/// `A⁻¹` using only triangular solves through the stored factors (one
/// forward and one transposed solve per step), times `‖A‖₁`.
///
/// Allocation is fine here — this runs only after a solve has already
/// failed certification.
fn hager_condest(system: &mut dyn LinearSystem) -> f64 {
    let n = system.dim();
    if n == 0 {
        return 1.0;
    }
    let a_norm = system.one_norm();
    if a_norm == 0.0 {
        return f64::INFINITY;
    }
    let mut x = vec![1.0 / n as f64; n];
    let mut v = Vec::with_capacity(n);
    let mut w = Vec::with_capacity(n);
    let mut est = 0.0f64;
    for _ in 0..5 {
        system.resolve_into(&x, &mut v);
        let v_norm: f64 = v.iter().map(|a| a.abs()).sum();
        if !v_norm.is_finite() {
            return f64::INFINITY;
        }
        est = est.max(v_norm);
        let xi: Vec<f64> = v
            .iter()
            .map(|&a| if a >= 0.0 { 1.0 } else { -1.0 })
            .collect();
        system.solve_transposed_into(&xi, &mut w);
        let (mut j, mut wmax) = (0usize, f64::NEG_INFINITY);
        for (i, &wi) in w.iter().enumerate() {
            if wi.abs() > wmax {
                wmax = wi.abs();
                j = i;
            }
        }
        if !wmax.is_finite() {
            return f64::INFINITY;
        }
        let wx: f64 = w.iter().zip(&x).map(|(a, b)| a * b).sum();
        if wmax <= wx {
            break;
        }
        x.iter_mut().for_each(|a| *a = 0.0);
        x[j] = 1.0;
    }
    est * a_norm
}

/// Certifies one completed solve: measures the backward error of `x`
/// against the stamped system and, when it misses the policy tolerance,
/// applies bounded iterative refinement through the stored factors.
/// `x` is only mutated by refinement passes — an already-acceptable
/// solve returns it untouched (bitwise), which is what the refinement
/// parity proptest pins.
///
/// `resid` and `corr` are caller-owned scratch (the Newton workspace
/// reuses them across iterations).
pub(crate) fn certify(
    system: &mut dyn LinearSystem,
    b: &[f64],
    x: &mut [f64],
    policy: &HealthPolicy,
    resid: &mut Vec<f64>,
    corr: &mut Vec<f64>,
) -> CertifyOutcome {
    let mut residual = backward_error(system, b, x, resid);
    let mut passes = 0u32;
    while residual > policy.residual_tol
        && residual.is_finite()
        && passes < policy.max_refinement_passes
    {
        system.resolve_into(resid, corr);
        for (xk, &ck) in x.iter_mut().zip(corr.iter()) {
            *xk += ck;
        }
        passes += 1;
        residual = backward_error(system, b, x, resid);
    }
    let acceptable = residual <= policy.residual_tol;
    let cond_estimate = if !acceptable && policy.estimate_condition {
        Some(hager_condest(system))
    } else {
        None
    };
    CertifyOutcome {
        quality: SolveQuality {
            residual,
            refinement_passes: passes,
            pivot_growth: system.pivot_growth(),
            cond_estimate,
        },
        acceptable,
    }
}

/// One-shot public certification entry: measures the backward error of
/// `x` against the stamped system, applies bounded iterative refinement
/// through the stored factors when it misses tolerance, and returns the
/// final [`SolveQuality`] — or [`crate::SpiceError::UncertifiedSolve`]
/// when even the refined solution does not meet the policy tolerance.
///
/// The Newton loop inside the analyses does this automatically (with
/// the degradation ladder on top); this entry exists for harnesses —
/// the chaos soak test, external solver drivers — that certify a
/// [`LinearSystem`] solve directly.
///
/// # Errors
///
/// Returns [`crate::SpiceError::UncertifiedSolve`] when the refined
/// residual still exceeds `policy.residual_tol`.
pub fn certify_solution(
    system: &mut dyn LinearSystem,
    b: &[f64],
    x: &mut [f64],
    policy: &HealthPolicy,
) -> Result<SolveQuality, crate::SpiceError> {
    let (mut resid, mut corr) = (Vec::new(), Vec::new());
    let outcome = certify(system, b, x, policy, &mut resid, &mut corr);
    if outcome.acceptable {
        Ok(outcome.quality)
    } else {
        Err(crate::SpiceError::UncertifiedSolve {
            residual: outcome.quality.residual,
            cond_estimate: outcome.quality.cond_estimate,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{DenseLu, SparseLu};
    use ferrocim_telemetry::Telemetry;

    fn well_conditioned(n: usize) -> DenseLu {
        let mut d = DenseLu::with_dim(n);
        for i in 0..n {
            d.add(i, i, 4.0);
            if i + 1 < n {
                d.add(i, i + 1, -1.0);
                d.add(i + 1, i, -1.0);
            }
        }
        d
    }

    #[test]
    fn acceptable_solve_is_not_mutated() {
        let mut d = well_conditioned(5);
        let b = [1.0, 2.0, 3.0, 4.0, 5.0];
        let mut x = Vec::new();
        d.solve_into(&b, &mut x, &Telemetry::off()).unwrap();
        let before = x.clone();
        let (mut resid, mut corr) = (Vec::new(), Vec::new());
        let outcome = certify(
            &mut d,
            &b,
            &mut x,
            &HealthPolicy::default(),
            &mut resid,
            &mut corr,
        );
        assert!(outcome.acceptable);
        assert_eq!(outcome.quality.refinement_passes, 0);
        assert!(outcome.quality.cond_estimate.is_none());
        assert_eq!(x, before, "certification must not touch a good solve");
    }

    #[test]
    fn refinement_rescues_a_perturbed_solution() {
        let mut d = well_conditioned(4);
        let b = [1.0, -1.0, 2.0, 0.5];
        let mut x = Vec::new();
        d.solve_into(&b, &mut x, &Telemetry::off()).unwrap();
        // Inject error well above tolerance; refinement through the
        // (exact) factors recovers it in one pass.
        for xk in x.iter_mut() {
            *xk += 1e-4;
        }
        let (mut resid, mut corr) = (Vec::new(), Vec::new());
        let outcome = certify(
            &mut d,
            &b,
            &mut x,
            &HealthPolicy::default(),
            &mut resid,
            &mut corr,
        );
        assert!(outcome.acceptable, "quality {:?}", outcome.quality);
        assert!(outcome.quality.refinement_passes >= 1);
        assert!(outcome.quality.residual <= 1e-9);
    }

    #[test]
    fn nan_solution_is_unacceptable_with_infinite_residual() {
        let mut d = well_conditioned(3);
        let b = [1.0, 1.0, 1.0];
        let mut x = Vec::new();
        d.solve_into(&b, &mut x, &Telemetry::off()).unwrap();
        x[1] = f64::NAN;
        let (mut resid, mut corr) = (Vec::new(), Vec::new());
        let outcome = certify(
            &mut d,
            &b,
            &mut x,
            &HealthPolicy::default(),
            &mut resid,
            &mut corr,
        );
        assert!(!outcome.acceptable);
        assert!(outcome.quality.residual.is_infinite());
    }

    #[test]
    fn condest_tracks_true_conditioning() {
        // Diagonal matrix: κ₁ = max/min diagonal, exactly.
        let mut d = DenseLu::with_dim(3);
        d.add(0, 0, 1.0);
        d.add(1, 1, 1e-6);
        d.add(2, 2, 0.5);
        let b = [1.0, 1.0, 1.0];
        let mut x = Vec::new();
        d.solve_into(&b, &mut x, &Telemetry::off()).unwrap();
        let est = hager_condest(&mut d);
        assert!(
            (est - 1e6).abs() / 1e6 < 1e-9,
            "diagonal condest should be exact, got {est}"
        );
    }

    #[test]
    fn condest_works_through_the_sparse_backend() {
        let mut s = SparseLu::with_dim(3);
        s.add(0, 0, 2.0);
        s.add(0, 1, 1.0);
        s.add(1, 0, 1.0);
        s.add(1, 1, 3.0);
        s.add(1, 2, 1.0);
        s.add(2, 1, 1.0);
        s.add(2, 2, 4.0);
        let b = [4.0, 10.0, 14.0];
        let mut x = Vec::new();
        s.solve_into(&b, &mut x, &Telemetry::off()).unwrap();
        let est = hager_condest(&mut s);
        // κ₁(A) for this matrix is ≈ 5·0.55 ≈ 2.75; the estimator is a
        // lower bound on ‖A⁻¹‖₁·‖A‖₁ and must land in a sane range.
        assert!((1.0..10.0).contains(&est), "condest {est}");
    }

    #[test]
    fn zero_dimension_certifies_trivially() {
        let mut d = DenseLu::with_dim(0);
        let mut x: Vec<f64> = Vec::new();
        let (mut resid, mut corr) = (Vec::new(), Vec::new());
        let outcome = certify(
            &mut d,
            &[],
            &mut x,
            &HealthPolicy::default(),
            &mut resid,
            &mut corr,
        );
        assert!(outcome.acceptable);
        assert_eq!(outcome.quality.residual, 0.0);
    }
}
