//! Parameter-sweep helpers: temperature grids and generic linear sweeps.

use ferrocim_units::{Celsius, Volt};

/// An inclusive linear sweep producing `points` equally spaced values.
///
/// # Examples
///
/// ```
/// use ferrocim_spice::sweep::linspace;
/// let v = linspace(0.0, 1.0, 5);
/// assert_eq!(v, vec![0.0, 0.25, 0.5, 0.75, 1.0]);
/// ```
pub fn linspace(start: f64, stop: f64, points: usize) -> Vec<f64> {
    match points {
        0 => Vec::new(),
        1 => vec![start],
        _ => (0..points)
            .map(|i| start + (stop - start) * i as f64 / (points - 1) as f64)
            .collect(),
    }
}

/// The paper's standard temperature grid: 0 °C to 85 °C.
pub fn temperature_sweep(points: usize) -> Vec<Celsius> {
    linspace(0.0, 85.0, points)
        .into_iter()
        .map(Celsius)
        .collect()
}

/// The paper's restricted "optimized" range: 20 °C to 85 °C.
pub fn warm_temperature_sweep(points: usize) -> Vec<Celsius> {
    linspace(20.0, 85.0, points)
        .into_iter()
        .map(Celsius)
        .collect()
}

/// A voltage sweep between two rails.
pub fn voltage_sweep(start: Volt, stop: Volt, points: usize) -> Vec<Volt> {
    linspace(start.value(), stop.value(), points)
        .into_iter()
        .map(Volt)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linspace_endpoints_are_exact() {
        let v = linspace(0.0, 85.0, 18);
        assert_eq!(v.len(), 18);
        assert_eq!(v[0], 0.0);
        assert_eq!(*v.last().unwrap(), 85.0);
    }

    #[test]
    fn degenerate_cases() {
        assert!(linspace(1.0, 2.0, 0).is_empty());
        assert_eq!(linspace(1.0, 2.0, 1), vec![1.0]);
    }

    #[test]
    fn temperature_sweep_covers_paper_range() {
        let ts = temperature_sweep(18);
        assert_eq!(ts.first().unwrap().value(), 0.0);
        assert_eq!(ts.last().unwrap().value(), 85.0);
        let warm = warm_temperature_sweep(14);
        assert_eq!(warm.first().unwrap().value(), 20.0);
        assert_eq!(warm.last().unwrap().value(), 85.0);
    }

    #[test]
    fn voltage_sweep_maps_linspace() {
        let vs = voltage_sweep(Volt(0.0), Volt(1.2), 4);
        assert_eq!(vs.len(), 4);
        assert!((vs[1].value() - 0.4).abs() < 1e-12);
    }
}
