//! DC operating-point analysis.

use crate::health::HealthPolicy;
use crate::mna::{newton_solve_in, CapMode, Layout, NewtonOptions, SolveSettings};
use crate::netlist::{Circuit, Element, NodeId};
use crate::rescue::{is_rescuable, rescue_solve, RescuePolicy, RescueReport};
use crate::solver::SolverConfig;
use crate::{Budget, SpiceError, Workspace};
use ferrocim_telemetry::Telemetry;
use ferrocim_units::{Ampere, Celsius, Second, Volt};
use std::collections::HashMap;

/// The solved DC operating point of a circuit: every node voltage and
/// every voltage-source branch current.
#[derive(Debug, Clone)]
pub struct OperatingPoint {
    /// Voltage per node index (including ground at index 0).
    voltages: Vec<f64>,
    /// Branch current per voltage-source element name. Positive current
    /// flows from the `pos` terminal through the source to `neg`
    /// (i.e. a battery *delivering* power shows a negative value).
    branch_currents: HashMap<String, f64>,
    /// Raw unknown vector, used to warm-start subsequent analyses.
    pub(crate) raw: Vec<f64>,
    /// How the solve converged (which rescue rungs ran, if any).
    rescue: RescueReport,
}

impl OperatingPoint {
    /// How this operating point was obtained: the rescue-ladder rungs
    /// that were attempted and which one converged. A plain solve
    /// reports a single converged [`crate::RescueRung::PlainNewton`]
    /// attempt.
    pub fn rescue_report(&self) -> &RescueReport {
        &self.rescue
    }
    /// The voltage at a node.
    pub fn voltage(&self, node: NodeId) -> Volt {
        Volt(self.voltages[node.index()])
    }

    /// The branch current of a voltage source, positive from `pos` to
    /// `neg` *through the source*.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownElement`] if no voltage source with
    /// this name exists.
    pub fn source_current(&self, name: &str) -> Result<Ampere, SpiceError> {
        self.branch_currents
            .get(name)
            .map(|&i| Ampere(i))
            .ok_or_else(|| SpiceError::UnknownElement {
                name: name.to_string(),
            })
    }

    /// The power *delivered* by a voltage source into the circuit
    /// (positive when sourcing).
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownElement`] if the name is not a
    /// voltage source of the analyzed circuit.
    pub fn source_power(&self, circuit: &Circuit, name: &str) -> Result<f64, SpiceError> {
        let i = self.source_current(name)?.value();
        match circuit.element(name) {
            Some(Element::VoltageSource {
                pos, neg, waveform, ..
            }) => {
                let v = waveform.at(Second::ZERO).value();
                let _ = (pos, neg);
                Ok(-v * i)
            }
            _ => Err(SpiceError::UnknownElement {
                name: name.to_string(),
            }),
        }
    }
}

/// A DC operating-point analysis.
///
/// Capacitors are treated as open circuits; waveform sources take their
/// `t = 0` value.
///
/// # Examples
///
/// ```
/// use ferrocim_spice::{Circuit, DcAnalysis, Element, NodeId};
/// use ferrocim_units::{Celsius, Ohm, Volt};
///
/// # fn main() -> Result<(), ferrocim_spice::SpiceError> {
/// let mut ckt = Circuit::new();
/// let vin = ckt.node("in");
/// let out = ckt.node("out");
/// ckt.add(Element::vdc("V1", vin, NodeId::GROUND, Volt(1.0)))?;
/// ckt.add(Element::resistor("R1", vin, out, Ohm(1e3)))?;
/// ckt.add(Element::resistor("R2", out, NodeId::GROUND, Ohm(1e3)))?;
/// let op = DcAnalysis::new(&ckt).at(Celsius(27.0)).solve()?;
/// assert!((op.voltage(out).value() - 0.5).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DcAnalysis<'a> {
    circuit: &'a Circuit,
    temp: Celsius,
    options: NewtonOptions,
    initial_guess: Option<Vec<f64>>,
    rescue: RescuePolicy,
    budget: Budget,
    telemetry: Telemetry,
    solver: Option<SolverConfig>,
    health: HealthPolicy,
}

impl<'a> DcAnalysis<'a> {
    /// Creates an analysis at the default temperature (27 °C) with the
    /// full rescue ladder enabled.
    pub fn new(circuit: &'a Circuit) -> Self {
        DcAnalysis {
            circuit,
            temp: Celsius::ROOM,
            options: NewtonOptions::default(),
            initial_guess: None,
            rescue: RescuePolicy::default(),
            budget: Budget::unlimited(),
            telemetry: Telemetry::off(),
            solver: None,
            health: HealthPolicy::default(),
        }
    }

    /// Sets the simulation temperature.
    pub fn at(mut self, temp: Celsius) -> Self {
        self.temp = temp;
        self
    }

    /// Overrides the Newton iteration options.
    pub fn with_options(mut self, options: NewtonOptions) -> Self {
        self.options = options;
        self
    }

    /// Overrides the convergence-rescue policy
    /// ([`RescuePolicy::none`] restores fail-fast behaviour).
    pub fn with_rescue(mut self, policy: RescuePolicy) -> Self {
        self.rescue = policy;
        self
    }

    /// Attaches a resource [`Budget`]. Newton iterations (including
    /// rescue-ladder retries) are charged against it, and the solve
    /// aborts with [`SpiceError::BudgetExceeded`] /
    /// [`SpiceError::Cancelled`] once it is exhausted.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Attaches a telemetry handle: the solve emits Newton-iteration
    /// and rescue-ladder events through it (see `ferrocim_telemetry`).
    pub fn with_recorder(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Selects the linear-solver backend (see [`SolverConfig`]). When
    /// not set, a solve leaves its [`Workspace`]'s own configuration in
    /// force — [`SolverConfig::auto`] for a fresh workspace.
    pub fn with_solver(mut self, config: SolverConfig) -> Self {
        self.solver = Some(config);
        self
    }

    /// Overrides the numerical-health policy (see [`HealthPolicy`]).
    /// The default certifies every linear solve; pass
    /// [`HealthPolicy::off`] for the historical uncertified behaviour.
    pub fn with_health(mut self, health: HealthPolicy) -> Self {
        self.health = health;
        self
    }

    /// Warm-starts from a previous operating point (useful when sweeping
    /// temperature in small steps).
    pub fn warm_start(mut self, op: &OperatingPoint) -> Self {
        self.initial_guess = Some(op.raw.clone());
        self
    }

    /// Solves for the operating point. If plain Newton fails and the
    /// rescue policy enables it, the solve escalates through the
    /// rescue ladder (see [`RescuePolicy`]) before giving up.
    ///
    /// # Errors
    ///
    /// * [`SpiceError::NoConvergence`] if Newton iteration (and every
    ///   enabled rescue rung) fails.
    /// * [`SpiceError::NumericalBlowup`] if an iteration produced a
    ///   non-finite update.
    /// * [`SpiceError::SingularMatrix`] for degenerate circuits.
    pub fn solve(&self) -> Result<OperatingPoint, SpiceError> {
        self.solve_in(&mut Workspace::new())
    }

    /// [`DcAnalysis::solve`] using a caller-owned [`Workspace`] for all
    /// solver buffers. Repeated solves through the same workspace skip
    /// the per-solve matrix/vector allocations; the numerical result is
    /// bitwise identical to [`DcAnalysis::solve`].
    ///
    /// # Errors
    ///
    /// Same as [`DcAnalysis::solve`].
    pub fn solve_in(&self, ws: &mut Workspace) -> Result<OperatingPoint, SpiceError> {
        let _span = self.telemetry.span("spice.dc");
        if let Some(config) = self.solver {
            ws.set_solver(config);
        }
        let layout = Layout::of(self.circuit);
        let initial: Vec<f64> = match &self.initial_guess {
            Some(guess) if guess.len() == layout.size => guess.clone(),
            _ => vec![0.0; layout.size],
        };
        let mut x = initial.clone();
        let report = match newton_solve_in(
            self.circuit,
            &layout,
            Second::ZERO,
            self.temp,
            CapMode::Open,
            &SolveSettings::NOMINAL,
            &mut x,
            &self.options,
            &self.budget,
            &self.telemetry,
            &self.health,
            ws,
        ) {
            Ok(iterations) => RescueReport::plain(iterations),
            Err(err) if self.rescue.is_enabled() && is_rescuable(&err) => rescue_solve(
                self.circuit,
                &layout,
                Second::ZERO,
                self.temp,
                CapMode::Open,
                &mut x,
                &initial,
                &self.options,
                &self.rescue,
                &self.budget,
                &self.telemetry,
                &self.health,
                ws,
                err,
            )?,
            Err(err) => return Err(err),
        };
        Ok(pack_solution(self.circuit, &layout, x).with_rescue(report))
    }
}

pub(crate) fn pack_solution(circuit: &Circuit, layout: &Layout, x: Vec<f64>) -> OperatingPoint {
    let mut voltages = vec![0.0; circuit.node_count()];
    let n = circuit.node_count();
    voltages[1..n].copy_from_slice(&x[..n - 1]);
    let mut branch_currents = HashMap::new();
    for (idx, e) in circuit.elements().iter().enumerate() {
        if let Element::VoltageSource { name, .. } = e {
            let row = layout.branch_of_element[&idx];
            branch_currents.insert(name.clone(), x[row]);
        }
    }
    OperatingPoint {
        voltages,
        branch_currents,
        raw: x,
        rescue: RescueReport::default(),
    }
}

impl OperatingPoint {
    pub(crate) fn with_rescue(mut self, report: RescueReport) -> OperatingPoint {
        self.rescue = report;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Element;
    use ferrocim_device::{Fefet, FefetParams, MosfetModel, MosfetParams, PolarizationState};
    use ferrocim_units::Ohm;

    const ROOM: Celsius = Celsius(27.0);

    #[test]
    fn voltage_divider() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.add(Element::vdc("V1", vin, NodeId::GROUND, Volt(1.2)))
            .unwrap();
        ckt.add(Element::resistor("R1", vin, out, Ohm(2e3)))
            .unwrap();
        ckt.add(Element::resistor("R2", out, NodeId::GROUND, Ohm(1e3)))
            .unwrap();
        let op = DcAnalysis::new(&ckt).solve().unwrap();
        assert!((op.voltage(out).value() - 0.4).abs() < 1e-6);
        // Battery delivers 1.2 V / 3 kΩ = 0.4 mA: branch current is −0.4 mA.
        let i = op.source_current("V1").unwrap().value();
        assert!((i + 0.4e-3).abs() < 1e-8, "i = {i}");
        let p = op.source_power(&ckt, "V1").unwrap();
        assert!((p - 1.2 * 0.4e-3).abs() < 1e-8);
    }

    #[test]
    fn current_source_into_resistor() {
        let mut ckt = Circuit::new();
        let out = ckt.node("out");
        ckt.add(Element::CurrentSource {
            name: "I1".into(),
            pos: out,
            neg: NodeId::GROUND,
            current: Ampere(1e-6),
        })
        .unwrap();
        ckt.add(Element::resistor("R1", out, NodeId::GROUND, Ohm(1e5)))
            .unwrap();
        let op = DcAnalysis::new(&ckt).solve().unwrap();
        assert!((op.voltage(out).value() - 0.1).abs() < 1e-6);
    }

    #[test]
    fn capacitor_is_open_in_dc() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.add(Element::vdc("V1", vin, NodeId::GROUND, Volt(1.0)))
            .unwrap();
        ckt.add(Element::resistor("R1", vin, out, Ohm(1e3)))
            .unwrap();
        ckt.add(Element::capacitor(
            "C1",
            out,
            NodeId::GROUND,
            ferrocim_units::Farad(1e-15),
        ))
        .unwrap();
        let op = DcAnalysis::new(&ckt).solve().unwrap();
        // No DC path from `out` except GMIN: node floats up to the rail.
        assert!((op.voltage(out).value() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn nmos_common_source_amplifier_bias() {
        // Drain resistor from 1.2 V rail; gate well above threshold.
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let gate = ckt.node("g");
        let drain = ckt.node("d");
        ckt.add(Element::vdc("VDD", vdd, NodeId::GROUND, Volt(1.2)))
            .unwrap();
        ckt.add(Element::vdc("VG", gate, NodeId::GROUND, Volt(0.9)))
            .unwrap();
        ckt.add(Element::resistor("RD", vdd, drain, Ohm(20e3)))
            .unwrap();
        let model = MosfetModel::new(MosfetParams::nmos_14nm().with_wl_ratio(8.0));
        ckt.add(Element::mosfet(
            "M1",
            drain,
            gate,
            NodeId::GROUND,
            model.clone(),
        ))
        .unwrap();
        let op = DcAnalysis::new(&ckt).solve().unwrap();
        let vd = op.voltage(drain).value();
        assert!(
            vd > 0.0 && vd < 1.2,
            "drain must bias between rails, got {vd}"
        );
        // KCL check: resistor current equals transistor current.
        let ir = (1.2 - vd) / 20e3;
        let it = model.ids(Volt(0.9), Volt(vd), ROOM).value();
        assert!(
            (ir - it).abs() < 1e-6 * ir.abs().max(1e-9),
            "ir {ir} vs it {it}"
        );
    }

    #[test]
    fn diode_connected_nmos_settles_near_threshold() {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let d = ckt.node("d");
        ckt.add(Element::vdc("VDD", vdd, NodeId::GROUND, Volt(1.2)))
            .unwrap();
        ckt.add(Element::resistor("R", vdd, d, Ohm(1e6))).unwrap();
        let model = MosfetModel::new(MosfetParams::nmos_14nm().with_wl_ratio(4.0));
        ckt.add(Element::mosfet("M1", d, d, NodeId::GROUND, model))
            .unwrap();
        let op = DcAnalysis::new(&ckt).solve().unwrap();
        let vd = op.voltage(d).value();
        // With ~1 µA through a diode-connected device the gate settles
        // in moderate inversion near V_TH.
        assert!(vd > 0.25 && vd < 0.65, "diode voltage {vd}");
    }

    #[test]
    fn fefet_on_and_off_states_differ() {
        let build = |state: PolarizationState| {
            let mut ckt = Circuit::new();
            let bl = ckt.node("bl");
            let sl = ckt.node("sl");
            let wl = ckt.node("wl");
            ckt.add(Element::vdc("VBL", bl, NodeId::GROUND, Volt(1.2)))
                .unwrap();
            ckt.add(Element::vdc("VSL", sl, NodeId::GROUND, Volt(0.2)))
                .unwrap();
            ckt.add(Element::vdc("VWL", wl, NodeId::GROUND, Volt(0.35)))
                .unwrap();
            let mut dev = Fefet::new(FefetParams::paper_default());
            dev.force_state(state);
            // FeFET pulls current from BL to SL: drain at bl, source at sl,
            // gate referenced to sl via wl - 0.2 offset handled by biasing.
            ckt.add(Element::fefet("F1", bl, wl, sl, dev)).unwrap();
            let op = DcAnalysis::new(&ckt).solve().unwrap();
            op.source_current("VSL").unwrap().value()
        };
        let on = build(PolarizationState::LowVt).abs();
        let off = build(PolarizationState::HighVt).abs();
        assert!(on / off.max(1e-30) > 1e3, "on {on} off {off}");
    }

    #[test]
    fn warm_start_reproduces_cold_solution() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.add(Element::vdc("V1", vin, NodeId::GROUND, Volt(1.0)))
            .unwrap();
        ckt.add(Element::resistor("R1", vin, out, Ohm(1e3)))
            .unwrap();
        ckt.add(Element::resistor("R2", out, NodeId::GROUND, Ohm(3e3)))
            .unwrap();
        let cold = DcAnalysis::new(&ckt).solve().unwrap();
        let warm = DcAnalysis::new(&ckt).warm_start(&cold).solve().unwrap();
        assert!((cold.voltage(out).value() - warm.voltage(out).value()).abs() < 1e-12);
    }

    #[test]
    fn unknown_probe_is_an_error() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add(Element::vdc("V1", a, NodeId::GROUND, Volt(1.0)))
            .unwrap();
        let op = DcAnalysis::new(&ckt).solve().unwrap();
        assert!(matches!(
            op.source_current("nope"),
            Err(SpiceError::UnknownElement { .. })
        ));
    }

    #[test]
    fn temperature_changes_bias_point() {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let d = ckt.node("d");
        let g = ckt.node("g");
        ckt.add(Element::vdc("VDD", vdd, NodeId::GROUND, Volt(1.2)))
            .unwrap();
        ckt.add(Element::vdc("VG", g, NodeId::GROUND, Volt(0.35)))
            .unwrap();
        ckt.add(Element::resistor("RD", vdd, d, Ohm(1e6))).unwrap();
        let model = MosfetModel::new(MosfetParams::nmos_14nm().with_wl_ratio(8.0));
        ckt.add(Element::mosfet("M1", d, g, NodeId::GROUND, model))
            .unwrap();
        let cold = DcAnalysis::new(&ckt).at(Celsius(0.0)).solve().unwrap();
        let hot = DcAnalysis::new(&ckt).at(Celsius(85.0)).solve().unwrap();
        // Subthreshold device conducts more when hot → drain pulled lower.
        assert!(hot.voltage(d).value() < cold.voltage(d).value());
    }
}
