//! The unified linear-solver layer behind every MNA solve.
//!
//! [`LinearSystem`] is the shared stamp/clear/solve contract consumed
//! by `mna::assemble` and `mna::newton_solve_in`; two backends
//! implement it:
//!
//! * [`DenseLu`] — the original dense LU with partial pivoting
//!   ([`crate::Matrix`]), still the fastest option for the
//!   tens-of-unknowns circuits of a single cell or a short row.
//! * [`SparseLu`] — a KLU-style sparse LU (Gilbert–Peierls
//!   left-looking factorization). The expensive *symbolic* work — a
//!   fill-reducing column ordering plus the pivot sequence and the
//!   nonzero patterns of `L` and `U` — is computed **once per netlist
//!   topology** and reused by every subsequent solve, which only
//!   refactors numerically along the known pattern. Newton iterations,
//!   transient steps, sweep points, and Monte-Carlo samples all share
//!   one analysis because MNA stamping never changes the sparsity
//!   pattern, only the values.
//!
//! The sparse backend additionally exploits the bordered-block-diagonal
//! structure of a CIM row (cells couple only through the shared
//! accumulation/bitline node): the columns of each cell block are
//! mutually independent in the elimination DAG, so the numeric
//! refactorization is *level-scheduled* — all columns whose
//! dependencies are satisfied factor in parallel, cell blocks first,
//! the small border system last. Enable it with
//! [`SolverConfig::with_parallel_blocks`]; results are bitwise
//! identical to the sequential refactorization because every column's
//! arithmetic is independent of the schedule.
//!
//! [`SolverConfig`] selects the backend. The default
//! [`SolverKind::Auto`] picks dense below
//! [`SolverConfig::AUTO_SPARSE_THRESHOLD`] unknowns and sparse at or
//! above it, which is where the O(n³) dense factorization starts losing
//! to the near-linear sparse path on MNA matrices (a handful of
//! nonzeros per row).

use crate::linear::Matrix;
use crate::SpiceError;
use ferrocim_telemetry::{SolverBackend, Telemetry};
use std::collections::HashMap;

/// Which linear-solver backend an analysis should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverKind {
    /// Pick by system size: dense below
    /// [`SolverConfig::AUTO_SPARSE_THRESHOLD`] unknowns, sparse at or
    /// above it.
    #[default]
    Auto,
    /// Always the dense LU.
    Dense,
    /// Always the sparse KLU-style LU.
    Sparse,
}

/// Fill-reducing column ordering for the sparse backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FillOrdering {
    /// Greedy minimum-degree on the pattern of `A + Aᵀ` — the default;
    /// eliminates cell-internal nodes before shared bitline hubs, which
    /// keeps fill near zero on CIM-row matrices.
    #[default]
    MinDegree,
    /// Factor columns in natural (stamping) order.
    Natural,
}

/// Linear-solver selection, threaded through the analysis builders
/// (`DcAnalysis`/`TransientAnalysis`/`DcSweep`/`SimEngine`) via their
/// `with_solver` methods and applied to the [`crate::Workspace`] a
/// solve runs in.
///
/// # Examples
///
/// ```
/// use ferrocim_spice::{FillOrdering, SolverConfig, SolverKind};
///
/// let cfg = SolverConfig::sparse().with_ordering(FillOrdering::MinDegree);
/// assert_eq!(cfg.kind, SolverKind::Sparse);
/// assert!(!cfg.parallel_blocks);
/// // Auto picks by size.
/// assert!(!SolverConfig::auto().wants_sparse(30));
/// assert!(SolverConfig::auto().wants_sparse(500));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SolverConfig {
    /// Backend selection policy.
    pub kind: SolverKind,
    /// Column ordering used by the sparse backend.
    pub ordering: FillOrdering,
    /// Level-scheduled parallel numeric refactorization (sparse backend
    /// only). Off by default: it only pays on wide rows where many cell
    /// blocks factor concurrently.
    pub parallel_blocks: bool,
}

impl SolverConfig {
    /// System size (unknowns) at which [`SolverKind::Auto`] switches
    /// from dense to sparse. Calibrated with `probe_sparse`: on MNA
    /// matrices the sparse path wins from roughly a 32-cell row
    /// (~100 unknowns) upward.
    pub const AUTO_SPARSE_THRESHOLD: usize = 100;

    /// Size-based automatic selection (the default).
    pub fn auto() -> SolverConfig {
        SolverConfig::default()
    }

    /// Always dense.
    pub fn dense() -> SolverConfig {
        SolverConfig {
            kind: SolverKind::Dense,
            ..SolverConfig::default()
        }
    }

    /// Always sparse.
    pub fn sparse() -> SolverConfig {
        SolverConfig {
            kind: SolverKind::Sparse,
            ..SolverConfig::default()
        }
    }

    /// Overrides the sparse column ordering (builder style).
    pub fn with_ordering(mut self, ordering: FillOrdering) -> SolverConfig {
        self.ordering = ordering;
        self
    }

    /// Enables or disables the level-scheduled parallel numeric
    /// refactorization (builder style).
    pub fn with_parallel_blocks(mut self, parallel: bool) -> SolverConfig {
        self.parallel_blocks = parallel;
        self
    }

    /// Whether this configuration selects the sparse backend for an
    /// `n`-unknown system.
    pub fn wants_sparse(&self, n: usize) -> bool {
        match self.kind {
            SolverKind::Dense => false,
            SolverKind::Sparse => true,
            SolverKind::Auto => n >= SolverConfig::AUTO_SPARSE_THRESHOLD,
        }
    }
}

/// What a [`LinearSystem::solve_into`] call did, for telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolveInfo {
    /// The backend that performed the solve.
    pub backend: SolverBackend,
    /// Whether a symbolic analysis ran as part of this solve. The dense
    /// backend never reports `true`; the sparse backend reports it once
    /// per topology (plus the rare pivot-degradation re-analysis).
    pub symbolic: bool,
}

/// The stamp/clear/solve contract shared by every MNA solver backend.
///
/// `mna::assemble` stamps conductances through [`LinearSystem::add`]
/// exactly as it always stamped the dense matrix; the backend decides
/// how entries are stored and factored. One implementation instance is
/// owned by a [`crate::Workspace`] and reused across solves, which is
/// what lets the sparse backend amortize its symbolic analysis.
pub trait LinearSystem {
    /// The system dimension.
    fn dim(&self) -> usize;

    /// Resets all stamped values to zero, keeping pattern and symbolic
    /// state.
    fn clear(&mut self);

    /// Adds `value` to entry `(row, col)` — the stamp primitive.
    fn add(&mut self, row: usize, col: usize, value: f64);

    /// Factors the stamped system and solves `A·x = b` into `out`.
    /// Emits solver spans through `tele` (the symbolic analysis of the
    /// sparse backend is timed under `spice.solver.symbolic`).
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::SingularMatrix`] when no usable pivot
    /// exists — a floating node or an ideal-source loop in MNA terms.
    fn solve_into(
        &mut self,
        b: &[f64],
        out: &mut Vec<f64>,
        tele: &Telemetry,
    ) -> Result<SolveInfo, SpiceError>;

    /// Computes `A·x` into `y` from the currently stamped values — the
    /// matrix as assembled, independent of any factorization — for
    /// residual checks. `y` must already have length [`LinearSystem::dim`].
    fn matvec_into(&mut self, x: &[f64], y: &mut [f64]);

    /// Re-solves `A·x = b` through the factors left behind by the most
    /// recent [`LinearSystem::solve_into`], with no refactorization —
    /// the iterative-refinement primitive. Fills `out` with zeros when
    /// no factorization exists yet.
    fn resolve_into(&mut self, b: &[f64], out: &mut Vec<f64>);

    /// Solves the transposed system `Aᵀ·w = c` through the stored
    /// factors (the Hager condition-estimator primitive). Fills `out`
    /// with zeros when no factorization exists yet.
    fn solve_transposed_into(&mut self, c: &[f64], out: &mut Vec<f64>);

    /// The ∞-norm (maximum absolute row sum) of the stamped matrix.
    fn inf_norm(&mut self) -> f64;

    /// The 1-norm (maximum absolute column sum) of the stamped matrix.
    fn one_norm(&mut self) -> f64;

    /// Pivot growth of the most recent factorization: the largest `U`
    /// magnitude over the largest stamped magnitude. Values far above 1
    /// flag element growth that loses precision. Reports `1.0` before
    /// any factorization (or for an all-zero matrix).
    fn pivot_growth(&self) -> f64;

    /// Which backend this is (for telemetry).
    fn backend(&self) -> SolverBackend;
}

/// The dense LU backend: the original [`Matrix`] factorization plus its
/// permutation/RHS scratch, behind the [`LinearSystem`] trait. Results
/// are bitwise identical to the historical `Matrix::solve_into` path —
/// same elimination sequence, same buffers. The stamped matrix `m` is
/// copied into `lu` before factoring, so the assembled values survive
/// the solve for residual checks and refinement re-solves.
#[derive(Debug, Clone, Default)]
pub struct DenseLu {
    m: Matrix,
    lu: Matrix,
    rhs: Vec<f64>,
    perm: Vec<usize>,
}

impl DenseLu {
    /// A dense system of dimension `n`.
    pub fn with_dim(n: usize) -> DenseLu {
        let mut d = DenseLu {
            m: Matrix::zeros(n),
            lu: Matrix::zeros(n),
            rhs: Vec::new(),
            perm: Vec::new(),
        };
        d.rhs.reserve(n);
        d.perm.reserve(n);
        d
    }

    /// Whether a factorization from a completed solve is available.
    fn factored(&self) -> bool {
        self.perm.len() == self.m.dim() && self.lu.dim() == self.m.dim()
    }
}

impl LinearSystem for DenseLu {
    fn dim(&self) -> usize {
        self.m.dim()
    }

    fn clear(&mut self) {
        self.m.clear();
    }

    #[inline]
    fn add(&mut self, row: usize, col: usize, value: f64) {
        self.m.add(row, col, value);
    }

    fn solve_into(
        &mut self,
        b: &[f64],
        out: &mut Vec<f64>,
        _tele: &Telemetry,
    ) -> Result<SolveInfo, SpiceError> {
        self.lu.copy_values_from(&self.m);
        self.lu.solve_into(b, &mut self.rhs, &mut self.perm, out)?;
        Ok(SolveInfo {
            backend: SolverBackend::Dense,
            symbolic: false,
        })
    }

    fn matvec_into(&mut self, x: &[f64], y: &mut [f64]) {
        self.m.mul_vec_into(x, y);
    }

    fn resolve_into(&mut self, b: &[f64], out: &mut Vec<f64>) {
        if !self.factored() {
            out.clear();
            out.resize(self.m.dim(), 0.0);
            return;
        }
        self.lu.solve_factored(b, &self.perm, &mut self.rhs, out);
    }

    fn solve_transposed_into(&mut self, c: &[f64], out: &mut Vec<f64>) {
        if !self.factored() {
            out.clear();
            out.resize(self.m.dim(), 0.0);
            return;
        }
        self.lu
            .solve_transposed_factored(c, &self.perm, &mut self.rhs, out);
    }

    fn inf_norm(&mut self) -> f64 {
        self.m.inf_norm()
    }

    fn one_norm(&mut self) -> f64 {
        self.m.one_norm()
    }

    fn pivot_growth(&self) -> f64 {
        if !self.factored() {
            return 1.0;
        }
        let denom = self.m.max_abs();
        if denom <= 0.0 {
            return 1.0;
        }
        self.lu.max_abs_upper(&self.perm) / denom
    }

    fn backend(&self) -> SolverBackend {
        SolverBackend::Dense
    }
}

/// Diagonal-preference threshold for the symbolic pivot search: the
/// structural diagonal is kept as pivot whenever it is at least this
/// fraction of the column maximum, which preserves the fill predicted
/// by the ordering.
const PIVOT_TOL: f64 = 0.1;

/// Numeric-refactorization degradation guard: when a reused pivot falls
/// below this fraction of its column maximum the stored pivot sequence
/// is no longer trustworthy and a fresh symbolic analysis runs instead.
const REFACTOR_TOL: f64 = 1e-8;

/// Minimum number of same-level columns before the parallel refactor
/// bothers spawning threads for that level.
const PAR_MIN_WIDTH: usize = 16;

/// The immutable product of one symbolic analysis: column order, pivot
/// sequence, and the `L`/`U` nonzero patterns, reused by every numeric
/// refactorization on the same topology.
#[derive(Debug, Clone)]
struct Symbolic {
    /// Column pre-order: factorization step `k` processes original
    /// column `q[k]`.
    q: Vec<usize>,
    /// Step `k` → the original row chosen as its pivot.
    pivot_row: Vec<usize>,
    /// Column pointers of `L` (unit diagonal implicit).
    lp: Vec<usize>,
    /// Row indices of `L`, in *original* row coordinates, ascending.
    li: Vec<usize>,
    /// Column pointers of `U` (diagonal stored separately).
    up: Vec<usize>,
    /// Row indices of `U` as pivot positions `< k`, ascending.
    ui: Vec<usize>,
    /// Level-scheduled column groups: columns in one level have all
    /// their `U`-pattern dependencies in strictly lower levels, so they
    /// refactor independently. On a CIM row the cell blocks land in the
    /// low levels and the bitline border in the top ones.
    levels: Vec<Vec<usize>>,
}

/// Returned by the numeric refactorization when a reused pivot has
/// degraded; the caller falls back to a fresh symbolic analysis.
struct NumericDegraded;

/// The values of one refactored column, produced by the shared numeric
/// core and written back by either the sequential or the parallel
/// scheduler.
struct ColumnValues {
    k: usize,
    diag: f64,
    ux: Vec<f64>,
    lx: Vec<f64>,
}

/// The sparse KLU-style LU backend.
///
/// Stamps are captured into a slot table on the first assembly; the
/// pattern seals at the first solve, after which [`SparseLu::clear`] /
/// [`SparseLu::add`] only touch values. The first solve runs the fused
/// symbolic + numeric Gilbert–Peierls factorization (fill-reducing
/// ordering, DFS reach, threshold pivoting); every later solve
/// refactors numerically along the stored pattern — no ordering, no
/// DFS, no pivot search. A stamped entry at a new position (topology
/// change) or a degraded pivot transparently re-runs the symbolic
/// analysis.
#[derive(Debug, Clone, Default)]
pub struct SparseLu {
    n: usize,
    ordering: FillOrdering,
    parallel: bool,
    // --- stamp capture ---
    slot_of: HashMap<(u32, u32), u32>,
    coords: Vec<(u32, u32)>,
    values: Vec<f64>,
    sealed: bool,
    // --- CSC mirror of the stamped pattern (built at seal) ---
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    csc_of_slot: Vec<usize>,
    csc_vals: Vec<f64>,
    // --- factorization ---
    sym: Option<Symbolic>,
    lx: Vec<f64>,
    ux: Vec<f64>,
    udiag: Vec<f64>,
    // --- scratch (all-zero invariant for `work`) ---
    work: Vec<f64>,
    fwd: Vec<f64>,
    y: Vec<f64>,
    // --- counters ---
    symbolic_count: u64,
    numeric_count: u64,
}

impl SparseLu {
    /// A sparse system of dimension `n` with default ordering and
    /// sequential refactorization.
    pub fn with_dim(n: usize) -> SparseLu {
        SparseLu {
            n,
            work: vec![0.0; n],
            ..SparseLu::default()
        }
    }

    /// Overrides the fill-reducing ordering (builder style). Resets any
    /// existing symbolic analysis.
    pub fn with_ordering(mut self, ordering: FillOrdering) -> SparseLu {
        self.ordering = ordering;
        self.sym = None;
        self
    }

    /// Enables the level-scheduled parallel numeric refactorization
    /// (builder style).
    pub fn with_parallel_blocks(mut self, parallel: bool) -> SparseLu {
        self.parallel = parallel;
        self
    }

    /// How many symbolic analyses have run — 1 for any number of solves
    /// on a fixed topology (barring pivot-degradation re-analyses).
    pub fn symbolic_analyses(&self) -> u64 {
        self.symbolic_count
    }

    /// How many numeric factorizations have run (one per solve).
    pub fn numeric_factorizations(&self) -> u64 {
        self.numeric_count
    }

    /// Nonzero count of the stamped pattern.
    pub fn pattern_nnz(&self) -> usize {
        self.coords.len()
    }

    /// Discards the symbolic analysis, forcing the next solve to re-run
    /// the fused symbolic + numeric factorization (fresh ordering, DFS,
    /// and pivot search). The first rung of the degradation ladder.
    pub(crate) fn invalidate_symbolic(&mut self) {
        self.sym = None;
    }

    /// Sorts the captured stamp slots into compressed-sparse-column
    /// form. Called once at the first solve after any pattern change.
    fn seal(&mut self) {
        let nnz = self.coords.len();
        let mut order: Vec<usize> = (0..nnz).collect();
        order.sort_unstable_by_key(|&s| (self.coords[s].1, self.coords[s].0));
        self.col_ptr.clear();
        self.col_ptr.resize(self.n + 1, 0);
        self.row_idx.clear();
        self.row_idx.resize(nnz, 0);
        self.csc_of_slot.clear();
        self.csc_of_slot.resize(nnz, 0);
        for (pos, &slot) in order.iter().enumerate() {
            let (row, col) = self.coords[slot];
            self.row_idx[pos] = row as usize;
            self.csc_of_slot[slot] = pos;
            self.col_ptr[col as usize + 1] += 1;
        }
        for c in 0..self.n {
            self.col_ptr[c + 1] += self.col_ptr[c];
        }
        self.csc_vals.clear();
        self.csc_vals.resize(nnz, 0.0);
        self.sealed = true;
    }

    /// The fused symbolic + numeric Gilbert–Peierls factorization:
    /// computes the column ordering, then for each column the DFS reach
    /// (symbolic), the sparse triangular solve (numeric), and a
    /// threshold-pivot choice, recording the `L`/`U` patterns for later
    /// numeric-only refactorizations.
    fn factor_fresh(&mut self) -> Result<(), SpiceError> {
        let n = self.n;
        let q: Vec<usize> = match self.ordering {
            FillOrdering::Natural => (0..n).collect(),
            FillOrdering::MinDegree => min_degree(n, &self.col_ptr, &self.row_idx),
        };
        let mut pinv = vec![usize::MAX; n];
        let mut pivot_row = vec![0usize; n];
        let mut lp = Vec::with_capacity(n + 1);
        lp.push(0usize);
        let mut li: Vec<usize> = Vec::new();
        let mut lx: Vec<f64> = Vec::new();
        let mut up = Vec::with_capacity(n + 1);
        up.push(0usize);
        let mut ui: Vec<usize> = Vec::new();
        let mut ux: Vec<f64> = Vec::new();
        let mut udiag = vec![0.0; n];

        let mut x = vec![0.0; n];
        let mut flag = vec![usize::MAX; n];
        let mut pattern: Vec<usize> = Vec::with_capacity(n);
        let mut stack: Vec<usize> = Vec::new();
        let mut pstack: Vec<usize> = Vec::new();
        let mut lcol: Vec<(usize, f64)> = Vec::new();
        let mut ucol: Vec<(usize, f64)> = Vec::new();

        for k in 0..n {
            let col = q[k];
            // Symbolic reach: DFS from every A(:,col) entry through the
            // partial L, collecting the nonzero pattern of L \ A(:,col)
            // in post-order (dependencies first).
            pattern.clear();
            for p in self.col_ptr[col]..self.col_ptr[col + 1] {
                let root = self.row_idx[p];
                if flag[root] == k {
                    continue;
                }
                stack.clear();
                pstack.clear();
                stack.push(root);
                pstack.push(usize::MAX);
                while let Some(&node) = stack.last() {
                    let depth = stack.len() - 1;
                    if flag[node] != k {
                        flag[node] = k;
                        pstack[depth] = if pinv[node] != usize::MAX {
                            lp[pinv[node]]
                        } else {
                            usize::MAX
                        };
                    }
                    let mut descended = false;
                    if pinv[node] != usize::MAX {
                        let end = lp[pinv[node] + 1];
                        let mut p2 = pstack[depth];
                        while p2 < end {
                            let child = li[p2];
                            p2 += 1;
                            if flag[child] != k {
                                pstack[depth] = p2;
                                stack.push(child);
                                pstack.push(usize::MAX);
                                descended = true;
                                break;
                            }
                        }
                        if !descended {
                            pstack[depth] = end;
                        }
                    }
                    if !descended {
                        stack.pop();
                        pstack.pop();
                        pattern.push(node);
                    }
                }
            }

            // Numeric: sparse lower-triangular solve on the pattern, in
            // reverse post-order (every node before the rows it updates).
            for p in self.col_ptr[col]..self.col_ptr[col + 1] {
                x[self.row_idx[p]] = self.csc_vals[p];
            }
            for &node in pattern.iter().rev() {
                if pinv[node] != usize::MAX {
                    let j = pinv[node];
                    let xv = x[node];
                    for p2 in lp[j]..lp[j + 1] {
                        x[li[p2]] -= lx[p2] * xv;
                    }
                }
            }

            // Threshold pivoting over the not-yet-pivotal pattern rows:
            // keep the structural diagonal when it is large enough,
            // otherwise take the column maximum.
            let mut best_row = usize::MAX;
            let mut best_abs = 0.0f64;
            let mut diag_abs: Option<f64> = None;
            for &node in &pattern {
                if pinv[node] == usize::MAX {
                    let a = x[node].abs();
                    if a > best_abs || (a == best_abs && node < best_row) {
                        best_abs = a;
                        best_row = node;
                    }
                    if node == col {
                        diag_abs = Some(a);
                    }
                }
            }
            if !best_abs.is_finite() || best_abs < 1e-300 {
                for &node in &pattern {
                    x[node] = 0.0;
                }
                return Err(SpiceError::SingularMatrix { row: col });
            }
            let pr = match diag_abs {
                Some(d) if d >= PIVOT_TOL * best_abs => col,
                _ => best_row,
            };
            let pivot = x[pr];
            pinv[pr] = k;
            pivot_row[k] = pr;
            udiag[k] = pivot;

            // Emit the column: pivotal rows go to U (as pivot
            // positions), the rest to L (scaled by the pivot), both
            // sorted for deterministic refactorization order.
            lcol.clear();
            ucol.clear();
            for &node in &pattern {
                let xv = x[node];
                x[node] = 0.0;
                if node == pr {
                    continue;
                }
                let i = pinv[node];
                if i == usize::MAX {
                    lcol.push((node, xv / pivot));
                } else {
                    ucol.push((i, xv));
                }
            }
            lcol.sort_unstable_by_key(|&(r, _)| r);
            ucol.sort_unstable_by_key(|&(i, _)| i);
            for &(r, v) in &lcol {
                li.push(r);
                lx.push(v);
            }
            lp.push(li.len());
            for &(i, v) in &ucol {
                ui.push(i);
                ux.push(v);
            }
            up.push(ui.len());
        }

        // Level schedule for the parallel refactor: a column's only
        // cross-column inputs are the L columns named by its U pattern.
        let mut level = vec![0usize; n];
        let mut max_level = 0usize;
        for k in 0..n {
            let mut lv = 0usize;
            for p in up[k]..up[k + 1] {
                lv = lv.max(level[ui[p]] + 1);
            }
            level[k] = lv;
            max_level = max_level.max(lv);
        }
        let mut levels: Vec<Vec<usize>> = vec![Vec::new(); max_level + 1];
        for (k, &lv) in level.iter().enumerate() {
            levels[lv].push(k);
        }

        self.sym = Some(Symbolic {
            q,
            pivot_row,
            lp,
            li,
            up,
            ui,
            levels,
        });
        self.lx = lx;
        self.ux = ux;
        self.udiag = udiag;
        Ok(())
    }

    /// Numeric-only refactorization along the stored pattern: no
    /// ordering, no DFS, no pivot search. Columns are processed
    /// sequentially, or level-by-level in parallel when
    /// `parallel_blocks` is on — the per-column arithmetic is identical
    /// either way, so both schedules produce bitwise-equal factors.
    fn refactor(&mut self) -> Result<(), NumericDegraded> {
        let Some(sym) = &self.sym else {
            return Err(NumericDegraded);
        };
        let n = self.n;
        let threads = if self.parallel {
            std::thread::available_parallelism()
                .map(|t| t.get())
                .unwrap_or(1)
        } else {
            1
        };
        let mut buf = ColumnValues {
            k: 0,
            diag: 0.0,
            ux: Vec::new(),
            lx: Vec::new(),
        };
        if threads < 2 {
            for k in 0..n {
                buf.k = k;
                if refactor_column(
                    sym,
                    &self.col_ptr,
                    &self.row_idx,
                    &self.csc_vals,
                    &self.lx,
                    &mut self.work,
                    &mut buf,
                )
                .is_err()
                {
                    self.work.fill(0.0);
                    return Err(NumericDegraded);
                }
                write_column(sym, &mut self.lx, &mut self.ux, &mut self.udiag, &buf);
            }
            return Ok(());
        }
        // Level-scheduled parallel refactor: within one level every
        // column's dependencies are already final, so levels narrow
        // enough to not amortize a spawn run sequentially and wide ones
        // (the independent cell blocks of a CIM row) fan out.
        for lev in 0..sym.levels.len() {
            let cols = &sym.levels[lev];
            if cols.len() < PAR_MIN_WIDTH {
                for &k in cols {
                    buf.k = k;
                    if refactor_column(
                        sym,
                        &self.col_ptr,
                        &self.row_idx,
                        &self.csc_vals,
                        &self.lx,
                        &mut self.work,
                        &mut buf,
                    )
                    .is_err()
                    {
                        self.work.fill(0.0);
                        return Err(NumericDegraded);
                    }
                    write_column(sym, &mut self.lx, &mut self.ux, &mut self.udiag, &buf);
                }
                continue;
            }
            let workers = threads.min(cols.len());
            let chunk = cols.len().div_ceil(workers);
            let (level_results, degraded) = {
                let lx_ref: &Vec<f64> = &self.lx;
                let col_ptr = &self.col_ptr;
                let row_idx = &self.row_idx;
                let csc_vals = &self.csc_vals;
                std::thread::scope(|scope| {
                    let mut handles = Vec::with_capacity(workers);
                    for part in cols.chunks(chunk) {
                        handles.push(scope.spawn(move || {
                            let mut x = vec![0.0; n];
                            let mut out = Vec::with_capacity(part.len());
                            for &k in part {
                                let mut cv = ColumnValues {
                                    k,
                                    diag: 0.0,
                                    ux: Vec::new(),
                                    lx: Vec::new(),
                                };
                                if refactor_column(
                                    sym, col_ptr, row_idx, csc_vals, lx_ref, &mut x, &mut cv,
                                )
                                .is_err()
                                {
                                    return Err(NumericDegraded);
                                }
                                out.push(cv);
                            }
                            Ok(out)
                        }));
                    }
                    let mut all = Vec::with_capacity(cols.len());
                    let mut failed = false;
                    for h in handles {
                        match h.join() {
                            Ok(Ok(part)) => all.extend(part),
                            Ok(Err(NumericDegraded)) => failed = true,
                            Err(payload) => std::panic::resume_unwind(payload),
                        }
                    }
                    (all, failed)
                })
            };
            if degraded {
                return Err(NumericDegraded);
            }
            for cv in &level_results {
                write_column(sym, &mut self.lx, &mut self.ux, &mut self.udiag, cv);
            }
        }
        Ok(())
    }

    /// Forward/back triangular solve through the stored factors.
    fn lu_solve(&mut self, b: &[f64], out: &mut Vec<f64>) {
        let Some(sym) = &self.sym else {
            out.clear();
            out.resize(self.n, 0.0);
            return;
        };
        let n = self.n;
        self.fwd.clear();
        self.fwd.extend_from_slice(b);
        for k in 0..n {
            let yk = self.fwd[sym.pivot_row[k]];
            if yk != 0.0 {
                for p in sym.lp[k]..sym.lp[k + 1] {
                    self.fwd[sym.li[p]] -= self.lx[p] * yk;
                }
            }
        }
        self.y.clear();
        self.y.reserve(n);
        for k in 0..n {
            self.y.push(self.fwd[sym.pivot_row[k]]);
        }
        out.clear();
        out.resize(n, 0.0);
        for k in (0..n).rev() {
            let zk = self.y[k] / self.udiag[k];
            out[sym.q[k]] = zk;
            for p in sym.up[k]..sym.up[k + 1] {
                self.y[sym.ui[p]] -= self.ux[p] * zk;
            }
        }
    }
}

/// The shared numeric core of the refactorization: computes the `U`
/// values, `L` values, and pivot of one column into `cv`, using `x` as
/// a dense scatter buffer (all-zero on entry and on exit). Fails when
/// the reused pivot has degraded below [`REFACTOR_TOL`] of its column
/// maximum (or is non-finite).
fn refactor_column(
    sym: &Symbolic,
    col_ptr: &[usize],
    row_idx: &[usize],
    csc_vals: &[f64],
    lx_all: &[f64],
    x: &mut [f64],
    cv: &mut ColumnValues,
) -> Result<(), NumericDegraded> {
    let k = cv.k;
    let col = sym.q[k];
    for p in col_ptr[col]..col_ptr[col + 1] {
        x[row_idx[p]] = csc_vals[p];
    }
    cv.ux.clear();
    for p in sym.up[k]..sym.up[k + 1] {
        let i = sym.ui[p];
        let xv = x[sym.pivot_row[i]];
        cv.ux.push(xv);
        if xv != 0.0 {
            for p2 in sym.lp[i]..sym.lp[i + 1] {
                x[sym.li[p2]] -= lx_all[p2] * xv;
            }
        }
    }
    let pr = sym.pivot_row[k];
    let piv = x[pr];
    let mut colmax = piv.abs();
    for p2 in sym.lp[k]..sym.lp[k + 1] {
        colmax = colmax.max(x[sym.li[p2]].abs());
    }
    let ok = piv.is_finite()
        && colmax.is_finite()
        && piv.abs() >= 1e-300
        && piv.abs() >= REFACTOR_TOL * colmax;
    if ok {
        cv.diag = piv;
        cv.lx.clear();
        for p2 in sym.lp[k]..sym.lp[k + 1] {
            cv.lx.push(x[sym.li[p2]] / piv);
        }
    }
    // Restore the all-zero scatter invariant: the touched rows are
    // exactly the column's pattern (U pivot rows, L rows, the pivot).
    for p in sym.up[k]..sym.up[k + 1] {
        x[sym.pivot_row[sym.ui[p]]] = 0.0;
    }
    for p2 in sym.lp[k]..sym.lp[k + 1] {
        x[sym.li[p2]] = 0.0;
    }
    x[pr] = 0.0;
    if ok {
        Ok(())
    } else {
        Err(NumericDegraded)
    }
}

/// Writes one column's refactored values back into the shared factor
/// arrays (disjoint ranges per column, so any write order is fine).
fn write_column(
    sym: &Symbolic,
    lx: &mut [f64],
    ux: &mut [f64],
    udiag: &mut [f64],
    cv: &ColumnValues,
) {
    let k = cv.k;
    udiag[k] = cv.diag;
    ux[sym.up[k]..sym.up[k + 1]].copy_from_slice(&cv.ux);
    lx[sym.lp[k]..sym.lp[k + 1]].copy_from_slice(&cv.lx);
}

impl LinearSystem for SparseLu {
    fn dim(&self) -> usize {
        self.n
    }

    fn clear(&mut self) {
        self.values.fill(0.0);
    }

    #[inline]
    fn add(&mut self, row: usize, col: usize, value: f64) {
        let key = (row as u32, col as u32);
        match self.slot_of.get(&key) {
            Some(&slot) => self.values[slot as usize] += value,
            None => {
                if self.sealed {
                    // A stamp at a new position means the topology
                    // changed: the pattern grows (never shrinks — stale
                    // entries stay as structural zeros) and the symbolic
                    // analysis is invalidated.
                    self.sealed = false;
                    self.sym = None;
                }
                let slot = self.coords.len() as u32;
                self.slot_of.insert(key, slot);
                self.coords.push(key);
                self.values.push(value);
            }
        }
    }

    fn solve_into(
        &mut self,
        b: &[f64],
        out: &mut Vec<f64>,
        tele: &Telemetry,
    ) -> Result<SolveInfo, SpiceError> {
        assert_eq!(b.len(), self.n);
        if !self.sealed {
            self.seal();
        }
        for (slot, &v) in self.values.iter().enumerate() {
            self.csc_vals[self.csc_of_slot[slot]] = v;
        }
        let mut symbolic = false;
        if self.sym.is_none() {
            let _span = tele.span("spice.solver.symbolic");
            self.factor_fresh()?;
            symbolic = true;
            self.symbolic_count += 1;
        } else if self.refactor().is_err() {
            // Pivot degradation: the values have drifted too far from
            // the ones the pivot sequence was chosen for. Re-analyze.
            self.sym = None;
            let _span = tele.span("spice.solver.symbolic");
            self.factor_fresh()?;
            symbolic = true;
            self.symbolic_count += 1;
        }
        self.numeric_count += 1;
        self.lu_solve(b, out);
        Ok(SolveInfo {
            backend: SolverBackend::Sparse,
            symbolic,
        })
    }

    fn matvec_into(&mut self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.n);
        y.fill(0.0);
        for (slot, &(r, c)) in self.coords.iter().enumerate() {
            y[r as usize] += self.values[slot] * x[c as usize];
        }
    }

    fn resolve_into(&mut self, b: &[f64], out: &mut Vec<f64>) {
        assert_eq!(b.len(), self.n);
        self.lu_solve(b, out);
    }

    fn solve_transposed_into(&mut self, c: &[f64], out: &mut Vec<f64>) {
        assert_eq!(c.len(), self.n);
        let Some(sym) = &self.sym else {
            out.clear();
            out.resize(self.n, 0.0);
            return;
        };
        let n = self.n;
        // Uᵀ·t = Qᵀ·c, ascending: column k of U references only
        // earlier pivot positions, so row k of Uᵀ is closed over t[..k].
        self.y.clear();
        self.y.reserve(n);
        for k in 0..n {
            let mut tk = c[sym.q[k]];
            for p in sym.up[k]..sym.up[k + 1] {
                tk -= self.ux[p] * self.y[sym.ui[p]];
            }
            self.y.push(tk / self.udiag[k]);
        }
        // Lᵀ·w = t, descending: the rows of column k of L become
        // pivotal only at later steps, so they are already solved.
        out.clear();
        out.resize(n, 0.0);
        for k in (0..n).rev() {
            let mut wk = self.y[k];
            for p in sym.lp[k]..sym.lp[k + 1] {
                wk -= self.lx[p] * out[sym.li[p]];
            }
            out[sym.pivot_row[k]] = wk;
        }
    }

    fn inf_norm(&mut self) -> f64 {
        self.fwd.clear();
        self.fwd.resize(self.n, 0.0);
        for (slot, &(r, _)) in self.coords.iter().enumerate() {
            self.fwd[r as usize] += self.values[slot].abs();
        }
        self.fwd.iter().fold(0.0f64, |a, &v| a.max(v))
    }

    fn one_norm(&mut self) -> f64 {
        self.fwd.clear();
        self.fwd.resize(self.n, 0.0);
        for (slot, &(_, c)) in self.coords.iter().enumerate() {
            self.fwd[c as usize] += self.values[slot].abs();
        }
        self.fwd.iter().fold(0.0f64, |a, &v| a.max(v))
    }

    fn pivot_growth(&self) -> f64 {
        if self.sym.is_none() {
            return 1.0;
        }
        let denom = self.values.iter().fold(0.0f64, |a, &v| a.max(v.abs()));
        if denom <= 0.0 {
            return 1.0;
        }
        let num = self
            .udiag
            .iter()
            .chain(self.ux.iter())
            .fold(0.0f64, |a, &v| a.max(v.abs()));
        num / denom
    }

    fn backend(&self) -> SolverBackend {
        SolverBackend::Sparse
    }
}

/// Greedy minimum-degree ordering on the pattern of `A + Aᵀ`
/// (clique-fill elimination model, smallest-index tie-break). Naive
/// `O(n²)` selection — the ordering runs once per topology and the
/// systems it serves top out at a few thousand unknowns.
fn min_degree(n: usize, col_ptr: &[usize], row_idx: &[usize]) -> Vec<usize> {
    use std::collections::HashSet;
    let mut adj: Vec<HashSet<usize>> = vec![HashSet::new(); n];
    for col in 0..n {
        for &row in &row_idx[col_ptr[col]..col_ptr[col + 1]] {
            if row != col {
                adj[row].insert(col);
                adj[col].insert(row);
            }
        }
    }
    let mut alive = vec![true; n];
    let mut order = Vec::with_capacity(n);
    for _ in 0..n {
        let mut best = usize::MAX;
        let mut best_deg = usize::MAX;
        for (v, ok) in alive.iter().enumerate() {
            if *ok && adj[v].len() < best_deg {
                best_deg = adj[v].len();
                best = v;
            }
        }
        let neigh: Vec<usize> = adj[best].iter().copied().collect();
        for &u in &neigh {
            adj[u].remove(&best);
        }
        for i in 0..neigh.len() {
            for j in (i + 1)..neigh.len() {
                let (u, v) = (neigh[i], neigh[j]);
                if adj[u].insert(v) {
                    adj[v].insert(u);
                }
            }
        }
        adj[best].clear();
        alive[best] = false;
        order.push(best);
    }
    order
}

/// The backend actually held by a [`crate::Workspace`], selected from a
/// [`SolverConfig`] and the system size.
#[derive(Debug, Clone)]
pub(crate) enum SolverState {
    Dense(DenseLu),
    Sparse(Box<SparseLu>),
}

impl Default for SolverState {
    fn default() -> Self {
        SolverState::Dense(DenseLu::default())
    }
}

impl SolverState {
    /// Builds the backend `config` selects for an `n`-unknown system.
    pub(crate) fn for_config(n: usize, config: SolverConfig) -> SolverState {
        if config.wants_sparse(n) {
            SolverState::Sparse(Box::new(
                SparseLu::with_dim(n)
                    .with_ordering(config.ordering)
                    .with_parallel_blocks(config.parallel_blocks),
            ))
        } else {
            SolverState::Dense(DenseLu::with_dim(n))
        }
    }

    /// Whether this state matches what `config` would select for `n`.
    pub(crate) fn matches(&self, n: usize, config: SolverConfig) -> bool {
        match self {
            SolverState::Dense(d) => d.dim() == n && !config.wants_sparse(n),
            SolverState::Sparse(s) => {
                s.dim() == n
                    && config.wants_sparse(n)
                    && s.ordering == config.ordering
                    && s.parallel == config.parallel_blocks
            }
        }
    }

    /// The sparse backend, when active (for tests and diagnostics).
    pub(crate) fn as_sparse(&self) -> Option<&SparseLu> {
        match self {
            SolverState::Sparse(s) => Some(s),
            SolverState::Dense(_) => None,
        }
    }
}

impl LinearSystem for SolverState {
    fn dim(&self) -> usize {
        match self {
            SolverState::Dense(d) => d.dim(),
            SolverState::Sparse(s) => s.dim(),
        }
    }

    fn clear(&mut self) {
        match self {
            SolverState::Dense(d) => d.clear(),
            SolverState::Sparse(s) => s.clear(),
        }
    }

    #[inline]
    fn add(&mut self, row: usize, col: usize, value: f64) {
        match self {
            SolverState::Dense(d) => d.add(row, col, value),
            SolverState::Sparse(s) => s.add(row, col, value),
        }
    }

    fn solve_into(
        &mut self,
        b: &[f64],
        out: &mut Vec<f64>,
        tele: &Telemetry,
    ) -> Result<SolveInfo, SpiceError> {
        match self {
            SolverState::Dense(d) => d.solve_into(b, out, tele),
            SolverState::Sparse(s) => s.solve_into(b, out, tele),
        }
    }

    fn matvec_into(&mut self, x: &[f64], y: &mut [f64]) {
        match self {
            SolverState::Dense(d) => d.matvec_into(x, y),
            SolverState::Sparse(s) => s.matvec_into(x, y),
        }
    }

    fn resolve_into(&mut self, b: &[f64], out: &mut Vec<f64>) {
        match self {
            SolverState::Dense(d) => d.resolve_into(b, out),
            SolverState::Sparse(s) => s.resolve_into(b, out),
        }
    }

    fn solve_transposed_into(&mut self, c: &[f64], out: &mut Vec<f64>) {
        match self {
            SolverState::Dense(d) => d.solve_transposed_into(c, out),
            SolverState::Sparse(s) => s.solve_transposed_into(c, out),
        }
    }

    fn inf_norm(&mut self) -> f64 {
        match self {
            SolverState::Dense(d) => d.inf_norm(),
            SolverState::Sparse(s) => s.inf_norm(),
        }
    }

    fn one_norm(&mut self) -> f64 {
        match self {
            SolverState::Dense(d) => d.one_norm(),
            SolverState::Sparse(s) => s.one_norm(),
        }
    }

    fn pivot_growth(&self) -> f64 {
        match self {
            SolverState::Dense(d) => d.pivot_growth(),
            SolverState::Sparse(s) => s.pivot_growth(),
        }
    }

    fn backend(&self) -> SolverBackend {
        match self {
            SolverState::Dense(d) => d.backend(),
            SolverState::Sparse(s) => s.backend(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tele() -> Telemetry {
        Telemetry::off()
    }

    /// Stamps the same dense entries into both backends.
    fn stamp_both(entries: &[(usize, usize, f64)], n: usize) -> (DenseLu, SparseLu) {
        let mut d = DenseLu::with_dim(n);
        let mut s = SparseLu::with_dim(n);
        for &(r, c, v) in entries {
            d.add(r, c, v);
            s.add(r, c, v);
        }
        (d, s)
    }

    fn max_dv(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn sparse_matches_dense_on_a_known_system() {
        // A = [[2,1,0],[1,3,1],[0,1,4]], b = [4,10,14] → x = [1,2,3].
        let entries = [
            (0, 0, 2.0),
            (0, 1, 1.0),
            (1, 0, 1.0),
            (1, 1, 3.0),
            (1, 2, 1.0),
            (2, 1, 1.0),
            (2, 2, 4.0),
        ];
        let (mut d, mut s) = stamp_both(&entries, 3);
        let b = [4.0, 10.0, 14.0];
        let (mut xd, mut xs) = (Vec::new(), Vec::new());
        d.solve_into(&b, &mut xd, &tele()).unwrap();
        let info = s.solve_into(&b, &mut xs, &tele()).unwrap();
        assert_eq!(info.backend, SolverBackend::Sparse);
        assert!(info.symbolic);
        assert!(max_dv(&xd, &xs) < 1e-12, "{xd:?} vs {xs:?}");
        for (got, want) in xs.iter().zip([1.0, 2.0, 3.0]) {
            assert!((got - want).abs() < 1e-12);
        }
    }

    #[test]
    fn sparse_pivots_through_a_zero_diagonal() {
        // MNA voltage-source shape: zero diagonal on the branch row.
        let entries = [(0, 1, 1.0), (1, 0, 1.0), (0, 0, 1e-12)];
        let (mut d, mut s) = stamp_both(&entries, 2);
        let b = [5.0, 7.0];
        let (mut xd, mut xs) = (Vec::new(), Vec::new());
        d.solve_into(&b, &mut xd, &tele()).unwrap();
        s.solve_into(&b, &mut xs, &tele()).unwrap();
        assert!(max_dv(&xd, &xs) < 1e-10, "{xd:?} vs {xs:?}");
    }

    #[test]
    fn symbolic_analysis_is_reused_across_value_changes() {
        let mut s = SparseLu::with_dim(3);
        let pattern = [
            (0, 0, 2.0),
            (0, 1, -1.0),
            (1, 0, -1.0),
            (1, 1, 2.0),
            (1, 2, -1.0),
            (2, 1, -1.0),
            (2, 2, 2.0),
        ];
        let mut x = Vec::new();
        for round in 1..=10 {
            s.clear();
            for &(r, c, v) in &pattern {
                s.add(r, c, v * round as f64);
            }
            let info = s.solve_into(&[1.0, 0.0, 1.0], &mut x, &tele()).unwrap();
            assert_eq!(info.symbolic, round == 1, "round {round}");
        }
        assert_eq!(s.symbolic_analyses(), 1);
        assert_eq!(s.numeric_factorizations(), 10);
    }

    #[test]
    fn refactor_reproduces_the_fresh_factorization() {
        // Same values solved twice: the numeric-only refactorization
        // must give the same answer as the fused first pass.
        let entries = [
            (0, 0, 3.0),
            (0, 2, 1.0),
            (1, 1, 4.0),
            (1, 0, -2.0),
            (2, 2, 5.0),
            (2, 1, 0.5),
        ];
        let mut s = SparseLu::with_dim(3);
        for &(r, c, v) in &entries {
            s.add(r, c, v);
        }
        let b = [1.0, 2.0, 3.0];
        let mut first = Vec::new();
        s.solve_into(&b, &mut first, &tele()).unwrap();
        s.clear();
        for &(r, c, v) in &entries {
            s.add(r, c, v);
        }
        let mut second = Vec::new();
        let info = s.solve_into(&b, &mut second, &tele()).unwrap();
        assert!(!info.symbolic);
        assert!(max_dv(&first, &second) < 1e-14, "{first:?} vs {second:?}");
    }

    #[test]
    fn new_pattern_entry_invalidates_the_symbolic_analysis() {
        let mut s = SparseLu::with_dim(2);
        s.add(0, 0, 1.0);
        s.add(1, 1, 1.0);
        let mut x = Vec::new();
        s.solve_into(&[1.0, 2.0], &mut x, &tele()).unwrap();
        assert_eq!(s.symbolic_analyses(), 1);
        // A new off-diagonal coupling appears: topology change.
        s.clear();
        s.add(0, 0, 2.0);
        s.add(1, 1, 2.0);
        s.add(0, 1, -1.0);
        let info = s.solve_into(&[1.0, 2.0], &mut x, &tele()).unwrap();
        assert!(info.symbolic);
        assert_eq!(s.symbolic_analyses(), 2);
    }

    #[test]
    fn singular_sparse_system_is_reported() {
        let mut s = SparseLu::with_dim(2);
        s.add(0, 0, 1.0);
        s.add(0, 1, 2.0);
        s.add(1, 0, 2.0);
        s.add(1, 1, 4.0);
        let mut x = Vec::new();
        assert!(matches!(
            s.solve_into(&[1.0, 2.0], &mut x, &tele()),
            Err(SpiceError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn randomized_parity_dense_vs_sparse() {
        // Deterministic pseudo-random sparse systems across sizes and
        // both orderings; sparse must track dense to 1e-10 max-norm.
        let mut seed = 0x5eed5eedu64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for &n in &[5usize, 17, 40] {
            for &ordering in &[FillOrdering::MinDegree, FillOrdering::Natural] {
                let mut entries = Vec::new();
                for r in 0..n {
                    entries.push((r, r, 4.0 + next()));
                    for _ in 0..3 {
                        let c = ((next().abs() * n as f64) as usize).min(n - 1);
                        entries.push((r, c, next()));
                    }
                }
                let mut d = DenseLu::with_dim(n);
                let mut s = SparseLu::with_dim(n).with_ordering(ordering);
                for &(r, c, v) in &entries {
                    d.add(r, c, v);
                    s.add(r, c, v);
                }
                let b: Vec<f64> = (0..n).map(|_| next()).collect();
                let (mut xd, mut xs) = (Vec::new(), Vec::new());
                d.solve_into(&b, &mut xd, &tele()).unwrap();
                s.solve_into(&b, &mut xs, &tele()).unwrap();
                let dv = max_dv(&xd, &xs);
                assert!(dv < 1e-10, "n={n} {ordering:?}: max dv {dv}");
            }
        }
    }

    #[test]
    fn parallel_refactor_is_bitwise_equal_to_sequential() {
        // A bordered-block-diagonal system shaped like a CIM row: many
        // independent 2×2 blocks plus one shared border unknown.
        let blocks = 40usize;
        let n = 2 * blocks + 1;
        let border = n - 1;
        let build = |parallel: bool| {
            let mut s = SparseLu::with_dim(n).with_parallel_blocks(parallel);
            for blk in 0..blocks {
                let a = 2 * blk;
                let b = a + 1;
                s.add(a, a, 3.0 + blk as f64 * 0.01);
                s.add(a, b, -1.0);
                s.add(b, a, -1.0);
                s.add(b, b, 2.5);
                s.add(b, border, -0.5);
                s.add(border, b, -0.5);
            }
            s.add(border, border, blocks as f64);
            s
        };
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let solve_twice = |mut s: SparseLu| {
            let mut first = Vec::new();
            s.solve_into(&b, &mut first, &tele()).unwrap();
            // Second solve exercises the refactor path.
            let mut second = Vec::new();
            s.solve_into(&b, &mut second, &tele()).unwrap();
            (first, second)
        };
        let (seq1, seq2) = solve_twice(build(false));
        let (par1, par2) = solve_twice(build(true));
        assert_eq!(seq1, par1, "first (symbolic) solves must agree");
        assert_eq!(seq2, par2, "refactor solves must be bitwise equal");
    }

    #[test]
    fn min_degree_is_a_permutation_and_prefers_leaves() {
        // Star graph: the hub must be eliminated last.
        let n = 6;
        let mut s = SparseLu::with_dim(n);
        for leaf in 1..n {
            s.add(0, leaf, -1.0);
            s.add(leaf, 0, -1.0);
            s.add(leaf, leaf, 2.0);
        }
        s.add(0, 0, 5.0);
        s.seal();
        let order = min_degree(n, &s.col_ptr, &s.row_idx);
        let mut seen = vec![false; n];
        for &v in &order {
            assert!(!seen[v]);
            seen[v] = true;
        }
        // The hub stays until the end: only once enough leaves are gone
        // does its degree tie with a leaf's (and then the fill of either
        // choice is zero, so either may go first).
        let hub_pos = order.iter().position(|&v| v == 0);
        assert!(
            hub_pos >= Some(n - 2),
            "hub eliminated too early: {order:?}"
        );
    }

    #[test]
    fn auto_threshold_selects_backends() {
        let small = SolverState::for_config(10, SolverConfig::auto());
        assert_eq!(small.backend(), SolverBackend::Dense);
        let large =
            SolverState::for_config(SolverConfig::AUTO_SPARSE_THRESHOLD, SolverConfig::auto());
        assert_eq!(large.backend(), SolverBackend::Sparse);
        let forced = SolverState::for_config(2, SolverConfig::sparse());
        assert_eq!(forced.backend(), SolverBackend::Sparse);
        assert!(forced.matches(2, SolverConfig::sparse()));
        assert!(!forced.matches(2, SolverConfig::dense()));
        assert!(!forced.matches(3, SolverConfig::sparse()));
    }

    #[test]
    fn dense_backend_reports_no_symbolic_work() {
        let mut d = DenseLu::with_dim(1);
        d.add(0, 0, 2.0);
        let mut x = Vec::new();
        let info = d.solve_into(&[4.0], &mut x, &tele()).unwrap();
        assert_eq!(info.backend, SolverBackend::Dense);
        assert!(!info.symbolic);
        assert_eq!(x, vec![2.0]);
    }

    /// The system used by the health-primitive tests below:
    /// A = [[2,1,0],[1,3,1],[0,1,4]], b = [4,10,14] → x = [1,2,3].
    fn health_entries() -> Vec<(usize, usize, f64)> {
        vec![
            (0, 0, 2.0),
            (0, 1, 1.0),
            (1, 0, 1.0),
            (1, 1, 3.0),
            (1, 2, 1.0),
            (2, 1, 1.0),
            (2, 2, 4.0),
        ]
    }

    fn check_health_primitives(sys: &mut dyn LinearSystem) {
        let b = [4.0, 10.0, 14.0];
        let mut x = Vec::new();
        sys.solve_into(&b, &mut x, &tele()).unwrap();

        // matvec over the stamped values reproduces b (the stamped
        // matrix must survive the factorization on both backends).
        let mut y = vec![0.0; 3];
        sys.matvec_into(&x, &mut y);
        for (got, want) in y.iter().zip(b) {
            assert!((got - want).abs() < 1e-12, "{y:?}");
        }

        // resolve through the stored factors replays the solution
        // bitwise: identical factors, identical triangular solves.
        let mut again = Vec::new();
        sys.resolve_into(&b, &mut again);
        assert_eq!(x, again);

        // The transposed solve satisfies Aᵀ·w = c.
        let c = [1.0, -2.0, 0.5];
        let mut w = Vec::new();
        sys.solve_transposed_into(&c, &mut w);
        let a = [[2.0, 1.0, 0.0], [1.0, 3.0, 1.0], [0.0, 1.0, 4.0]];
        for (k, &ck) in c.iter().enumerate() {
            let got: f64 = (0..3).map(|r| a[r][k] * w[r]).sum();
            assert!((got - ck).abs() < 1e-12, "col {k}: {got} vs {ck}");
        }

        // Norms of the stamped matrix, and a sane pivot growth.
        assert!((sys.inf_norm() - 5.0).abs() < 1e-15);
        assert!((sys.one_norm() - 5.0).abs() < 1e-15);
        let growth = sys.pivot_growth();
        assert!(growth.is_finite() && growth > 0.0, "growth {growth}");
    }

    #[test]
    fn dense_health_primitives() {
        let mut d = DenseLu::with_dim(3);
        for (r, c, v) in health_entries() {
            d.add(r, c, v);
        }
        check_health_primitives(&mut d);
    }

    #[test]
    fn sparse_health_primitives() {
        for &ordering in &[FillOrdering::MinDegree, FillOrdering::Natural] {
            let mut s = SparseLu::with_dim(3).with_ordering(ordering);
            for (r, c, v) in health_entries() {
                s.add(r, c, v);
            }
            check_health_primitives(&mut s);
        }
    }

    #[test]
    fn unfactored_backends_report_neutral_health() {
        let mut d = DenseLu::with_dim(2);
        d.add(0, 0, 1.0);
        let mut s = SparseLu::with_dim(2);
        s.add(0, 0, 1.0);
        assert_eq!(d.pivot_growth(), 1.0);
        assert_eq!(s.pivot_growth(), 1.0);
        let mut out = Vec::new();
        d.resolve_into(&[1.0, 2.0], &mut out);
        assert_eq!(out, vec![0.0, 0.0]);
        s.solve_transposed_into(&[1.0, 2.0], &mut out);
        assert_eq!(out, vec![0.0, 0.0]);
    }

    #[test]
    fn invalidated_symbolic_analysis_reruns_on_the_next_solve() {
        let mut s = SparseLu::with_dim(2);
        s.add(0, 0, 2.0);
        s.add(1, 1, 3.0);
        let mut x = Vec::new();
        s.solve_into(&[2.0, 3.0], &mut x, &tele()).unwrap();
        assert_eq!(s.symbolic_analyses(), 1);
        s.invalidate_symbolic();
        let info = s.solve_into(&[2.0, 3.0], &mut x, &tele()).unwrap();
        assert!(info.symbolic);
        assert_eq!(s.symbolic_analyses(), 2);
        assert_eq!(x, vec![1.0, 1.0]);
    }
}
