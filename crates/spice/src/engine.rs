//! The reusable simulation engine: solver workspaces and warm-started
//! repeated analyses.
//!
//! A single DC or transient solve allocates its system matrix and
//! vectors once, which is fine. Batched workloads — a 64-point `I–V`
//! sweep, a 100-sample Monte-Carlo run, a bit-serial neural-network
//! inference issuing thousands of MAC reads — repeat near-identical
//! solves where the per-solve allocations and cold Newton starts
//! dominate. This module factors both out:
//!
//! * [`Workspace`] owns the LU matrix, right-hand side, permutation and
//!   solution buffers, reused across every solve that goes through it.
//! * [`SimEngine`] owns a [`Workspace`] plus the last operating point,
//!   and seeds each new solve from the previous one (falling back to a
//!   cold start if the warm-started iteration fails to converge).
//!
//! Both are deliberately dumb containers: all numerical behavior lives
//! in [`crate::DcAnalysis`] / [`crate::TransientAnalysis`], and a solve
//! routed through a fresh workspace is bitwise identical to the
//! allocating path.

use crate::dc::{DcAnalysis, OperatingPoint};
use crate::health::{HealthPolicy, SolveQuality};
use crate::mna::NewtonOptions;
use crate::netlist::Circuit;
use crate::rescue::RescuePolicy;
use crate::solver::{FillOrdering, LinearSystem, SolverConfig, SolverKind, SolverState};
use crate::transient::{AdaptiveOptions, Integrator, TransientAnalysis, TransientResult};
use crate::{Budget, SpiceError};
use ferrocim_telemetry::{DegradeStageKind, SolverBackend, Telemetry};
use ferrocim_units::{Celsius, Second};

/// Reusable solver state: the linear-system backend (dense matrix or
/// sparse slot table + factors, selected by a [`SolverConfig`]) plus the
/// right-hand-side and solution buffers shared by every solve routed
/// through it.
///
/// A `Workspace` adapts itself to whatever system size it is handed, so
/// one instance can serve circuits of different sizes back to back; the
/// buffers only reallocate when the size or the selected backend
/// actually changes. Keeping the backend alive across solves is what
/// amortizes the sparse symbolic analysis over a whole Newton
/// iteration / sweep / Monte-Carlo campaign. (Reusing one workspace
/// across *same-size but different* topologies is safe — the sparse
/// pattern grows into a superset and re-analyzes — but wastes the
/// reuse; give unrelated circuits their own workspaces.)
#[derive(Debug, Clone, Default)]
pub struct Workspace {
    /// The linear-system backend stamped by `assemble` and factored by
    /// each Newton iteration.
    pub(crate) system: SolverState,
    /// Right-hand side stamped alongside `system`.
    pub(crate) z: Vec<f64>,
    /// Solution buffer filled by the backend's solve.
    pub(crate) x_new: Vec<f64>,
    /// Residual scratch for solve certification (`b − A·x`).
    pub(crate) resid: Vec<f64>,
    /// Correction scratch for iterative refinement.
    pub(crate) corr: Vec<f64>,
    config: SolverConfig,
    pub(crate) size: usize,
    /// Current rung on the solver degradation ladder (sticky across
    /// solves until the size changes or the config is replaced):
    /// 0 = as configured, 1 = fresh symbolic analysis forced,
    /// 2 = alternate fill ordering, 3 = dense fallback.
    degrade: u8,
    /// Quality verdict of the most recent certified solve.
    pub(crate) last_quality: Option<SolveQuality>,
}

impl Workspace {
    /// Creates an empty workspace with the default
    /// [`SolverConfig::auto`] backend selection; buffers are sized
    /// lazily on first use.
    pub fn new() -> Self {
        Workspace::default()
    }

    /// Creates an empty workspace that selects its backend per
    /// `config`.
    pub fn with_solver(config: SolverConfig) -> Self {
        Workspace {
            config,
            ..Workspace::default()
        }
    }

    /// Creates a workspace pre-sized for an `n`-unknown system.
    pub fn with_size(n: usize) -> Self {
        let mut ws = Workspace::new();
        ws.ensure_size(n);
        ws
    }

    /// The system size the buffers are currently shaped for.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The solver configuration backends are selected from.
    pub fn solver_config(&self) -> SolverConfig {
        self.config
    }

    /// Changes the solver configuration. The backend is rebuilt on the
    /// next solve if the new configuration selects differently; a
    /// matching configuration is a no-op, preserving any sparse
    /// symbolic analysis. A genuinely different configuration also
    /// resets the degradation ladder — the caller asked for a fresh
    /// selection.
    pub fn set_solver(&mut self, config: SolverConfig) {
        if config != self.config {
            self.degrade = 0;
        }
        self.config = config;
    }

    /// The backend currently selected for the workspace's size.
    pub fn solver_backend(&self) -> SolverBackend {
        self.system.backend()
    }

    /// Symbolic / numeric factorization counts of the sparse backend,
    /// or `None` while the dense backend is active. On a fixed topology
    /// the first count stays at 1 while the second grows with every
    /// Newton iteration — the KLU-style reuse this workspace exists to
    /// provide.
    pub fn sparse_factor_counts(&self) -> Option<(u64, u64)> {
        self.system
            .as_sparse()
            .map(|s| (s.symbolic_analyses(), s.numeric_factorizations()))
    }

    /// Reshapes the buffers for an `n`-unknown system, rebuilding the
    /// backend when the size or the configured selection changed.
    /// No-op when everything already matches.
    pub(crate) fn ensure_size(&mut self, n: usize) {
        if self.size != n {
            // A new system size means a new circuit: degradation state
            // learned on the old one does not transfer.
            self.degrade = 0;
        }
        let effective = self.effective_config_for(n);
        if !self.system.matches(n, effective) {
            self.system = SolverState::for_config(n, effective);
        }
        if self.size == n {
            return;
        }
        self.z.clear();
        self.z.resize(n, 0.0);
        self.x_new.clear();
        self.x_new.reserve(n);
        self.size = n;
    }

    /// The current rung on the solver degradation ladder (0 = the
    /// configured backend, 3 = dense fallback).
    pub fn degrade_level(&self) -> u8 {
        self.degrade
    }

    /// Quality verdict of the most recent certified solve routed
    /// through this workspace, or `None` when certification is off (or
    /// before the first solve).
    pub fn last_solve_quality(&self) -> Option<SolveQuality> {
        self.last_quality
    }

    /// The configuration the backend is actually built from at the
    /// current degradation rung. Rungs 0 and 1 keep the configured
    /// selection (rung 1 acts by discarding the symbolic analysis, not
    /// by reconfiguring); rung 2 flips the sparse fill ordering; rung 3
    /// abandons sparse for the dense backend.
    fn effective_config_for(&self, n: usize) -> SolverConfig {
        if !self.config.wants_sparse(n) {
            return self.config;
        }
        match self.degrade {
            0 | 1 => self.config,
            2 => {
                let flipped = match self.config.ordering {
                    FillOrdering::MinDegree => FillOrdering::Natural,
                    FillOrdering::Natural => FillOrdering::MinDegree,
                };
                SolverConfig {
                    kind: SolverKind::Sparse,
                    ordering: flipped,
                    ..self.config
                }
            }
            _ => SolverConfig::dense(),
        }
    }

    /// Escalates one rung down the degradation ladder, rebuilding or
    /// invalidating the backend so the next assembly runs on it.
    /// Returns the stage entered, or `None` when the ladder is
    /// exhausted (also immediately for a configured-dense selection:
    /// dense LU with partial pivoting has no cheaper fallback).
    pub(crate) fn escalate_degrade(&mut self) -> Option<DegradeStageKind> {
        if !self.config.wants_sparse(self.size) {
            return None;
        }
        match self.degrade {
            0 => {
                self.degrade = 1;
                if let SolverState::Sparse(s) = &mut self.system {
                    s.invalidate_symbolic();
                }
                Some(DegradeStageKind::FreshSymbolic)
            }
            1 => {
                self.degrade = 2;
                self.system =
                    SolverState::for_config(self.size, self.effective_config_for(self.size));
                Some(DegradeStageKind::AlternateOrdering)
            }
            2 => {
                self.degrade = 3;
                self.system =
                    SolverState::for_config(self.size, self.effective_config_for(self.size));
                Some(DegradeStageKind::DenseFallback)
            }
            _ => None,
        }
    }
}

/// A warm-starting simulation engine for repeated solves on the same
/// (or similar) circuits.
///
/// The engine carries a [`Workspace`] so repeated solves stop paying
/// per-solve allocation, and remembers the last operating point so each
/// DC solve starts from the previous solution — the continuation
/// strategy that makes fine sweeps through exponential subthreshold
/// regions converge in a handful of Newton iterations. If a warm start
/// fails to converge (the new point is too far from the old one), the
/// engine transparently retries from a cold start before reporting an
/// error.
///
/// # Examples
///
/// ```
/// use ferrocim_spice::{Circuit, Element, NodeId, SimEngine, Waveform};
/// use ferrocim_units::{Celsius, Ohm, Volt};
///
/// # fn main() -> Result<(), ferrocim_spice::SpiceError> {
/// let mut ckt = Circuit::new();
/// let a = ckt.node("a");
/// ckt.add(Element::vdc("V1", a, NodeId::GROUND, Volt(0.0)))?;
/// ckt.add(Element::resistor("R1", a, NodeId::GROUND, Ohm(1e3)))?;
///
/// let mut engine = SimEngine::new().at(Celsius(27.0));
/// for mv in 0..5 {
///     if let Some(Element::VoltageSource { waveform, .. }) = ckt.element_mut("V1") {
///         *waveform = Waveform::dc(Volt(mv as f64 * 0.1));
///     }
///     // Each solve warm-starts from the previous point.
///     let op = engine.dc(&ckt)?;
///     assert!((op.voltage(a).value() - mv as f64 * 0.1).abs() < 1e-6);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct SimEngine {
    temp: Celsius,
    options: NewtonOptions,
    integrator: Integrator,
    rescue: Option<RescuePolicy>,
    budget: Budget,
    telemetry: Telemetry,
    health: HealthPolicy,
    workspace: Workspace,
    last_op: Option<OperatingPoint>,
}

impl SimEngine {
    /// Creates an engine at the default temperature (27 °C).
    pub fn new() -> Self {
        SimEngine {
            temp: Celsius::ROOM,
            ..SimEngine::default()
        }
    }

    /// Sets the simulation temperature (builder style).
    pub fn at(mut self, temp: Celsius) -> Self {
        self.temp = temp;
        self
    }

    /// Overrides the Newton iteration options.
    pub fn with_options(mut self, options: NewtonOptions) -> Self {
        self.options = options;
        self
    }

    /// Selects the transient integration method.
    pub fn with_integrator(mut self, integrator: Integrator) -> Self {
        self.integrator = integrator;
        self
    }

    /// Overrides the convergence-rescue policy used by DC solves. The
    /// default is the full ladder ([`RescuePolicy::default`]); pass
    /// [`RescuePolicy::none`] for fail-fast behaviour.
    pub fn with_rescue(mut self, policy: RescuePolicy) -> Self {
        self.rescue = Some(policy);
        self
    }

    /// Attaches a resource [`Budget`] governing every solve issued
    /// through this engine. An exhausted budget surfaces as
    /// [`SpiceError::BudgetExceeded`] / [`SpiceError::Cancelled`] from
    /// the analysis in flight.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// The budget governing this engine's solves.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// Attaches a telemetry handle forwarded to every DC and transient
    /// analysis issued through this engine, so one recorder observes a
    /// whole warm-started campaign. The default handle is off.
    pub fn with_recorder(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Overrides the numerical-health policy forwarded to every solve
    /// issued through this engine. The default certifies every linear
    /// solve ([`HealthPolicy::default`]); pass [`HealthPolicy::off`]
    /// for the historical uncertified behaviour.
    pub fn with_health(mut self, health: HealthPolicy) -> Self {
        self.health = health;
        self
    }

    /// The health policy forwarded to this engine's analyses.
    pub fn health_policy(&self) -> HealthPolicy {
        self.health
    }

    /// Selects the linear-solver backend for every solve issued through
    /// this engine (applied to the engine's [`Workspace`]). The default
    /// is [`SolverConfig::auto`]: dense for small circuits, sparse from
    /// [`SolverConfig::AUTO_SPARSE_THRESHOLD`] unknowns up.
    pub fn with_solver(mut self, config: SolverConfig) -> Self {
        self.workspace.set_solver(config);
        self
    }

    /// The solver configuration applied to this engine's workspace.
    pub fn solver_config(&self) -> SolverConfig {
        self.workspace.solver_config()
    }

    /// The telemetry handle forwarded to this engine's analyses.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The current simulation temperature.
    pub fn temperature(&self) -> Celsius {
        self.temp
    }

    /// Changes the temperature without discarding the warm-start state —
    /// exactly what a fine temperature sweep wants, since the operating
    /// point moves continuously with temperature.
    pub fn set_temperature(&mut self, temp: Celsius) {
        self.temp = temp;
    }

    /// Drops the remembered operating point, forcing the next solve to
    /// start cold. Call this when switching to an unrelated circuit
    /// topology (a size mismatch is detected automatically, but a
    /// same-size different circuit is not).
    pub fn clear_warm_start(&mut self) {
        self.last_op = None;
    }

    /// The operating point of the most recent successful DC solve.
    pub fn last_operating_point(&self) -> Option<&OperatingPoint> {
        self.last_op.as_ref()
    }

    /// Direct access to the underlying workspace, for callers that mix
    /// engine-driven and hand-built analyses.
    pub fn workspace(&mut self) -> &mut Workspace {
        &mut self.workspace
    }

    /// Solves the DC operating point, warm-started from the previous
    /// solve when one exists.
    ///
    /// # Errors
    ///
    /// * [`SpiceError::NoConvergence`] if Newton iteration fails even
    ///   from a cold start.
    /// * [`SpiceError::SingularMatrix`] for degenerate circuits.
    pub fn dc(&mut self, circuit: &Circuit) -> Result<OperatingPoint, SpiceError> {
        let mut cold = DcAnalysis::new(circuit)
            .at(self.temp)
            .with_options(self.options)
            .with_budget(self.budget.clone())
            .with_recorder(self.telemetry.clone())
            .with_health(self.health);
        if let Some(policy) = &self.rescue {
            cold = cold.with_rescue(policy.clone());
        }
        let op = match &self.last_op {
            Some(prev) => {
                let warm = cold.clone().warm_start(prev);
                match warm.solve_in(&mut self.workspace) {
                    Ok(op) => op,
                    // Continuation fallback: a warm start far from the
                    // new solution can diverge (or blow up) where a cold
                    // start would not. Retry once from zero before
                    // giving up.
                    Err(SpiceError::NoConvergence { .. } | SpiceError::NumericalBlowup { .. }) => {
                        cold.solve_in(&mut self.workspace)?
                    }
                    Err(e) => return Err(e),
                }
            }
            None => cold.solve_in(&mut self.workspace)?,
        };
        self.last_op = Some(op.clone());
        Ok(op)
    }

    /// Runs a transient analysis whose initial condition is the
    /// (warm-started) DC operating point of `circuit`.
    ///
    /// # Errors
    ///
    /// * [`SpiceError::InvalidValue`] for a bad timestep or stop time.
    /// * DC / per-step Newton errors as for [`SimEngine::dc`].
    pub fn transient(
        &mut self,
        circuit: &Circuit,
        dt: Second,
        t_stop: Second,
    ) -> Result<TransientResult, SpiceError> {
        let op = self.dc(circuit)?;
        TransientAnalysis::over(circuit, t_stop)
            .with_fixed_step(dt)
            .at(self.temp)
            .with_options(self.options)
            .with_integrator(self.integrator)
            .with_budget(self.budget.clone())
            .with_recorder(self.telemetry.clone())
            .with_health(self.health)
            .start_from(&op)
            .run_in(&mut self.workspace)
    }

    /// Runs an adaptive (LTE-controlled) transient analysis whose
    /// initial condition is the (warm-started) DC operating point of
    /// `circuit`. Pass [`AdaptiveOptions::for_duration`] or tweak it.
    ///
    /// # Errors
    ///
    /// * [`SpiceError::InvalidValue`] for bad adaptive options.
    /// * DC / per-step Newton errors as for [`SimEngine::dc`].
    /// * [`SpiceError::BudgetExceeded`] / [`SpiceError::Cancelled`]
    ///   when the engine budget runs out.
    pub fn transient_adaptive(
        &mut self,
        circuit: &Circuit,
        t_stop: Second,
        opts: AdaptiveOptions,
    ) -> Result<TransientResult, SpiceError> {
        let op = self.dc(circuit)?;
        let mut analysis = TransientAnalysis::over(circuit, t_stop)
            .with_adaptive_options(opts)
            .at(self.temp)
            .with_options(self.options)
            .with_integrator(self.integrator)
            .with_budget(self.budget.clone())
            .with_recorder(self.telemetry.clone())
            .with_health(self.health)
            .start_from(&op);
        if let Some(policy) = &self.rescue {
            analysis = analysis.with_rescue(policy.clone());
        }
        analysis.run_in(&mut self.workspace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::{Element, NodeId};
    use crate::Waveform;
    use ferrocim_device::{MosfetModel, MosfetParams};
    use ferrocim_units::{Farad, Ohm, Volt};

    fn transistor_divider() -> Circuit {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let g = ckt.node("g");
        let d = ckt.node("d");
        ckt.add(Element::vdc("VDD", vdd, NodeId::GROUND, Volt(1.2)))
            .unwrap();
        ckt.add(Element::vdc("VG", g, NodeId::GROUND, Volt(0.3)))
            .unwrap();
        ckt.add(Element::resistor("RD", vdd, d, Ohm(1e6))).unwrap();
        ckt.add(Element::mosfet(
            "M1",
            d,
            g,
            NodeId::GROUND,
            MosfetModel::new(MosfetParams::nmos_14nm().with_wl_ratio(4.0)),
        ))
        .unwrap();
        ckt
    }

    #[test]
    fn engine_dc_matches_standalone_analysis() {
        let ckt = transistor_divider();
        let standalone = DcAnalysis::new(&ckt).solve().unwrap();
        let mut engine = SimEngine::new();
        let first = engine.dc(&ckt).unwrap();
        // First engine solve is a cold start through the workspace path:
        // bitwise identical to the allocating path.
        assert_eq!(first.raw, standalone.raw);
        // Second solve warm-starts but must land on the same point.
        let second = engine.dc(&ckt).unwrap();
        let d = ckt.find_node("d").unwrap();
        assert!((second.voltage(d).value() - first.voltage(d).value()).abs() < 1e-9);
    }

    #[test]
    fn warm_start_survives_a_gate_step() {
        let mut ckt = transistor_divider();
        let mut engine = SimEngine::new();
        let d = ckt.find_node("d").unwrap();
        let mut last = f64::INFINITY;
        for step in 0..8 {
            let vg = 0.20 + 0.05 * step as f64;
            if let Some(Element::VoltageSource { waveform, .. }) = ckt.element_mut("VG") {
                *waveform = Waveform::dc(Volt(vg));
            }
            let op = engine.dc(&ckt).unwrap();
            let vd = op.voltage(d).value();
            assert!(vd <= last + 1e-9, "drain must fall as the gate rises");
            last = vd;
        }
        assert!(engine.last_operating_point().is_some());
    }

    #[test]
    fn size_mismatch_falls_back_to_cold_start() {
        let mut engine = SimEngine::new();
        let ckt = transistor_divider();
        engine.dc(&ckt).unwrap();
        // A different, smaller circuit: the stale warm-start vector has
        // the wrong length and must be ignored, not mis-applied.
        let mut small = Circuit::new();
        let a = small.node("a");
        small
            .add(Element::vdc("V1", a, NodeId::GROUND, Volt(0.7)))
            .unwrap();
        small
            .add(Element::resistor("R1", a, NodeId::GROUND, Ohm(1e3)))
            .unwrap();
        let op = engine.dc(&small).unwrap();
        assert!((op.voltage(a).value() - 0.7).abs() < 1e-9);
    }

    #[test]
    fn engine_transient_matches_standalone_run() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.add(Element::vsource(
            "V1",
            vin,
            NodeId::GROUND,
            Waveform::step(Volt(0.0), Volt(1.0), ferrocim_units::Second(1e-12)),
        ))
        .unwrap();
        ckt.add(Element::resistor("R1", vin, out, Ohm(1e3)))
            .unwrap();
        ckt.add(Element::Capacitor {
            name: "C1".into(),
            a: out,
            b: NodeId::GROUND,
            capacitance: Farad(1e-12),
            initial: Some(Volt(0.0)),
        })
        .unwrap();
        let standalone = TransientAnalysis::over(&ckt, Second(2e-9))
            .with_fixed_step(Second(5e-12))
            .run()
            .unwrap();
        let mut engine = SimEngine::new();
        let engined = engine.transient(&ckt, Second(5e-12), Second(2e-9)).unwrap();
        assert_eq!(standalone.len(), engined.len());
        let dv = (standalone.final_voltage(out).value() - engined.final_voltage(out).value()).abs();
        assert!(dv < 1e-12, "dv = {dv}");
    }

    #[test]
    fn workspace_resizes_between_circuits() {
        let mut ws = Workspace::with_size(4);
        assert_eq!(ws.size(), 4);
        ws.ensure_size(9);
        assert_eq!(ws.size(), 9);
        assert_eq!(ws.system.dim(), 9);
        ws.ensure_size(9);
        assert_eq!(ws.size(), 9);
    }

    #[test]
    fn workspace_backend_follows_the_solver_config() {
        let mut ws = Workspace::new();
        ws.ensure_size(10);
        assert_eq!(ws.solver_backend(), SolverBackend::Dense);
        assert!(ws.sparse_factor_counts().is_none());
        // Auto flips to sparse at the threshold.
        ws.ensure_size(SolverConfig::AUTO_SPARSE_THRESHOLD);
        assert_eq!(ws.solver_backend(), SolverBackend::Sparse);
        // An explicit config overrides the size heuristic.
        let mut forced = Workspace::with_solver(SolverConfig::sparse());
        forced.ensure_size(3);
        assert_eq!(forced.solver_backend(), SolverBackend::Sparse);
        assert_eq!(forced.sparse_factor_counts(), Some((0, 0)));
        forced.set_solver(SolverConfig::dense());
        forced.ensure_size(3);
        assert_eq!(forced.solver_backend(), SolverBackend::Dense);
    }

    #[test]
    fn degradation_ladder_escalates_deterministically() {
        let mut ws = Workspace::with_solver(SolverConfig::sparse());
        ws.ensure_size(8);
        assert_eq!(ws.degrade_level(), 0);
        assert_eq!(ws.escalate_degrade(), Some(DegradeStageKind::FreshSymbolic));
        assert_eq!(ws.degrade_level(), 1);
        assert_eq!(ws.solver_backend(), SolverBackend::Sparse);
        assert_eq!(
            ws.escalate_degrade(),
            Some(DegradeStageKind::AlternateOrdering)
        );
        assert_eq!(ws.degrade_level(), 2);
        assert_eq!(ws.solver_backend(), SolverBackend::Sparse);
        assert_eq!(ws.escalate_degrade(), Some(DegradeStageKind::DenseFallback));
        assert_eq!(ws.degrade_level(), 3);
        assert_eq!(ws.solver_backend(), SolverBackend::Dense);
        assert_eq!(ws.escalate_degrade(), None, "ladder must be finite");
        assert_eq!(ws.degrade_level(), 3);
    }

    #[test]
    fn dense_configuration_has_no_ladder() {
        let mut ws = Workspace::with_solver(SolverConfig::dense());
        ws.ensure_size(4);
        assert_eq!(ws.escalate_degrade(), None);
        assert_eq!(ws.degrade_level(), 0);
    }

    #[test]
    fn ladder_resets_on_size_change_and_reconfiguration() {
        let mut ws = Workspace::with_solver(SolverConfig::sparse());
        ws.ensure_size(8);
        ws.escalate_degrade();
        ws.escalate_degrade();
        assert_eq!(ws.degrade_level(), 2);
        // A new system size means a new circuit: start fresh.
        ws.ensure_size(9);
        assert_eq!(ws.degrade_level(), 0);
        ws.escalate_degrade();
        assert_eq!(ws.degrade_level(), 1);
        // Re-setting the same config keeps the learned rung…
        ws.set_solver(SolverConfig::sparse());
        assert_eq!(ws.degrade_level(), 1);
        // …but a genuinely different config resets it.
        ws.set_solver(SolverConfig::sparse().with_parallel_blocks(true));
        assert_eq!(ws.degrade_level(), 0);
    }

    #[test]
    fn dc_solve_populates_last_solve_quality() {
        let ckt = transistor_divider();
        let mut ws = Workspace::new();
        DcAnalysis::new(&ckt).solve_in(&mut ws).unwrap();
        let q = ws
            .last_solve_quality()
            .expect("certification on by default");
        assert!(q.residual.is_finite());
        assert!(q.residual <= crate::HealthPolicy::default().residual_tol);
        assert!(q.pivot_growth.is_finite());
        // With certification off the verdict is never produced.
        let mut ws_off = Workspace::new();
        DcAnalysis::new(&ckt)
            .with_health(crate::HealthPolicy::off())
            .solve_in(&mut ws_off)
            .unwrap();
        assert!(ws_off.last_solve_quality().is_none());
    }
}
