//! Error types for circuit construction and analysis.

use std::fmt;

/// Errors produced while building a [`crate::Circuit`] or running an
/// analysis on it.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SpiceError {
    /// An element referenced a node id that does not exist in the
    /// circuit it was added to.
    UnknownNode {
        /// The element's name.
        element: String,
        /// The out-of-range node index.
        node: usize,
    },
    /// Two elements share the same name; names must be unique so that
    /// probes (currents, energies) are unambiguous.
    DuplicateElement {
        /// The clashing name.
        name: String,
    },
    /// An element parameter was invalid (non-positive resistance,
    /// capacitance, timestep, …).
    InvalidValue {
        /// The element or analysis parameter name.
        name: String,
        /// The rejected value.
        value: f64,
        /// What it must satisfy.
        requirement: &'static str,
    },
    /// The Newton–Raphson iteration failed to converge within the
    /// iteration budget.
    NoConvergence {
        /// Number of iterations attempted.
        iterations: usize,
        /// The residual voltage change at the last iteration, volts.
        residual: f64,
    },
    /// A Newton iteration produced a non-finite (NaN/Inf) update — the
    /// solve was aborted instead of silently iterating on garbage.
    NumericalBlowup {
        /// The iteration at which the blowup was detected.
        iteration: usize,
        /// The index of the first non-finite unknown.
        unknown: usize,
    },
    /// The linear system was singular — typically a floating node or an
    /// all-capacitor cut-set without the built-in `GMIN` leak.
    SingularMatrix {
        /// Row index at which elimination found no usable pivot.
        row: usize,
    },
    /// An analysis probe referenced an element name that does not exist.
    UnknownElement {
        /// The missing name.
        name: String,
    },
    /// An analysis probe referenced a node name that does not exist.
    UnknownNodeName {
        /// The missing name.
        name: String,
    },
    /// A configured [`crate::Budget`] limit (iterations, steps, or
    /// wall-clock deadline) was exhausted before the analysis finished.
    BudgetExceeded {
        /// Which resource ran out.
        resource: crate::BudgetResource,
    },
    /// A [`crate::CancelToken`] attached to the analysis budget fired.
    Cancelled,
    /// A linear solve failed residual certification even after iterative
    /// refinement and the full solver degradation ladder (fresh
    /// symbolic → alternate ordering → dense fallback) — the solution
    /// does not satisfy the system to the configured
    /// [`crate::HealthPolicy`] tolerance and was refused rather than
    /// returned as a quietly wrong answer.
    UncertifiedSolve {
        /// The relative backward error of the best attempt.
        residual: f64,
        /// Hager 1-norm condition estimate of the system, when the
        /// policy computed one.
        cond_estimate: Option<f64>,
    },
}

impl fmt::Display for SpiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpiceError::UnknownNode { element, node } => {
                write!(f, "element `{element}` references unknown node index {node}")
            }
            SpiceError::DuplicateElement { name } => {
                write!(f, "duplicate element name `{name}`")
            }
            SpiceError::InvalidValue {
                name,
                value,
                requirement,
            } => write!(f, "value `{name}` = {value} must be {requirement}"),
            SpiceError::NoConvergence {
                iterations,
                residual,
            } => write!(
                f,
                "newton iteration did not converge after {iterations} iterations (residual {residual:.3e} V)"
            ),
            SpiceError::NumericalBlowup { iteration, unknown } => write!(
                f,
                "newton iteration {iteration} produced a non-finite update at unknown {unknown} (numerical blowup)"
            ),
            SpiceError::SingularMatrix { row } => {
                write!(f, "singular MNA matrix at row {row} (floating node?)")
            }
            SpiceError::UnknownElement { name } => {
                write!(f, "no element named `{name}` in the circuit")
            }
            SpiceError::UnknownNodeName { name } => {
                write!(f, "no node named `{name}` in the circuit")
            }
            SpiceError::BudgetExceeded { resource } => {
                write!(f, "analysis budget exceeded: {resource}")
            }
            SpiceError::Cancelled => write!(f, "analysis cancelled"),
            SpiceError::UncertifiedSolve {
                residual,
                cond_estimate,
            } => {
                write!(
                    f,
                    "linear solve failed residual certification (backward error {residual:.3e}"
                )?;
                if let Some(cond) = cond_estimate {
                    write!(f, ", condition estimate {cond:.3e}")?;
                }
                write!(f, ") after refinement and solver degradation")
            }
        }
    }
}

impl std::error::Error for SpiceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_are_send_sync_error() {
        fn assert_traits<T: std::error::Error + Send + Sync>() {}
        assert_traits::<SpiceError>();
    }

    #[test]
    fn display_messages_are_informative() {
        let e = SpiceError::NoConvergence {
            iterations: 500,
            residual: 1e-3,
        };
        assert!(e.to_string().contains("500"));
        let e = SpiceError::SingularMatrix { row: 3 };
        assert!(e.to_string().contains("row 3"));
    }
}
