//! Dense linear algebra for the MNA system.
//!
//! This is the dense backend behind [`crate::LinearSystem`]: an LU
//! factorization with partial pivoting that wins below roughly
//! [`crate::SolverConfig::AUTO_SPARSE_THRESHOLD`] unknowns (an 8-cell
//! CIM row is ≈ 30), where its tight loops beat the sparse machinery's
//! bookkeeping. Larger systems — wide CIM rows, whole arrays — go to
//! the KLU-style [`crate::SparseLu`], which this O(n³) kernel cannot
//! touch. Both `solve_destructive` and `solve_into` share the single
//! factorization core in [`Matrix::solve_into`].

use crate::SpiceError;

/// A dense, row-major square matrix.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Matrix {
    n: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates an `n × n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        Matrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// The dimension of the matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Reads entry `(row, col)`.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        self.data[row * self.n + col]
    }

    /// Writes entry `(row, col)`.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        self.data[row * self.n + col] = value;
    }

    /// Adds `value` to entry `(row, col)` — the stamp primitive.
    #[inline]
    pub fn add(&mut self, row: usize, col: usize, value: f64) {
        self.data[row * self.n + col] += value;
    }

    /// Resets all entries to zero, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.fill(0.0);
    }

    /// Copies another matrix's dimension and entries into this one,
    /// reusing the existing allocation when capacity allows.
    pub fn copy_values_from(&mut self, other: &Matrix) {
        self.n = other.n;
        self.data.clear();
        self.data.extend_from_slice(&other.data);
    }

    /// Computes `self · x` into `y` without allocating.
    ///
    /// # Panics
    ///
    /// Panics if `x` or `y` is not of length `dim()`.
    pub fn mul_vec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.n);
        for (r, yr) in y.iter_mut().enumerate() {
            let row = &self.data[r * self.n..(r + 1) * self.n];
            *yr = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
    }

    /// Computes `self · x`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.n];
        self.mul_vec_into(x, &mut y);
        y
    }

    /// The matrix ∞-norm (maximum absolute row sum).
    pub fn inf_norm(&self) -> f64 {
        (0..self.n)
            .map(|r| {
                self.data[r * self.n..(r + 1) * self.n]
                    .iter()
                    .map(|v| v.abs())
                    .sum()
            })
            .fold(0.0f64, f64::max)
    }

    /// The matrix 1-norm (maximum absolute column sum).
    pub fn one_norm(&self) -> f64 {
        let mut best = 0.0f64;
        for c in 0..self.n {
            let mut sum = 0.0;
            for r in 0..self.n {
                sum += self.get(r, c).abs();
            }
            best = best.max(sum);
        }
        best
    }

    /// The largest absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().map(|v| v.abs()).fold(0.0f64, f64::max)
    }

    /// The largest absolute entry of the `U` factor left behind by
    /// [`Matrix::solve_into`] (rows in `perm` order, columns at or right
    /// of the diagonal) — the numerator of the pivot-growth factor.
    pub(crate) fn max_abs_upper(&self, perm: &[usize]) -> f64 {
        let mut best = 0.0f64;
        for (k, &p) in perm.iter().enumerate() {
            for c in k..self.n {
                best = best.max(self.get(p, c).abs());
            }
        }
        best
    }

    /// Solves `self · x = b` in place via LU with partial pivoting,
    /// destroying the matrix. Returns the solution vector.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::SingularMatrix`] when no usable pivot is
    /// found, which for MNA systems means a floating node or a
    /// short-circuit loop of ideal sources.
    pub fn solve_destructive(mut self, b: &[f64]) -> Result<Vec<f64>, SpiceError> {
        let mut rhs = Vec::new();
        let mut perm = Vec::new();
        let mut out = Vec::new();
        self.solve_into(b, &mut rhs, &mut perm, &mut out)?;
        Ok(out)
    }

    /// Solves `self · x = b` into `out`, destroying the matrix contents
    /// and using `rhs` / `perm` as scratch. When the buffers already
    /// hold capacity `dim()` (as they do after the first call on a
    /// reused [`crate::Workspace`]), this performs no heap allocation.
    ///
    /// The elimination sequence is identical to [`Matrix::solve_destructive`]
    /// — results are bitwise equal.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::SingularMatrix`] when no usable pivot is
    /// found (floating node or ideal-source loop in MNA terms).
    ///
    /// # Panics
    ///
    /// Panics if `b` is not of length `dim()`.
    pub fn solve_into(
        &mut self,
        b: &[f64],
        rhs: &mut Vec<f64>,
        perm: &mut Vec<usize>,
        out: &mut Vec<f64>,
    ) -> Result<(), SpiceError> {
        assert_eq!(b.len(), self.n);
        let n = self.n;
        let x = rhs;
        x.clear();
        x.extend_from_slice(b);
        perm.clear();
        perm.extend(0..n);
        for col in 0..n {
            // Partial pivoting: find the largest magnitude in this column.
            let mut pivot_row = col;
            let mut pivot_val = self.get(perm[col], col).abs();
            for (r, &pr) in perm.iter().enumerate().skip(col + 1) {
                let v = self.get(pr, col).abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val < 1e-300 || !pivot_val.is_finite() {
                return Err(SpiceError::SingularMatrix { row: col });
            }
            perm.swap(col, pivot_row);
            let p = perm[col];
            let pivot = self.get(p, col);
            for &r in &perm[col + 1..] {
                let factor = self.get(r, col) / pivot;
                // The multiplier is stored in the eliminated position —
                // back substitution never reads below the diagonal (in
                // `perm` order), so the solution is unchanged, and the
                // stored `L` lets `solve_factored` replay this
                // elimination on a new right-hand side.
                self.set(r, col, factor);
                if factor == 0.0 {
                    continue;
                }
                for c in (col + 1)..n {
                    let v = self.get(p, c);
                    self.add(r, c, -factor * v);
                }
                x[r] -= factor * x[p];
            }
        }
        // Back substitution.
        out.clear();
        out.resize(n, 0.0);
        for col in (0..n).rev() {
            let p = perm[col];
            let mut sum = x[p];
            for (c, &oc) in out.iter().enumerate().take(n).skip(col + 1) {
                sum -= self.get(p, c) * oc;
            }
            out[col] = sum / self.get(p, col);
        }
        Ok(())
    }

    /// Re-solves `A · x = b` for a new right-hand side using the `L`/`U`
    /// factors and permutation left behind by a prior
    /// [`Matrix::solve_into`] — no refactorization. The arithmetic
    /// replays the original elimination exactly, so re-solving with the
    /// original `b` reproduces the original solution bitwise.
    ///
    /// # Panics
    ///
    /// Panics if `b` or `perm` is not of length `dim()`.
    pub fn solve_factored(
        &self,
        b: &[f64],
        perm: &[usize],
        scratch: &mut Vec<f64>,
        out: &mut Vec<f64>,
    ) {
        let n = self.n;
        assert_eq!(b.len(), n);
        assert_eq!(perm.len(), n);
        let x = scratch;
        x.clear();
        x.extend_from_slice(b);
        for col in 0..n {
            let p = perm[col];
            for &r in &perm[col + 1..] {
                let factor = self.get(r, col);
                if factor != 0.0 {
                    x[r] -= factor * x[p];
                }
            }
        }
        out.clear();
        out.resize(n, 0.0);
        for col in (0..n).rev() {
            let p = perm[col];
            let mut sum = x[p];
            for (c, &oc) in out.iter().enumerate().take(n).skip(col + 1) {
                sum -= self.get(p, c) * oc;
            }
            out[col] = sum / self.get(p, col);
        }
    }

    /// Solves the transposed system `Aᵀ · w = c` through the stored
    /// factors (`A = Pᵀ·L·U` ⇒ `Aᵀ = Uᵀ·Lᵀ·P`), as needed by the
    /// Hager-style condition estimator.
    ///
    /// # Panics
    ///
    /// Panics if `c` or `perm` is not of length `dim()`.
    pub fn solve_transposed_factored(
        &self,
        c: &[f64],
        perm: &[usize],
        scratch: &mut Vec<f64>,
        out: &mut Vec<f64>,
    ) {
        let n = self.n;
        assert_eq!(c.len(), n);
        assert_eq!(perm.len(), n);
        // Uᵀ·y = c: Uᵀ is lower triangular with U[j,k] stored at
        // (perm[j], k), so ascending substitution.
        let y = scratch;
        y.clear();
        y.reserve(n);
        for k in 0..n {
            let mut sum = c[k];
            for (j, &yj) in y.iter().enumerate() {
                sum -= self.get(perm[j], k) * yj;
            }
            y.push(sum / self.get(perm[k], k));
        }
        // Lᵀ·z = y: unit upper triangular with the multiplier L[j,k]
        // stored at (perm[j], k), descending substitution in place.
        for k in (0..n).rev() {
            let mut sum = y[k];
            for j in (k + 1)..n {
                sum -= self.get(perm[j], k) * y[j];
            }
            y[k] = sum;
        }
        // w = Pᵀ·z.
        out.clear();
        out.resize(n, 0.0);
        for (k, &zk) in y.iter().enumerate() {
            out[perm[k]] = zk;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_rows(rows: &[&[f64]]) -> Matrix {
        let n = rows.len();
        let mut m = Matrix::zeros(n);
        for (r, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), n);
            for (c, &v) in row.iter().enumerate() {
                m.set(r, c, v);
            }
        }
        m
    }

    #[test]
    fn identity_solve() {
        let m = from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let x = m.solve_destructive(&[3.0, -4.0]).unwrap();
        assert_eq!(x, vec![3.0, -4.0]);
    }

    #[test]
    fn solves_a_known_3x3_system() {
        // A = [[2,1,0],[1,3,1],[0,1,4]], x = [1,2,3] → b = [4,10,14].
        let m = from_rows(&[&[2.0, 1.0, 0.0], &[1.0, 3.0, 1.0], &[0.0, 1.0, 4.0]]);
        let x = m.solve_destructive(&[4.0, 10.0, 14.0]).unwrap();
        for (got, want) in x.iter().zip([1.0, 2.0, 3.0]) {
            assert!((got - want).abs() < 1e-12, "{x:?}");
        }
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        let m = from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = m.solve_destructive(&[5.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-12 && (x[1] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_is_reported() {
        let m = from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(
            m.solve_destructive(&[1.0, 2.0]),
            Err(SpiceError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn residual_is_tiny_for_ill_scaled_systems() {
        // Conductances spanning 12 decades, like gmin next to a switch.
        let m = from_rows(&[
            &[1e-12 + 1e-3, -1e-3, 0.0],
            &[-1e-3, 2e-3, -1e-3],
            &[0.0, -1e-3, 1e-3 + 1e4],
        ]);
        let b = [1e-6, 0.0, 2.0];
        let x = m.clone().solve_destructive(&b).unwrap();
        let r = m.mul_vec(&x);
        for (ri, bi) in r.iter().zip(b) {
            assert!((ri - bi).abs() < 1e-9 * bi.abs().max(1.0), "{r:?}");
        }
    }

    #[test]
    fn mul_vec_matches_manual() {
        let m = from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.mul_vec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn mul_vec_into_matches_mul_vec() {
        let m = from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let mut y = vec![9.9, 9.9];
        m.mul_vec_into(&[0.5, -2.0], &mut y);
        assert_eq!(y, m.mul_vec(&[0.5, -2.0]));
    }

    #[test]
    fn solve_into_is_bitwise_identical_to_solve_destructive() {
        // Ill-scaled system: any change to the elimination order or
        // arithmetic would show up in the low bits.
        let m = from_rows(&[
            &[1e-12 + 1e-3, -1e-3, 0.0],
            &[-1e-3, 2e-3, -1e-3],
            &[0.0, -1e-3, 1e-3 + 1e4],
        ]);
        let b = [1e-6, 0.0, 2.0];
        let reference = m.clone().solve_destructive(&b).unwrap();
        let (mut rhs, mut perm, mut out) = (Vec::new(), Vec::new(), Vec::new());
        let mut work = m.clone();
        work.solve_into(&b, &mut rhs, &mut perm, &mut out).unwrap();
        assert_eq!(out, reference);
        // Reusing the (now warm) buffers must give the same answer.
        let mut work = m;
        work.solve_into(&b, &mut rhs, &mut perm, &mut out).unwrap();
        assert_eq!(out, reference);
    }

    #[test]
    fn factored_resolve_replays_the_original_solution_bitwise() {
        let m = from_rows(&[
            &[1e-12 + 1e-3, -1e-3, 0.0],
            &[-1e-3, 2e-3, -1e-3],
            &[0.0, -1e-3, 1e-3 + 1e4],
        ]);
        let b = [1e-6, 0.0, 2.0];
        let (mut rhs, mut perm, mut out) = (Vec::new(), Vec::new(), Vec::new());
        let mut lu = m.clone();
        lu.solve_into(&b, &mut rhs, &mut perm, &mut out).unwrap();
        let mut replay = Vec::new();
        lu.solve_factored(&b, &perm, &mut rhs, &mut replay);
        assert_eq!(replay, out, "same b through the stored factors");
        // A different right-hand side still satisfies the system.
        let b2 = [0.5, -1.0, 3.0];
        lu.solve_factored(&b2, &perm, &mut rhs, &mut replay);
        let back = m.mul_vec(&replay);
        for (got, want) in back.iter().zip(b2) {
            assert!((got - want).abs() < 1e-9 * want.abs().max(1.0));
        }
    }

    #[test]
    fn transposed_factored_solve_satisfies_the_transposed_system() {
        let m = from_rows(&[&[2.0, 1.0, -0.5], &[1.0, 3.0, 1.0], &[0.0, 1.0, 4.0]]);
        let c = [1.0, -2.0, 0.5];
        let (mut rhs, mut perm, mut out) = (Vec::new(), Vec::new(), Vec::new());
        let mut lu = m.clone();
        lu.solve_into(&c, &mut rhs, &mut perm, &mut out).unwrap();
        let mut w = Vec::new();
        lu.solve_transposed_factored(&c, &perm, &mut rhs, &mut w);
        // Check Aᵀ·w = c, i.e. Σ_r a[r][k]·w[r] = c[k].
        for (k, &ck) in c.iter().enumerate() {
            let got: f64 = (0..3).map(|r| m.get(r, k) * w[r]).sum();
            assert!((got - ck).abs() < 1e-12, "col {k}: {got} vs {ck}");
        }
    }

    #[test]
    fn norms_and_pivot_growth_inputs() {
        let m = from_rows(&[&[1.0, -2.0], &[3.0, 4.0]]);
        assert_eq!(m.inf_norm(), 7.0);
        assert_eq!(m.one_norm(), 6.0);
        assert_eq!(m.max_abs(), 4.0);
        let (mut rhs, mut perm, mut out) = (Vec::new(), Vec::new(), Vec::new());
        let mut lu = m.clone();
        lu.solve_into(&[1.0, 1.0], &mut rhs, &mut perm, &mut out)
            .unwrap();
        // Pivot row is [3,4]; U = [[3,4],[0,1−(1/3)·4]] → max |U| = 4.
        assert_eq!(lu.max_abs_upper(&perm), 4.0);
    }

    #[test]
    fn random_round_trip() {
        // Deterministic pseudo-random matrix; verify A·solve(A,b) = b.
        let n = 12;
        let mut seed = 0x12345678u64;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut m = Matrix::zeros(n);
        for r in 0..n {
            for c in 0..n {
                m.set(r, c, next());
            }
            m.add(r, r, 4.0); // diagonally dominant → well conditioned
        }
        let b: Vec<f64> = (0..n).map(|_| next()).collect();
        let x = m.clone().solve_destructive(&b).unwrap();
        let back = m.mul_vec(&x);
        for (got, want) in back.iter().zip(&b) {
            assert!((got - want).abs() < 1e-10);
        }
    }
}
