//! Dense linear algebra for the MNA system.
//!
//! This is the dense backend behind [`crate::LinearSystem`]: an LU
//! factorization with partial pivoting that wins below roughly
//! [`crate::SolverConfig::AUTO_SPARSE_THRESHOLD`] unknowns (an 8-cell
//! CIM row is ≈ 30), where its tight loops beat the sparse machinery's
//! bookkeeping. Larger systems — wide CIM rows, whole arrays — go to
//! the KLU-style [`crate::SparseLu`], which this O(n³) kernel cannot
//! touch. Both `solve_destructive` and `solve_into` share the single
//! factorization core in [`Matrix::solve_into`].

use crate::SpiceError;

/// A dense, row-major square matrix.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Matrix {
    n: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates an `n × n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        Matrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// The dimension of the matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Reads entry `(row, col)`.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        self.data[row * self.n + col]
    }

    /// Writes entry `(row, col)`.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        self.data[row * self.n + col] = value;
    }

    /// Adds `value` to entry `(row, col)` — the stamp primitive.
    #[inline]
    pub fn add(&mut self, row: usize, col: usize, value: f64) {
        self.data[row * self.n + col] += value;
    }

    /// Resets all entries to zero, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.fill(0.0);
    }

    /// Computes `self · x` into `y` without allocating.
    ///
    /// # Panics
    ///
    /// Panics if `x` or `y` is not of length `dim()`.
    pub fn mul_vec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.n);
        for (r, yr) in y.iter_mut().enumerate() {
            let row = &self.data[r * self.n..(r + 1) * self.n];
            *yr = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
    }

    /// Computes `self · x`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.n];
        self.mul_vec_into(x, &mut y);
        y
    }

    /// Solves `self · x = b` in place via LU with partial pivoting,
    /// destroying the matrix. Returns the solution vector.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::SingularMatrix`] when no usable pivot is
    /// found, which for MNA systems means a floating node or a
    /// short-circuit loop of ideal sources.
    pub fn solve_destructive(mut self, b: &[f64]) -> Result<Vec<f64>, SpiceError> {
        let mut rhs = Vec::new();
        let mut perm = Vec::new();
        let mut out = Vec::new();
        self.solve_into(b, &mut rhs, &mut perm, &mut out)?;
        Ok(out)
    }

    /// Solves `self · x = b` into `out`, destroying the matrix contents
    /// and using `rhs` / `perm` as scratch. When the buffers already
    /// hold capacity `dim()` (as they do after the first call on a
    /// reused [`crate::Workspace`]), this performs no heap allocation.
    ///
    /// The elimination sequence is identical to [`Matrix::solve_destructive`]
    /// — results are bitwise equal.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::SingularMatrix`] when no usable pivot is
    /// found (floating node or ideal-source loop in MNA terms).
    ///
    /// # Panics
    ///
    /// Panics if `b` is not of length `dim()`.
    pub fn solve_into(
        &mut self,
        b: &[f64],
        rhs: &mut Vec<f64>,
        perm: &mut Vec<usize>,
        out: &mut Vec<f64>,
    ) -> Result<(), SpiceError> {
        assert_eq!(b.len(), self.n);
        let n = self.n;
        let x = rhs;
        x.clear();
        x.extend_from_slice(b);
        perm.clear();
        perm.extend(0..n);
        for col in 0..n {
            // Partial pivoting: find the largest magnitude in this column.
            let mut pivot_row = col;
            let mut pivot_val = self.get(perm[col], col).abs();
            for (r, &pr) in perm.iter().enumerate().skip(col + 1) {
                let v = self.get(pr, col).abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val < 1e-300 || !pivot_val.is_finite() {
                return Err(SpiceError::SingularMatrix { row: col });
            }
            perm.swap(col, pivot_row);
            let p = perm[col];
            let pivot = self.get(p, col);
            for &r in &perm[col + 1..] {
                let factor = self.get(r, col) / pivot;
                if factor == 0.0 {
                    continue;
                }
                for c in col..n {
                    let v = self.get(p, c);
                    self.add(r, c, -factor * v);
                }
                x[r] -= factor * x[p];
            }
        }
        // Back substitution.
        out.clear();
        out.resize(n, 0.0);
        for col in (0..n).rev() {
            let p = perm[col];
            let mut sum = x[p];
            for (c, &oc) in out.iter().enumerate().take(n).skip(col + 1) {
                sum -= self.get(p, c) * oc;
            }
            out[col] = sum / self.get(p, col);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_rows(rows: &[&[f64]]) -> Matrix {
        let n = rows.len();
        let mut m = Matrix::zeros(n);
        for (r, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), n);
            for (c, &v) in row.iter().enumerate() {
                m.set(r, c, v);
            }
        }
        m
    }

    #[test]
    fn identity_solve() {
        let m = from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let x = m.solve_destructive(&[3.0, -4.0]).unwrap();
        assert_eq!(x, vec![3.0, -4.0]);
    }

    #[test]
    fn solves_a_known_3x3_system() {
        // A = [[2,1,0],[1,3,1],[0,1,4]], x = [1,2,3] → b = [4,10,14].
        let m = from_rows(&[&[2.0, 1.0, 0.0], &[1.0, 3.0, 1.0], &[0.0, 1.0, 4.0]]);
        let x = m.solve_destructive(&[4.0, 10.0, 14.0]).unwrap();
        for (got, want) in x.iter().zip([1.0, 2.0, 3.0]) {
            assert!((got - want).abs() < 1e-12, "{x:?}");
        }
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        let m = from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = m.solve_destructive(&[5.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-12 && (x[1] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_is_reported() {
        let m = from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(
            m.solve_destructive(&[1.0, 2.0]),
            Err(SpiceError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn residual_is_tiny_for_ill_scaled_systems() {
        // Conductances spanning 12 decades, like gmin next to a switch.
        let m = from_rows(&[
            &[1e-12 + 1e-3, -1e-3, 0.0],
            &[-1e-3, 2e-3, -1e-3],
            &[0.0, -1e-3, 1e-3 + 1e4],
        ]);
        let b = [1e-6, 0.0, 2.0];
        let x = m.clone().solve_destructive(&b).unwrap();
        let r = m.mul_vec(&x);
        for (ri, bi) in r.iter().zip(b) {
            assert!((ri - bi).abs() < 1e-9 * bi.abs().max(1.0), "{r:?}");
        }
    }

    #[test]
    fn mul_vec_matches_manual() {
        let m = from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.mul_vec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn mul_vec_into_matches_mul_vec() {
        let m = from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let mut y = vec![9.9, 9.9];
        m.mul_vec_into(&[0.5, -2.0], &mut y);
        assert_eq!(y, m.mul_vec(&[0.5, -2.0]));
    }

    #[test]
    fn solve_into_is_bitwise_identical_to_solve_destructive() {
        // Ill-scaled system: any change to the elimination order or
        // arithmetic would show up in the low bits.
        let m = from_rows(&[
            &[1e-12 + 1e-3, -1e-3, 0.0],
            &[-1e-3, 2e-3, -1e-3],
            &[0.0, -1e-3, 1e-3 + 1e4],
        ]);
        let b = [1e-6, 0.0, 2.0];
        let reference = m.clone().solve_destructive(&b).unwrap();
        let (mut rhs, mut perm, mut out) = (Vec::new(), Vec::new(), Vec::new());
        let mut work = m.clone();
        work.solve_into(&b, &mut rhs, &mut perm, &mut out).unwrap();
        assert_eq!(out, reference);
        // Reusing the (now warm) buffers must give the same answer.
        let mut work = m;
        work.solve_into(&b, &mut rhs, &mut perm, &mut out).unwrap();
        assert_eq!(out, reference);
    }

    #[test]
    fn random_round_trip() {
        // Deterministic pseudo-random matrix; verify A·solve(A,b) = b.
        let n = 12;
        let mut seed = 0x12345678u64;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut m = Matrix::zeros(n);
        for r in 0..n {
            for c in 0..n {
                m.set(r, c, next());
            }
            m.add(r, r, 4.0); // diagonally dominant → well conditioned
        }
        let b: Vec<f64> = (0..n).map(|_| next()).collect();
        let x = m.clone().solve_destructive(&b).unwrap();
        let back = m.mul_vec(&x);
        for (got, want) in back.iter().zip(&b) {
            assert!((got - want).abs() < 1e-10);
        }
    }
}
