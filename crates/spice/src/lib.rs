//! A small analog circuit simulator for the `ferrocim` workspace.
//!
//! This crate replaces the Cadence Virtuoso Spectre runs of the paper
//! with an in-repo Modified Nodal Analysis (MNA) engine:
//!
//! * [`Circuit`] — netlist construction from [`Element`]s (resistors,
//!   capacitors, sources, scheduled switches, EKV MOSFETs and FeFETs
//!   from [`ferrocim_device`]).
//! * [`DcAnalysis`] — damped Newton–Raphson operating point.
//! * [`TransientAnalysis`] — fixed-step implicit integration (backward
//!   Euler or trapezoidal) with breakpoint alignment and per-source
//!   energy integrals, which is how the paper's fJ/op numbers are
//!   measured.
//! * [`MonteCarlo`] — deterministic seeded fan-out for process-variation
//!   studies (the paper's Fig. 9).
//! * [`sweep`] — temperature/voltage grids for the 0–85 °C evaluations.
//!
//! # Example: a subthreshold FeFET read
//!
//! ```
//! use ferrocim_spice::{Circuit, DcAnalysis, Element, NodeId};
//! use ferrocim_device::{Fefet, FefetParams, PolarizationState};
//! use ferrocim_units::{Celsius, Ohm, Volt};
//!
//! # fn main() -> Result<(), ferrocim_spice::SpiceError> {
//! let mut ckt = Circuit::new();
//! let bl = ckt.node("bl");
//! let mid = ckt.node("mid");
//! let wl = ckt.node("wl");
//! ckt.add(Element::vdc("VBL", bl, NodeId::GROUND, Volt(1.2)))?;
//! ckt.add(Element::vdc("VWL", wl, NodeId::GROUND, Volt(0.35)))?;
//! ckt.add(Element::resistor("R", bl, mid, Ohm(250e3)))?;
//! let mut fefet = Fefet::new(FefetParams::paper_default());
//! fefet.force_state(PolarizationState::LowVt);
//! ckt.add(Element::fefet("F1", mid, wl, NodeId::GROUND, fefet))?;
//!
//! let op = DcAnalysis::new(&ckt).at(Celsius(27.0)).solve()?;
//! let i_cell = op.source_current("VBL")?; // the cell read current
//! assert!(i_cell.value().abs() > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod budget;
pub mod chaos;
mod dc;
mod dcsweep;
mod engine;
mod error;
mod export;
mod health;
mod linear;
mod mna;
mod montecarlo;
mod netlist;
mod rescue;
mod solver;
pub mod sweep;
mod transient;
mod waveform;

pub use budget::{Budget, BudgetResource, CancelToken, Deadline};
pub use dc::{DcAnalysis, OperatingPoint};
pub use dcsweep::DcSweep;
pub use engine::{SimEngine, Workspace};
pub use error::SpiceError;
pub use export::export_netlist;
pub use health::{certify_solution, HealthPolicy, SolveQuality};
pub use linear::Matrix;
pub use mna::NewtonOptions;
pub use montecarlo::{
    apply_policy, fan_out, histogram, try_fan_out, FailurePolicy, FanOutError, FanOutReport,
    JobError, McCheckpoint, McError, MonteCarlo, SampleStats,
};
pub use netlist::{Circuit, Element, NodeId, SwitchSchedule};
pub use rescue::{RescuePolicy, RescueReport, RescueRung, RungAttempt};
pub use solver::{
    DenseLu, FillOrdering, LinearSystem, SolveInfo, SolverConfig, SolverKind, SparseLu,
};
pub use transient::{AdaptiveOptions, Integrator, StepReport, TransientAnalysis, TransientResult};
pub use waveform::Waveform;

/// Re-exported telemetry handle: every analysis builder in this crate
/// accepts one via its `with_recorder` method (see
/// [`ferrocim_telemetry`] for recorders, aggregation, and trace sinks).
pub use ferrocim_telemetry::Telemetry;
