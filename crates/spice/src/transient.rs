//! Transient analysis: fixed-step implicit integration with breakpoint
//! alignment, per-source energy accounting, and full waveform capture.

use crate::dc::OperatingPoint;
use crate::mna::{newton_solve_in, CapMode, CapState, Layout, NewtonOptions};
use crate::netlist::{Circuit, Element, NodeId};
use crate::{SpiceError, Workspace};
use ferrocim_units::{Ampere, Celsius, Joule, Second, Volt};
use std::collections::HashMap;

/// The implicit integration method for capacitors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Integrator {
    /// Backward Euler: first-order, L-stable, no numerical ringing.
    /// The default — charge-sharing steps with ideal switches are stiff.
    #[default]
    BackwardEuler,
    /// Trapezoidal rule: second-order accurate, may ring on sharp edges.
    Trapezoidal,
}

/// Result of a transient run: sampled node voltages, source currents,
/// and delivered-energy integrals.
#[derive(Debug, Clone)]
pub struct TransientResult {
    times: Vec<f64>,
    /// `voltages[sample][node_index]`.
    voltages: Vec<Vec<f64>>,
    /// Per-source sampled branch currents.
    source_currents: HashMap<String, Vec<f64>>,
    /// Per-source delivered energy integral.
    energy: HashMap<String, f64>,
}

impl TransientResult {
    /// The sampled time points.
    pub fn times(&self) -> Vec<Second> {
        self.times.iter().map(|&t| Second(t)).collect()
    }

    /// Number of stored samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// `true` if the run produced no samples.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// The node voltage at a sample index.
    ///
    /// # Panics
    ///
    /// Panics if `sample` is out of range.
    pub fn voltage_at(&self, node: NodeId, sample: usize) -> Volt {
        Volt(self.voltages[sample][node.index()])
    }

    /// The node voltage at the final time point.
    pub fn final_voltage(&self, node: NodeId) -> Volt {
        Volt(self.voltages[self.voltages.len() - 1][node.index()])
    }

    /// The full `(t, v)` trace of a node.
    pub fn trace(&self, node: NodeId) -> Vec<(Second, Volt)> {
        self.times
            .iter()
            .zip(&self.voltages)
            .map(|(&t, row)| (Second(t), Volt(row[node.index()])))
            .collect()
    }

    /// The branch current of a voltage source at the final time point.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownElement`] for unknown source names.
    pub fn final_source_current(&self, name: &str) -> Result<Ampere, SpiceError> {
        self.source_currents
            .get(name)
            .and_then(|v| v.last().copied())
            .map(Ampere)
            .ok_or_else(|| SpiceError::UnknownElement {
                name: name.to_string(),
            })
    }

    /// The energy delivered by a voltage source over the run (positive
    /// when the source did net work on the circuit).
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownElement`] for unknown source names.
    pub fn energy_delivered(&self, name: &str) -> Result<Joule, SpiceError> {
        self.energy
            .get(name)
            .map(|&e| Joule(e))
            .ok_or_else(|| SpiceError::UnknownElement {
                name: name.to_string(),
            })
    }

    /// Total energy delivered by all sources.
    ///
    /// Summed in source-name order so the value is reproducible to the
    /// last bit across runs (hash-map iteration order is not).
    pub fn total_energy_delivered(&self) -> Joule {
        let mut names: Vec<&String> = self.energy.keys().collect();
        names.sort_unstable();
        Joule(names.iter().map(|n| self.energy[*n]).sum())
    }
}

/// A fixed-step transient analysis.
///
/// Steps are aligned to waveform/switch breakpoints so sharp edges are
/// never stepped over. The initial condition is the DC operating point
/// at `t = 0` unless capacitors carry explicit initial voltages, which
/// take precedence on their branch.
#[derive(Debug, Clone)]
pub struct TransientAnalysis<'a> {
    circuit: &'a Circuit,
    temp: Celsius,
    dt: Second,
    t_stop: Second,
    integrator: Integrator,
    options: NewtonOptions,
    start_from: Option<&'a OperatingPoint>,
}

impl<'a> TransientAnalysis<'a> {
    /// Creates a transient analysis with the mandatory timestep and stop
    /// time.
    pub fn new(circuit: &'a Circuit, dt: Second, t_stop: Second) -> Self {
        TransientAnalysis {
            circuit,
            temp: Celsius::ROOM,
            dt,
            t_stop,
            integrator: Integrator::default(),
            options: NewtonOptions::default(),
            start_from: None,
        }
    }

    /// Sets the simulation temperature.
    pub fn at(mut self, temp: Celsius) -> Self {
        self.temp = temp;
        self
    }

    /// Selects the integration method.
    pub fn with_integrator(mut self, integrator: Integrator) -> Self {
        self.integrator = integrator;
        self
    }

    /// Overrides the Newton options.
    pub fn with_options(mut self, options: NewtonOptions) -> Self {
        self.options = options;
        self
    }

    /// Starts from a previously solved operating point instead of
    /// re-solving DC at `t = 0`.
    pub fn start_from(mut self, op: &'a OperatingPoint) -> Self {
        self.start_from = Some(op);
        self
    }

    /// Runs the transient.
    ///
    /// # Errors
    ///
    /// * [`SpiceError::InvalidValue`] for a non-positive `dt` or stop
    ///   time before the first step.
    /// * [`SpiceError::NoConvergence`] / [`SpiceError::SingularMatrix`]
    ///   from the per-step Newton solve.
    pub fn run(&self) -> Result<TransientResult, SpiceError> {
        self.run_in(&mut Workspace::new())
    }

    /// [`TransientAnalysis::run`] using a caller-owned [`Workspace`] for
    /// all solver buffers (including the implicit `t = 0` DC solve).
    /// Repeated runs through the same workspace skip the per-step
    /// matrix/vector allocations; the numerical result is bitwise
    /// identical to [`TransientAnalysis::run`].
    ///
    /// # Errors
    ///
    /// Same as [`TransientAnalysis::run`].
    pub fn run_in(&self, ws: &mut Workspace) -> Result<TransientResult, SpiceError> {
        if !(self.dt.value() > 0.0 && self.dt.value().is_finite()) {
            return Err(SpiceError::InvalidValue {
                name: "dt".to_string(),
                value: self.dt.value(),
                requirement: "a positive finite timestep",
            });
        }
        if self.t_stop.value() < self.dt.value() {
            return Err(SpiceError::InvalidValue {
                name: "t_stop".to_string(),
                value: self.t_stop.value(),
                requirement: "at least one timestep long",
            });
        }
        let layout = Layout::of(self.circuit);

        // Initial state: DC operating point at t = 0.
        let initial = match self.start_from {
            Some(op) => op.clone(),
            None => crate::DcAnalysis::new(self.circuit)
                .at(self.temp)
                .with_options(self.options)
                .solve_in(ws)?,
        };

        // Capacitor companion states seeded from the initial solution or
        // explicit initial conditions.
        let mut cap_states: HashMap<usize, CapState> = HashMap::new();
        for (idx, e) in self.circuit.elements().iter().enumerate() {
            if let Element::Capacitor {
                a, b, initial: ic, ..
            } = e
            {
                let v = match ic {
                    Some(v) => v.value(),
                    None => initial.voltage(*a).value() - initial.voltage(*b).value(),
                };
                cap_states.insert(
                    idx,
                    CapState {
                        v_prev: v,
                        i_prev: 0.0,
                    },
                );
            }
        }

        // Breakpoint-aligned time grid.
        let breakpoints = self.circuit.breakpoints();
        let mut times = Vec::new();
        let mut t = 0.0;
        let dt = self.dt.value();
        let t_stop = self.t_stop.value();
        let mut bp_iter = breakpoints
            .iter()
            .map(|b| b.value())
            .filter(|&b| b > 1e-18 && b < t_stop)
            .collect::<Vec<_>>()
            .into_iter()
            .peekable();
        while t < t_stop - 1e-18 {
            let mut next = t + dt;
            while let Some(&bp) = bp_iter.peek() {
                if bp <= t + 1e-18 {
                    bp_iter.next();
                    continue;
                }
                if bp < next {
                    next = bp;
                }
                break;
            }
            if next > t_stop {
                next = t_stop;
            }
            times.push(next);
            t = next;
        }

        let mut x = initial.raw.clone();
        let trapezoidal = matches!(self.integrator, Integrator::Trapezoidal);

        let mut samples_v: Vec<Vec<f64>> = Vec::with_capacity(times.len() + 1);
        let mut sample_times: Vec<f64> = Vec::with_capacity(times.len() + 1);
        let mut source_currents: HashMap<String, Vec<f64>> = HashMap::new();
        let mut energy: HashMap<String, f64> = HashMap::new();
        for (idx, e) in self.circuit.elements().iter().enumerate() {
            if let Element::VoltageSource { name, .. } = e {
                let _ = idx;
                source_currents.insert(name.clone(), Vec::with_capacity(times.len() + 1));
                energy.insert(name.clone(), 0.0);
            }
        }

        let mut record = |t: f64, x: &[f64], sc: &mut HashMap<String, Vec<f64>>| {
            sample_times.push(t);
            let n = self.circuit.node_count();
            let mut row = vec![0.0; n];
            row[1..n].copy_from_slice(&x[..n - 1]);
            samples_v.push(row);
            for (idx, e) in self.circuit.elements().iter().enumerate() {
                if let Element::VoltageSource { name, .. } = e {
                    let r = layout.branch_of_element[&idx];
                    if let Some(trace) = sc.get_mut(name) {
                        trace.push(x[r]);
                    }
                }
            }
        };
        record(0.0, &x, &mut source_currents);

        let mut t_prev = 0.0;
        for &t_now in &times {
            let step = t_now - t_prev;
            let caps = CapMode::Companion {
                dt: step,
                states: &cap_states,
                trapezoidal,
            };
            newton_solve_in(
                self.circuit,
                &layout,
                Second(t_now),
                self.temp,
                caps,
                &crate::mna::SolveSettings::NOMINAL,
                &mut x,
                &self.options,
                ws,
            )?;

            // Update capacitor companion states.
            for (idx, e) in self.circuit.elements().iter().enumerate() {
                if let Element::Capacitor {
                    a, b, capacitance, ..
                } = e
                {
                    let va = layout.voltage(&x, *a);
                    let vb = layout.voltage(&x, *b);
                    let v_new = va - vb;
                    if let Some(state) = cap_states.get_mut(&idx) {
                        let c = capacitance.value();
                        let i_new = if trapezoidal {
                            2.0 * c / step * (v_new - state.v_prev) - state.i_prev
                        } else {
                            c / step * (v_new - state.v_prev)
                        };
                        state.v_prev = v_new;
                        state.i_prev = i_new;
                    }
                }
            }

            // Energy accounting: E += v·(−i)·dt per voltage source, with
            // the MNA branch current flowing pos→neg inside the source.
            for (idx, e) in self.circuit.elements().iter().enumerate() {
                if let Element::VoltageSource { name, waveform, .. } = e {
                    let r = layout.branch_of_element[&idx];
                    let v = waveform.at(Second(t_now)).value();
                    let delivered = -v * x[r] * step;
                    if let Some(e) = energy.get_mut(name) {
                        *e += delivered;
                    }
                }
            }

            record(t_now, &x, &mut source_currents);
            t_prev = t_now;
        }

        Ok(TransientResult {
            times: sample_times,
            voltages: samples_v,
            source_currents,
            energy,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::{Element, SwitchSchedule};
    use crate::Waveform;
    use ferrocim_units::{Farad, Ohm};

    #[test]
    fn rc_charging_matches_analytic() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.add(Element::vsource(
            "V1",
            vin,
            NodeId::GROUND,
            Waveform::step(Volt(0.0), Volt(1.0), Second(1e-12)),
        ))
        .unwrap();
        ckt.add(Element::resistor("R1", vin, out, Ohm(1e3)))
            .unwrap();
        ckt.add(Element::Capacitor {
            name: "C1".into(),
            a: out,
            b: NodeId::GROUND,
            capacitance: Farad(1e-12),
            initial: Some(Volt(0.0)),
        })
        .unwrap();
        // τ = 1 ns; simulate 5 τ with 1000 steps.
        let res = TransientAnalysis::new(&ckt, Second(5e-12), Second(5e-9))
            .run()
            .unwrap();
        let v_end = res.final_voltage(out).value();
        let expected = 1.0 - (-5.0f64).exp();
        assert!(
            (v_end - expected).abs() < 0.01,
            "v_end {v_end} vs {expected}"
        );
        // Check a mid-trace point at t ≈ τ.
        let trace = res.trace(out);
        let (_, v_tau) = trace
            .iter()
            .min_by(|a, b| {
                (a.0.value() - 1e-9)
                    .abs()
                    .total_cmp(&(b.0.value() - 1e-9).abs())
            })
            .copied()
            .unwrap();
        let expected_tau = 1.0 - (-1.0f64).exp();
        assert!((v_tau.value() - expected_tau).abs() < 0.02);
    }

    #[test]
    fn trapezoidal_is_more_accurate_than_be_on_coarse_grid() {
        let build = || {
            let mut ckt = Circuit::new();
            let vin = ckt.node("in");
            let out = ckt.node("out");
            ckt.add(Element::vdc("V1", vin, NodeId::GROUND, Volt(1.0)))
                .unwrap();
            ckt.add(Element::resistor("R1", vin, out, Ohm(1e3)))
                .unwrap();
            ckt.add(Element::Capacitor {
                name: "C1".into(),
                a: out,
                b: NodeId::GROUND,
                capacitance: Farad(1e-12),
                initial: Some(Volt(0.0)),
            })
            .unwrap();
            ckt
        };
        let exact = 1.0 - (-2.0f64).exp(); // at t = 2τ
        let ckt = build();
        let be = TransientAnalysis::new(&ckt, Second(2e-10), Second(2e-9))
            .run()
            .unwrap()
            .final_voltage(ckt.find_node("out").unwrap())
            .value();
        let trap = TransientAnalysis::new(&ckt, Second(2e-10), Second(2e-9))
            .with_integrator(Integrator::Trapezoidal)
            .run()
            .unwrap()
            .final_voltage(ckt.find_node("out").unwrap())
            .value();
        assert!(
            (trap - exact).abs() < (be - exact).abs(),
            "trap err {} vs be err {}",
            (trap - exact).abs(),
            (be - exact).abs()
        );
    }

    #[test]
    fn charge_sharing_between_capacitors() {
        // C1 (1 fF) charged to 1 V shares into C2 (1 fF) at 0 V through
        // a switch closing at 1 ns: both settle at 0.5 V.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add(Element::Capacitor {
            name: "C1".into(),
            a,
            b: NodeId::GROUND,
            capacitance: Farad(1e-15),
            initial: Some(Volt(1.0)),
        })
        .unwrap();
        ckt.add(Element::Capacitor {
            name: "C2".into(),
            a: b,
            b: NodeId::GROUND,
            capacitance: Farad(1e-15),
            initial: Some(Volt(0.0)),
        })
        .unwrap();
        ckt.add(Element::switch(
            "S1",
            a,
            b,
            SwitchSchedule::open().then_at(Second(1e-9), true),
        ))
        .unwrap();
        let res = TransientAnalysis::new(&ckt, Second(1e-12), Second(3e-9))
            .run()
            .unwrap();
        let va = res.final_voltage(a).value();
        let vb = res.final_voltage(b).value();
        assert!((va - 0.5).abs() < 0.01, "va {va}");
        assert!((vb - 0.5).abs() < 0.01, "vb {vb}");
    }

    #[test]
    fn energy_accounting_matches_rc_dissipation() {
        // Charging C through R from a step source: the source delivers
        // C·V² total; half stores on C, half burns in R.
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.add(Element::vdc("V1", vin, NodeId::GROUND, Volt(1.0)))
            .unwrap();
        ckt.add(Element::resistor("R1", vin, out, Ohm(1e3)))
            .unwrap();
        ckt.add(Element::Capacitor {
            name: "C1".into(),
            a: out,
            b: NodeId::GROUND,
            capacitance: Farad(1e-12),
            initial: Some(Volt(0.0)),
        })
        .unwrap();
        let res = TransientAnalysis::new(&ckt, Second(2e-12), Second(10e-9))
            .run()
            .unwrap();
        let delivered = res.energy_delivered("V1").unwrap().value();
        let expected = 1e-12 * 1.0 * 1.0; // C·V²
        assert!(
            (delivered - expected).abs() < 0.03 * expected,
            "delivered {delivered} vs {expected}"
        );
    }

    #[test]
    fn rejects_bad_timestep() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add(Element::vdc("V1", a, NodeId::GROUND, Volt(1.0)))
            .unwrap();
        assert!(matches!(
            TransientAnalysis::new(&ckt, Second(0.0), Second(1e-9)).run(),
            Err(SpiceError::InvalidValue { .. })
        ));
        assert!(matches!(
            TransientAnalysis::new(&ckt, Second(1e-9), Second(0.0)).run(),
            Err(SpiceError::InvalidValue { .. })
        ));
    }

    #[test]
    fn breakpoints_are_not_stepped_over() {
        // A 10 ps pulse inside a 1 ns-step simulation must still be seen.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add(Element::vsource(
            "V1",
            a,
            NodeId::GROUND,
            Waveform::Pulse {
                v0: Volt(0.0),
                v1: Volt(1.0),
                delay: Second(0.5e-9),
                rise: Second(1e-12),
                width: Second(10e-12),
                fall: Second(1e-12),
            },
        ))
        .unwrap();
        ckt.add(Element::resistor("R1", a, NodeId::GROUND, Ohm(1e3)))
            .unwrap();
        let res = TransientAnalysis::new(&ckt, Second(1e-9), Second(3e-9))
            .run()
            .unwrap();
        let peak = res
            .trace(a)
            .iter()
            .map(|(_, v)| v.value())
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(peak > 0.99, "pulse peak missed: {peak}");
    }

    #[test]
    fn final_source_current_probe() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add(Element::vdc("V1", a, NodeId::GROUND, Volt(1.0)))
            .unwrap();
        ckt.add(Element::resistor("R1", a, NodeId::GROUND, Ohm(1e3)))
            .unwrap();
        let res = TransientAnalysis::new(&ckt, Second(1e-10), Second(1e-9))
            .run()
            .unwrap();
        let i = res.final_source_current("V1").unwrap().value();
        assert!((i + 1e-3).abs() < 1e-8, "i {i}");
        assert!(res.final_source_current("nope").is_err());
    }
}
