//! Transient analysis: implicit integration with breakpoint alignment,
//! per-source energy accounting, and full waveform capture.
//!
//! Two stepping modes share one engine, both built through
//! [`TransientAnalysis::over`]:
//!
//! * **Fixed-step** (chain [`TransientAnalysis::with_fixed_step`]) —
//!   the caller picks `dt`; every step lands on the uniform grid (plus
//!   breakpoints).
//! * **Adaptive** (the default) — the step size is
//!   controlled by a step-doubling local-truncation-error estimate:
//!   each step is solved once at full size and again as two half
//!   steps; the difference bounds the LTE, steps violating the
//!   tolerance are rejected and halved (composing with the
//!   [`RescuePolicy`] ladder once the floor `dt_min` is reached), and
//!   easy stretches grow the step toward `dt_max`. The accepted
//!   solution is always the more accurate half-step one.

use crate::dc::OperatingPoint;
use crate::health::HealthPolicy;
use crate::mna::{newton_solve_in, CapMode, CapState, Layout, NewtonOptions};
use crate::netlist::{Circuit, Element, NodeId};
use crate::rescue::{is_rescuable, rescue_solve, RescuePolicy};
use crate::solver::SolverConfig;
use crate::{Budget, SpiceError, Workspace};
use ferrocim_telemetry::{Event, Telemetry};
use ferrocim_units::{Ampere, Celsius, Joule, Second, Volt};
use std::collections::HashMap;

/// The implicit integration method for capacitors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Integrator {
    /// Backward Euler: first-order, L-stable, no numerical ringing.
    /// The default — charge-sharing steps with ideal switches are stiff.
    #[default]
    BackwardEuler,
    /// Trapezoidal rule: second-order accurate, may ring on sharp edges.
    Trapezoidal,
}

/// Step accounting for a transient run.
///
/// A fixed-step run reports every grid step as accepted; an adaptive
/// run additionally counts the steps rejected by the LTE controller or
/// Newton divergence, and the steps that only converged through the
/// [`RescuePolicy`] ladder at the `dt_min` floor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StepReport {
    /// Steps whose solution was kept.
    pub accepted: usize,
    /// Steps discarded (LTE violation or Newton divergence) and retried
    /// at a smaller size.
    pub rejected: usize,
    /// Accepted steps that required the rescue ladder to converge.
    pub rescued: usize,
}

impl StepReport {
    /// Total step attempts, accepted plus rejected.
    pub fn attempted(&self) -> usize {
        self.accepted + self.rejected
    }
}

/// Knobs for the adaptive step controller.
///
/// Defaults come from [`AdaptiveOptions::for_duration`], which scales
/// the step bounds to the simulated interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveOptions {
    /// Per-step local-truncation-error tolerance on any node voltage,
    /// volts.
    pub lte_tol: f64,
    /// Smallest allowed step. At this floor an LTE violation is
    /// force-accepted (never livelocks) and Newton divergence escalates
    /// to the rescue ladder.
    pub dt_min: Second,
    /// Largest allowed step.
    pub dt_max: Second,
    /// First step attempted after `t = 0`.
    pub dt_init: Second,
    /// Cap on per-step growth of the step size (≥ 1).
    pub max_growth: f64,
    /// Safety factor applied to the optimal-step estimate, in `(0, 1]`.
    pub safety: f64,
}

impl AdaptiveOptions {
    /// Defaults scaled to a run of length `t_stop`: tolerance 100 µV,
    /// steps between `t_stop/10⁹` and `t_stop/20`, starting at
    /// `t_stop/1000`.
    pub fn for_duration(t_stop: Second) -> AdaptiveOptions {
        let t = t_stop.value();
        AdaptiveOptions {
            lte_tol: 1e-4,
            dt_min: Second(t * 1e-9),
            dt_max: Second(t / 20.0),
            dt_init: Second(t * 1e-3),
            max_growth: 2.0,
            safety: 0.9,
        }
    }

    fn validate(&self) -> Result<(), SpiceError> {
        let check = |name: &str, value: f64, ok: bool, requirement: &'static str| {
            if ok {
                Ok(())
            } else {
                Err(SpiceError::InvalidValue {
                    name: name.to_string(),
                    value,
                    requirement,
                })
            }
        };
        check(
            "lte_tol",
            self.lte_tol,
            self.lte_tol > 0.0 && self.lte_tol.is_finite(),
            "a positive finite voltage tolerance",
        )?;
        let dt_min = self.dt_min.value();
        let dt_max = self.dt_max.value();
        let dt_init = self.dt_init.value();
        check(
            "dt_min",
            dt_min,
            dt_min > 0.0 && dt_min.is_finite(),
            "a positive finite step floor",
        )?;
        check(
            "dt_max",
            dt_max,
            dt_max >= dt_min && dt_max.is_finite(),
            "a finite step ceiling at least dt_min",
        )?;
        check(
            "dt_init",
            dt_init,
            dt_init > 0.0 && dt_init.is_finite(),
            "a positive finite initial step",
        )?;
        check(
            "max_growth",
            self.max_growth,
            self.max_growth >= 1.0 && self.max_growth.is_finite(),
            "a growth cap of at least 1",
        )?;
        check(
            "safety",
            self.safety,
            self.safety > 0.0 && self.safety <= 1.0,
            "a safety factor in (0, 1]",
        )
    }
}

/// Result of a transient run: sampled node voltages, source currents,
/// and delivered-energy integrals.
#[derive(Debug, Clone)]
pub struct TransientResult {
    times: Vec<f64>,
    /// `voltages[sample][node_index]`.
    voltages: Vec<Vec<f64>>,
    /// Per-source sampled branch currents.
    source_currents: HashMap<String, Vec<f64>>,
    /// Per-source delivered energy integral.
    energy: HashMap<String, f64>,
    /// Step accounting for the run.
    steps: StepReport,
}

impl TransientResult {
    /// The sampled time points.
    pub fn times(&self) -> Vec<Second> {
        self.times.iter().map(|&t| Second(t)).collect()
    }

    /// Number of stored samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// `true` if the run produced no samples.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// How many steps were accepted, rejected, and rescued.
    pub fn step_report(&self) -> StepReport {
        self.steps
    }

    /// The node voltage at a sample index.
    ///
    /// # Panics
    ///
    /// Panics if `sample` is out of range.
    pub fn voltage_at(&self, node: NodeId, sample: usize) -> Volt {
        Volt(self.voltages[sample][node.index()])
    }

    /// The node voltage at the final time point.
    pub fn final_voltage(&self, node: NodeId) -> Volt {
        Volt(self.voltages[self.voltages.len() - 1][node.index()])
    }

    /// The full `(t, v)` trace of a node.
    pub fn trace(&self, node: NodeId) -> Vec<(Second, Volt)> {
        self.times
            .iter()
            .zip(&self.voltages)
            .map(|(&t, row)| (Second(t), Volt(row[node.index()])))
            .collect()
    }

    /// The node voltage linearly interpolated at an arbitrary time
    /// inside the simulated interval (clamped outside it). Useful for
    /// comparing runs sampled on different grids.
    pub fn voltage_interp(&self, node: NodeId, t: Second) -> Volt {
        let t = t.value();
        let idx = node.index();
        match self.times.iter().position(|&ti| ti >= t) {
            None => Volt(self.voltages[self.voltages.len() - 1][idx]),
            Some(0) => Volt(self.voltages[0][idx]),
            Some(i) => {
                let (t0, t1) = (self.times[i - 1], self.times[i]);
                let (v0, v1) = (self.voltages[i - 1][idx], self.voltages[i][idx]);
                if t1 <= t0 {
                    Volt(v1)
                } else {
                    Volt(v0 + (v1 - v0) * (t - t0) / (t1 - t0))
                }
            }
        }
    }

    /// The branch current of a voltage source at the final time point.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownElement`] for unknown source names.
    pub fn final_source_current(&self, name: &str) -> Result<Ampere, SpiceError> {
        self.source_currents
            .get(name)
            .and_then(|v| v.last().copied())
            .map(Ampere)
            .ok_or_else(|| SpiceError::UnknownElement {
                name: name.to_string(),
            })
    }

    /// The energy delivered by a voltage source over the run (positive
    /// when the source did net work on the circuit).
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownElement`] for unknown source names.
    pub fn energy_delivered(&self, name: &str) -> Result<Joule, SpiceError> {
        self.energy
            .get(name)
            .map(|&e| Joule(e))
            .ok_or_else(|| SpiceError::UnknownElement {
                name: name.to_string(),
            })
    }

    /// Total energy delivered by all sources.
    ///
    /// Summed in source-name order so the value is reproducible to the
    /// last bit across runs (hash-map iteration order is not).
    pub fn total_energy_delivered(&self) -> Joule {
        let mut names: Vec<&String> = self.energy.keys().collect();
        names.sort_unstable();
        Joule(names.iter().map(|n| self.energy[*n]).sum())
    }
}

/// How the transient advances time.
#[derive(Debug, Clone)]
enum Stepping {
    Fixed(Second),
    Adaptive(AdaptiveOptions),
}

/// A transient analysis, fixed-step or adaptive.
///
/// Steps are aligned to waveform/switch breakpoints so sharp edges are
/// never stepped over. The initial condition is the DC operating point
/// at `t = 0` unless capacitors carry explicit initial voltages, which
/// take precedence on their branch.
#[derive(Debug, Clone)]
pub struct TransientAnalysis<'a> {
    circuit: &'a Circuit,
    temp: Celsius,
    stepping: Stepping,
    t_stop: Second,
    integrator: Integrator,
    options: NewtonOptions,
    start_from: Option<&'a OperatingPoint>,
    rescue: RescuePolicy,
    budget: Budget,
    telemetry: Telemetry,
    solver: Option<SolverConfig>,
    health: HealthPolicy,
}

impl<'a> TransientAnalysis<'a> {
    /// Creates a transient analysis over `[0, t_stop]`. The default
    /// stepping is adaptive with LTE-controlled step sizing (defaults
    /// from [`AdaptiveOptions::for_duration`]); chain
    /// [`TransientAnalysis::with_fixed_step`] for a uniform grid or
    /// [`TransientAnalysis::with_adaptive_options`] for explicit
    /// controller knobs.
    pub fn over(circuit: &'a Circuit, t_stop: Second) -> Self {
        TransientAnalysis {
            circuit,
            temp: Celsius::ROOM,
            stepping: Stepping::Adaptive(AdaptiveOptions::for_duration(t_stop)),
            t_stop,
            integrator: Integrator::default(),
            options: NewtonOptions::default(),
            start_from: None,
            rescue: RescuePolicy::default(),
            budget: Budget::unlimited(),
            telemetry: Telemetry::off(),
            solver: None,
            health: HealthPolicy::default(),
        }
    }

    /// Sets the simulation temperature.
    pub fn at(mut self, temp: Celsius) -> Self {
        self.temp = temp;
        self
    }

    /// Switches to fixed-step integration on a uniform `dt` grid
    /// (plus breakpoints).
    pub fn with_fixed_step(mut self, dt: Second) -> Self {
        self.stepping = Stepping::Fixed(dt);
        self
    }

    /// Selects the linear-solver backend (see [`SolverConfig`]). When
    /// not set, a run leaves its [`Workspace`]'s own configuration in
    /// force — [`SolverConfig::auto`] for a fresh workspace.
    pub fn with_solver(mut self, config: SolverConfig) -> Self {
        self.solver = Some(config);
        self
    }

    /// Selects the integration method.
    pub fn with_integrator(mut self, integrator: Integrator) -> Self {
        self.integrator = integrator;
        self
    }

    /// Overrides the Newton options.
    pub fn with_options(mut self, options: NewtonOptions) -> Self {
        self.options = options;
        self
    }

    /// Switches to adaptive stepping with explicit controller options.
    pub fn with_adaptive_options(mut self, opts: AdaptiveOptions) -> Self {
        self.stepping = Stepping::Adaptive(opts);
        self
    }

    /// Overrides the convergence-rescue policy used when an adaptive
    /// step diverges at the `dt_min` floor ([`RescuePolicy::none`]
    /// fails fast instead).
    pub fn with_rescue(mut self, policy: RescuePolicy) -> Self {
        self.rescue = policy;
        self
    }

    /// Overrides the numerical-health policy (see [`HealthPolicy`]):
    /// per-step residual certification, bounded iterative refinement,
    /// and the solver degradation ladder. The default policy is on.
    pub fn with_health(mut self, health: HealthPolicy) -> Self {
        self.health = health;
        self
    }

    /// Attaches a resource [`Budget`]: one step is charged per
    /// attempted time step and every Newton iteration counts against
    /// the pool, so a deadline or cancellation aborts mid-run with
    /// [`SpiceError::BudgetExceeded`] / [`SpiceError::Cancelled`].
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Attaches a telemetry handle: every Newton iteration, accepted or
    /// rejected step, and rescue-ladder attempt is emitted through it
    /// (see `ferrocim_telemetry::Event`). The default handle is off and
    /// adds no measurable cost.
    pub fn with_recorder(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Starts from a previously solved operating point instead of
    /// re-solving DC at `t = 0`.
    pub fn start_from(mut self, op: &'a OperatingPoint) -> Self {
        self.start_from = Some(op);
        self
    }

    /// Runs the transient.
    ///
    /// # Errors
    ///
    /// * [`SpiceError::InvalidValue`] for a non-positive `dt` or stop
    ///   time before the first step.
    /// * [`SpiceError::NoConvergence`] / [`SpiceError::SingularMatrix`]
    ///   from the per-step Newton solve.
    /// * [`SpiceError::BudgetExceeded`] / [`SpiceError::Cancelled`]
    ///   when an attached [`Budget`] runs out.
    pub fn run(&self) -> Result<TransientResult, SpiceError> {
        self.run_in(&mut Workspace::new())
    }

    /// [`TransientAnalysis::run`] using a caller-owned [`Workspace`] for
    /// all solver buffers (including the implicit `t = 0` DC solve).
    /// Repeated runs through the same workspace skip the per-step
    /// matrix/vector allocations; the numerical result is bitwise
    /// identical to [`TransientAnalysis::run`].
    ///
    /// # Errors
    ///
    /// Same as [`TransientAnalysis::run`].
    pub fn run_in(&self, ws: &mut Workspace) -> Result<TransientResult, SpiceError> {
        let _span = self.telemetry.span("spice.transient");
        if let Some(config) = self.solver {
            ws.set_solver(config);
        }
        match &self.stepping {
            Stepping::Fixed(dt) => self.run_fixed(*dt, ws),
            Stepping::Adaptive(opts) => self.run_adaptive(opts, ws),
        }
    }

    /// Solves the `t = 0` starting point and seeds capacitor companion
    /// states from it (explicit initial conditions take precedence).
    fn initial_state(
        &self,
        ws: &mut Workspace,
    ) -> Result<(OperatingPoint, HashMap<usize, CapState>), SpiceError> {
        let initial = match self.start_from {
            Some(op) => op.clone(),
            None => crate::DcAnalysis::new(self.circuit)
                .at(self.temp)
                .with_options(self.options)
                .with_budget(self.budget.clone())
                .with_recorder(self.telemetry.clone())
                .with_health(self.health)
                .solve_in(ws)?,
        };
        let mut cap_states: HashMap<usize, CapState> = HashMap::new();
        for (idx, e) in self.circuit.elements().iter().enumerate() {
            if let Element::Capacitor {
                a, b, initial: ic, ..
            } = e
            {
                let v = match ic {
                    Some(v) => v.value(),
                    None => initial.voltage(*a).value() - initial.voltage(*b).value(),
                };
                cap_states.insert(
                    idx,
                    CapState {
                        v_prev: v,
                        i_prev: 0.0,
                    },
                );
            }
        }
        Ok((initial, cap_states))
    }

    /// Breakpoint instants strictly inside `(0, t_stop)`, ascending.
    fn inner_breakpoints(&self, t_stop: f64) -> Vec<f64> {
        self.circuit
            .breakpoints()
            .iter()
            .map(|b| b.value())
            .filter(|&b| b > 1e-18 && b < t_stop)
            .collect()
    }

    fn run_fixed(&self, dt: Second, ws: &mut Workspace) -> Result<TransientResult, SpiceError> {
        if !(dt.value() > 0.0 && dt.value().is_finite()) {
            return Err(SpiceError::InvalidValue {
                name: "dt".to_string(),
                value: dt.value(),
                requirement: "a positive finite timestep",
            });
        }
        if self.t_stop.value() < dt.value() {
            return Err(SpiceError::InvalidValue {
                name: "t_stop".to_string(),
                value: self.t_stop.value(),
                requirement: "at least one timestep long",
            });
        }
        let layout = Layout::of(self.circuit);
        let (initial, mut cap_states) = self.initial_state(ws)?;

        // Breakpoint-aligned time grid.
        let mut times = Vec::new();
        let mut t = 0.0;
        let dt = dt.value();
        let t_stop = self.t_stop.value();
        let mut bp_iter = self.inner_breakpoints(t_stop).into_iter().peekable();
        while t < t_stop - 1e-18 {
            let mut next = t + dt;
            while let Some(&bp) = bp_iter.peek() {
                if bp <= t + 1e-18 {
                    bp_iter.next();
                    continue;
                }
                if bp < next {
                    next = bp;
                }
                break;
            }
            if next > t_stop {
                next = t_stop;
            }
            times.push(next);
            t = next;
        }

        let mut x = initial.raw.clone();
        let trapezoidal = matches!(self.integrator, Integrator::Trapezoidal);

        let mut rec = Recording::new(self.circuit, times.len() + 1);
        rec.record(&layout, 0.0, &x);

        let mut t_prev = 0.0;
        for &t_now in &times {
            self.budget.check()?;
            self.budget.charge_steps(1)?;
            let step = t_now - t_prev;
            let caps = CapMode::Companion {
                dt: step,
                states: &cap_states,
                trapezoidal,
            };
            newton_solve_in(
                self.circuit,
                &layout,
                Second(t_now),
                self.temp,
                caps,
                &crate::mna::SolveSettings::NOMINAL,
                &mut x,
                &self.options,
                &self.budget,
                &self.telemetry,
                &self.health,
                ws,
            )?;
            self.telemetry.emit(|| Event::StepAccepted {
                time: t_now,
                dt: step,
            });
            update_cap_states(
                self.circuit,
                &layout,
                &x,
                &mut cap_states,
                step,
                trapezoidal,
            );
            rec.accumulate_energy(&layout, t_now, &x, step);
            rec.record(&layout, t_now, &x);
            t_prev = t_now;
        }

        let steps = StepReport {
            accepted: times.len(),
            rejected: 0,
            rescued: 0,
        };
        Ok(rec.finish(steps))
    }

    fn run_adaptive(
        &self,
        opts: &AdaptiveOptions,
        ws: &mut Workspace,
    ) -> Result<TransientResult, SpiceError> {
        let t_stop = self.t_stop.value();
        if !(t_stop > 0.0 && t_stop.is_finite()) {
            return Err(SpiceError::InvalidValue {
                name: "t_stop".to_string(),
                value: t_stop,
                requirement: "a positive finite stop time",
            });
        }
        opts.validate()?;

        let layout = Layout::of(self.circuit);
        let (initial, mut cap_states) = self.initial_state(ws)?;
        let trapezoidal = matches!(self.integrator, Integrator::Trapezoidal);
        // Step-doubling error constant: ‖x_full − x_half‖ ≈ (2^p − 1)·LTE
        // with p = 1 for backward Euler, p = 2 for trapezoidal; the dt
        // controller exponent is 1/(p + 1).
        let denom = if trapezoidal { 3.0 } else { 1.0 };
        let inv_order = if trapezoidal { 1.0 / 3.0 } else { 1.0 / 2.0 };
        const FACTOR_MIN: f64 = 0.2;

        let dt_min = opts.dt_min.value();
        let dt_max = opts.dt_max.value().min(t_stop);
        let mut dt = opts.dt_init.value().clamp(dt_min, dt_max);
        let bps = self.inner_breakpoints(t_stop);
        let mut bp_idx = 0usize;

        let mut rec = Recording::new(self.circuit, 128);
        let mut x = initial.raw.clone();
        rec.record(&layout, 0.0, &x);

        let mut x_full = x.clone();
        let mut x_half = x.clone();
        let mut states_half = cap_states.clone();
        let mut report = StepReport::default();
        let mut t = 0.0;

        while t < t_stop - 1e-18 {
            self.budget.check()?;
            self.budget.charge_steps(1)?;

            while bp_idx < bps.len() && bps[bp_idx] <= t + 1e-18 {
                bp_idx += 1;
            }
            let mut target = t + dt;
            let mut clipped = false;
            if bp_idx < bps.len() && bps[bp_idx] < target {
                target = bps[bp_idx];
                clipped = true;
            }
            if target > t_stop {
                target = t_stop;
                clipped = true;
            }
            let h = target - t;
            let at_floor = h <= dt_min * (1.0 + 1e-9);

            let trial = attempt_step(
                self.circuit,
                &layout,
                self.temp,
                &self.options,
                &self.budget,
                &self.telemetry,
                &self.health,
                trapezoidal,
                t,
                h,
                &x,
                &cap_states,
                &mut x_full,
                &mut x_half,
                &mut states_half,
                ws,
            )?;

            match trial {
                StepTrial::Solved { max_diff } => {
                    let lte = max_diff / denom;
                    if lte <= opts.lte_tol || at_floor {
                        // Accept the half-step solution (the more
                        // accurate of the two trials); at the floor an
                        // out-of-tolerance step is accepted anyway so
                        // the run can never livelock.
                        std::mem::swap(&mut x, &mut x_half);
                        std::mem::swap(&mut cap_states, &mut states_half);
                        rec.accumulate_energy(&layout, target, &x, h);
                        rec.record(&layout, target, &x);
                        self.telemetry.emit(|| Event::StepAccepted {
                            time: target,
                            dt: h,
                        });
                        t = target;
                        report.accepted += 1;
                        let factor = if lte > 0.0 {
                            (opts.safety * (opts.lte_tol / lte).powf(inv_order))
                                .clamp(FACTOR_MIN, opts.max_growth)
                        } else {
                            opts.max_growth
                        };
                        let proposed = h * factor;
                        // A breakpoint-clipped easy step says nothing
                        // about the full cruising dt — keep it.
                        dt = if clipped && proposed >= h {
                            dt
                        } else {
                            proposed
                        }
                        .clamp(dt_min, dt_max);
                    } else {
                        self.telemetry
                            .emit(|| Event::StepRejected { time: t, dt: h });
                        report.rejected += 1;
                        dt = (0.5 * h).max(dt_min);
                    }
                }
                StepTrial::Diverged(err) => {
                    if !at_floor {
                        self.telemetry
                            .emit(|| Event::StepRejected { time: t, dt: h });
                        report.rejected += 1;
                        dt = (0.5 * h).max(dt_min);
                    } else if self.rescue.is_enabled() {
                        // Last resort at the floor: the full rescue
                        // ladder on the single full-size step.
                        x_full.copy_from_slice(&x);
                        let caps = CapMode::Companion {
                            dt: h,
                            states: &cap_states,
                            trapezoidal,
                        };
                        rescue_solve(
                            self.circuit,
                            &layout,
                            Second(target),
                            self.temp,
                            caps,
                            &mut x_full,
                            &x,
                            &self.options,
                            &self.rescue,
                            &self.budget,
                            &self.telemetry,
                            &self.health,
                            ws,
                            err,
                        )?;
                        update_cap_states(
                            self.circuit,
                            &layout,
                            &x_full,
                            &mut cap_states,
                            h,
                            trapezoidal,
                        );
                        std::mem::swap(&mut x, &mut x_full);
                        rec.accumulate_energy(&layout, target, &x, h);
                        rec.record(&layout, target, &x);
                        self.telemetry.emit(|| Event::StepAccepted {
                            time: target,
                            dt: h,
                        });
                        t = target;
                        report.accepted += 1;
                        report.rescued += 1;
                        dt = dt_min;
                    } else {
                        return Err(err);
                    }
                }
            }
        }

        Ok(rec.finish(report))
    }
}

/// Outcome of one adaptive trial step.
enum StepTrial {
    /// All three solves converged; `max_diff` is the largest
    /// node-voltage difference between the full-step and half-step
    /// solutions.
    Solved { max_diff: f64 },
    /// A solve failed with a rescuable error (kept for the floor-level
    /// escalation path).
    Diverged(SpiceError),
}

/// Solves one candidate step of size `h` from `(t, x_prev, cap_states)`
/// twice: once whole into `x_full`, once as two half steps into
/// `x_half`/`states_half`. Non-rescuable errors (budget, cancellation)
/// propagate immediately.
#[allow(clippy::too_many_arguments)]
fn attempt_step(
    circuit: &Circuit,
    layout: &Layout,
    temp: Celsius,
    options: &NewtonOptions,
    budget: &Budget,
    tele: &Telemetry,
    health: &HealthPolicy,
    trapezoidal: bool,
    t: f64,
    h: f64,
    x_prev: &[f64],
    cap_states: &HashMap<usize, CapState>,
    x_full: &mut [f64],
    x_half: &mut [f64],
    states_half: &mut HashMap<usize, CapState>,
    ws: &mut Workspace,
) -> Result<StepTrial, SpiceError> {
    x_full.copy_from_slice(x_prev);
    let caps = CapMode::Companion {
        dt: h,
        states: cap_states,
        trapezoidal,
    };
    if let Err(e) = newton_solve_in(
        circuit,
        layout,
        Second(t + h),
        temp,
        caps,
        &crate::mna::SolveSettings::NOMINAL,
        x_full,
        options,
        budget,
        tele,
        health,
        ws,
    ) {
        return if is_rescuable(&e) {
            Ok(StepTrial::Diverged(e))
        } else {
            Err(e)
        };
    }

    x_half.copy_from_slice(x_prev);
    states_half.clone_from(cap_states);
    let hh = 0.5 * h;
    for k in 0..2 {
        let t_sub = if k == 0 { t + hh } else { t + h };
        let caps = CapMode::Companion {
            dt: hh,
            states: states_half,
            trapezoidal,
        };
        if let Err(e) = newton_solve_in(
            circuit,
            layout,
            Second(t_sub),
            temp,
            caps,
            &crate::mna::SolveSettings::NOMINAL,
            x_half,
            options,
            budget,
            tele,
            health,
            ws,
        ) {
            return if is_rescuable(&e) {
                Ok(StepTrial::Diverged(e))
            } else {
                Err(e)
            };
        }
        update_cap_states(circuit, layout, x_half, states_half, hh, trapezoidal);
    }

    let mut max_diff = 0.0f64;
    for i in 0..layout.n_nodes {
        max_diff = max_diff.max((x_full[i] - x_half[i]).abs());
    }
    Ok(StepTrial::Solved { max_diff })
}

/// Advances every capacitor companion state to the solution `x` reached
/// with step size `step`.
fn update_cap_states(
    circuit: &Circuit,
    layout: &Layout,
    x: &[f64],
    states: &mut HashMap<usize, CapState>,
    step: f64,
    trapezoidal: bool,
) {
    for (idx, e) in circuit.elements().iter().enumerate() {
        if let Element::Capacitor {
            a, b, capacitance, ..
        } = e
        {
            let va = layout.voltage(x, *a);
            let vb = layout.voltage(x, *b);
            let v_new = va - vb;
            if let Some(state) = states.get_mut(&idx) {
                let c = capacitance.value();
                let i_new = if trapezoidal {
                    2.0 * c / step * (v_new - state.v_prev) - state.i_prev
                } else {
                    c / step * (v_new - state.v_prev)
                };
                state.v_prev = v_new;
                state.i_prev = i_new;
            }
        }
    }
}

/// Sampled-waveform and energy accumulation shared by both stepping
/// modes.
struct Recording<'c> {
    circuit: &'c Circuit,
    sample_times: Vec<f64>,
    samples_v: Vec<Vec<f64>>,
    source_currents: HashMap<String, Vec<f64>>,
    energy: HashMap<String, f64>,
}

impl<'c> Recording<'c> {
    fn new(circuit: &'c Circuit, capacity: usize) -> Recording<'c> {
        let mut source_currents = HashMap::new();
        let mut energy = HashMap::new();
        for e in circuit.elements() {
            if let Element::VoltageSource { name, .. } = e {
                source_currents.insert(name.clone(), Vec::with_capacity(capacity));
                energy.insert(name.clone(), 0.0);
            }
        }
        Recording {
            circuit,
            sample_times: Vec::with_capacity(capacity),
            samples_v: Vec::with_capacity(capacity),
            source_currents,
            energy,
        }
    }

    fn record(&mut self, layout: &Layout, t: f64, x: &[f64]) {
        self.sample_times.push(t);
        let n = self.circuit.node_count();
        let mut row = vec![0.0; n];
        row[1..n].copy_from_slice(&x[..n - 1]);
        self.samples_v.push(row);
        for (idx, e) in self.circuit.elements().iter().enumerate() {
            if let Element::VoltageSource { name, .. } = e {
                let r = layout.branch_of_element[&idx];
                if let Some(trace) = self.source_currents.get_mut(name) {
                    trace.push(x[r]);
                }
            }
        }
    }

    /// Energy accounting: E += v·(−i)·dt per voltage source, with the
    /// MNA branch current flowing pos→neg inside the source.
    fn accumulate_energy(&mut self, layout: &Layout, t: f64, x: &[f64], step: f64) {
        for (idx, e) in self.circuit.elements().iter().enumerate() {
            if let Element::VoltageSource { name, waveform, .. } = e {
                let r = layout.branch_of_element[&idx];
                let v = waveform.at(Second(t)).value();
                let delivered = -v * x[r] * step;
                if let Some(e) = self.energy.get_mut(name) {
                    *e += delivered;
                }
            }
        }
    }

    fn finish(self, steps: StepReport) -> TransientResult {
        TransientResult {
            times: self.sample_times,
            voltages: self.samples_v,
            source_currents: self.source_currents,
            energy: self.energy,
            steps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::{Element, SwitchSchedule};
    use crate::Waveform;
    use ferrocim_units::{Farad, Ohm};

    fn rc_circuit() -> Circuit {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.add(Element::vsource(
            "V1",
            vin,
            NodeId::GROUND,
            Waveform::step(Volt(0.0), Volt(1.0), Second(1e-12)),
        ))
        .unwrap();
        ckt.add(Element::resistor("R1", vin, out, Ohm(1e3)))
            .unwrap();
        ckt.add(Element::Capacitor {
            name: "C1".into(),
            a: out,
            b: NodeId::GROUND,
            capacitance: Farad(1e-12),
            initial: Some(Volt(0.0)),
        })
        .unwrap();
        ckt
    }

    #[test]
    fn rc_charging_matches_analytic() {
        let ckt = rc_circuit();
        let out = ckt.find_node("out").unwrap();
        // τ = 1 ns; simulate 5 τ with 1000 steps.
        let res = TransientAnalysis::over(&ckt, Second(5e-9))
            .with_fixed_step(Second(5e-12))
            .run()
            .unwrap();
        let v_end = res.final_voltage(out).value();
        let expected = 1.0 - (-5.0f64).exp();
        assert!(
            (v_end - expected).abs() < 0.01,
            "v_end {v_end} vs {expected}"
        );
        // Check a mid-trace point at t ≈ τ.
        let trace = res.trace(out);
        let (_, v_tau) = trace
            .iter()
            .min_by(|a, b| {
                (a.0.value() - 1e-9)
                    .abs()
                    .total_cmp(&(b.0.value() - 1e-9).abs())
            })
            .copied()
            .unwrap();
        let expected_tau = 1.0 - (-1.0f64).exp();
        assert!((v_tau.value() - expected_tau).abs() < 0.02);
        let report = res.step_report();
        assert_eq!(report.accepted, res.len() - 1);
        assert_eq!(report.rejected, 0);
        assert_eq!(report.rescued, 0);
    }

    #[test]
    fn adaptive_rc_matches_analytic_with_fewer_steps() {
        let ckt = rc_circuit();
        let out = ckt.find_node("out").unwrap();
        let adaptive = TransientAnalysis::over(&ckt, Second(5e-9)).run().unwrap();
        let report = adaptive.step_report();
        assert!(report.accepted > 0);
        // Endpoint against the analytic exponential.
        let v_end = adaptive.final_voltage(out).value();
        let expected = 1.0 - (-5.0f64).exp();
        assert!(
            (v_end - expected).abs() < 5e-3,
            "v_end {v_end} vs {expected}"
        );
        // Far fewer steps than the fine fixed-step reference.
        let fixed = TransientAnalysis::over(&ckt, Second(5e-9))
            .with_fixed_step(Second(5e-13))
            .run()
            .unwrap();
        assert!(
            report.attempted() < fixed.len() / 4,
            "adaptive attempted {} vs fixed {}",
            report.attempted(),
            fixed.len()
        );
    }

    #[test]
    fn adaptive_grows_steps_on_easy_stretches() {
        let ckt = rc_circuit();
        let res = TransientAnalysis::over(&ckt, Second(5e-9)).run().unwrap();
        let times = res.times();
        let first = times[1].value() - times[0].value();
        let mut largest = 0.0f64;
        for w in times.windows(2) {
            largest = largest.max(w[1].value() - w[0].value());
        }
        assert!(
            largest > 4.0 * first,
            "steps never grew: first {first}, largest {largest}"
        );
    }

    #[test]
    fn adaptive_respects_breakpoints() {
        // A 10 ps pulse must still be resolved by the adaptive grid.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add(Element::vsource(
            "V1",
            a,
            NodeId::GROUND,
            Waveform::Pulse {
                v0: Volt(0.0),
                v1: Volt(1.0),
                delay: Second(0.5e-9),
                rise: Second(1e-12),
                width: Second(10e-12),
                fall: Second(1e-12),
            },
        ))
        .unwrap();
        ckt.add(Element::resistor("R1", a, NodeId::GROUND, Ohm(1e3)))
            .unwrap();
        let res = TransientAnalysis::over(&ckt, Second(3e-9)).run().unwrap();
        let peak = res
            .trace(a)
            .iter()
            .map(|(_, v)| v.value())
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(peak > 0.99, "pulse peak missed: {peak}");
    }

    #[test]
    fn adaptive_trapezoidal_matches_analytic() {
        let ckt = rc_circuit();
        let out = ckt.find_node("out").unwrap();
        let res = TransientAnalysis::over(&ckt, Second(5e-9))
            .with_integrator(Integrator::Trapezoidal)
            .run()
            .unwrap();
        let v_end = res.final_voltage(out).value();
        let expected = 1.0 - (-5.0f64).exp();
        assert!((v_end - expected).abs() < 5e-3, "v_end {v_end}");
    }

    #[test]
    fn adaptive_rejects_bad_options() {
        let ckt = rc_circuit();
        let bad = AdaptiveOptions {
            lte_tol: -1.0,
            ..AdaptiveOptions::for_duration(Second(1e-9))
        };
        assert!(matches!(
            TransientAnalysis::over(&ckt, Second(1e-9))
                .with_adaptive_options(bad)
                .run(),
            Err(SpiceError::InvalidValue { .. })
        ));
        let bad = AdaptiveOptions {
            dt_min: Second(1e-9),
            dt_max: Second(1e-12),
            ..AdaptiveOptions::for_duration(Second(1e-9))
        };
        assert!(matches!(
            TransientAnalysis::over(&ckt, Second(1e-9))
                .with_adaptive_options(bad)
                .run(),
            Err(SpiceError::InvalidValue { .. })
        ));
    }

    #[test]
    fn trapezoidal_is_more_accurate_than_be_on_coarse_grid() {
        let build = || {
            let mut ckt = Circuit::new();
            let vin = ckt.node("in");
            let out = ckt.node("out");
            ckt.add(Element::vdc("V1", vin, NodeId::GROUND, Volt(1.0)))
                .unwrap();
            ckt.add(Element::resistor("R1", vin, out, Ohm(1e3)))
                .unwrap();
            ckt.add(Element::Capacitor {
                name: "C1".into(),
                a: out,
                b: NodeId::GROUND,
                capacitance: Farad(1e-12),
                initial: Some(Volt(0.0)),
            })
            .unwrap();
            ckt
        };
        let exact = 1.0 - (-2.0f64).exp(); // at t = 2τ
        let ckt = build();
        let be = TransientAnalysis::over(&ckt, Second(2e-9))
            .with_fixed_step(Second(2e-10))
            .run()
            .unwrap()
            .final_voltage(ckt.find_node("out").unwrap())
            .value();
        let trap = TransientAnalysis::over(&ckt, Second(2e-9))
            .with_fixed_step(Second(2e-10))
            .with_integrator(Integrator::Trapezoidal)
            .run()
            .unwrap()
            .final_voltage(ckt.find_node("out").unwrap())
            .value();
        assert!(
            (trap - exact).abs() < (be - exact).abs(),
            "trap err {} vs be err {}",
            (trap - exact).abs(),
            (be - exact).abs()
        );
    }

    #[test]
    fn charge_sharing_between_capacitors() {
        // C1 (1 fF) charged to 1 V shares into C2 (1 fF) at 0 V through
        // a switch closing at 1 ns: both settle at 0.5 V.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add(Element::Capacitor {
            name: "C1".into(),
            a,
            b: NodeId::GROUND,
            capacitance: Farad(1e-15),
            initial: Some(Volt(1.0)),
        })
        .unwrap();
        ckt.add(Element::Capacitor {
            name: "C2".into(),
            a: b,
            b: NodeId::GROUND,
            capacitance: Farad(1e-15),
            initial: Some(Volt(0.0)),
        })
        .unwrap();
        ckt.add(Element::switch(
            "S1",
            a,
            b,
            SwitchSchedule::open().then_at(Second(1e-9), true),
        ))
        .unwrap();
        let res = TransientAnalysis::over(&ckt, Second(3e-9))
            .with_fixed_step(Second(1e-12))
            .run()
            .unwrap();
        let va = res.final_voltage(a).value();
        let vb = res.final_voltage(b).value();
        assert!((va - 0.5).abs() < 0.01, "va {va}");
        assert!((vb - 0.5).abs() < 0.01, "vb {vb}");
    }

    #[test]
    fn adaptive_charge_sharing_settles_correctly() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add(Element::Capacitor {
            name: "C1".into(),
            a,
            b: NodeId::GROUND,
            capacitance: Farad(1e-15),
            initial: Some(Volt(1.0)),
        })
        .unwrap();
        ckt.add(Element::Capacitor {
            name: "C2".into(),
            a: b,
            b: NodeId::GROUND,
            capacitance: Farad(1e-15),
            initial: Some(Volt(0.0)),
        })
        .unwrap();
        ckt.add(Element::switch(
            "S1",
            a,
            b,
            SwitchSchedule::open().then_at(Second(1e-9), true),
        ))
        .unwrap();
        let res = TransientAnalysis::over(&ckt, Second(3e-9)).run().unwrap();
        let va = res.final_voltage(a).value();
        let vb = res.final_voltage(b).value();
        assert!((va - 0.5).abs() < 0.01, "va {va}");
        assert!((vb - 0.5).abs() < 0.01, "vb {vb}");
    }

    #[test]
    fn energy_accounting_matches_rc_dissipation() {
        // Charging C through R from a step source: the source delivers
        // C·V² total; half stores on C, half burns in R.
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.add(Element::vdc("V1", vin, NodeId::GROUND, Volt(1.0)))
            .unwrap();
        ckt.add(Element::resistor("R1", vin, out, Ohm(1e3)))
            .unwrap();
        ckt.add(Element::Capacitor {
            name: "C1".into(),
            a: out,
            b: NodeId::GROUND,
            capacitance: Farad(1e-12),
            initial: Some(Volt(0.0)),
        })
        .unwrap();
        let res = TransientAnalysis::over(&ckt, Second(10e-9))
            .with_fixed_step(Second(2e-12))
            .run()
            .unwrap();
        let delivered = res.energy_delivered("V1").unwrap().value();
        let expected = 1e-12 * 1.0 * 1.0; // C·V²
        assert!(
            (delivered - expected).abs() < 0.03 * expected,
            "delivered {delivered} vs {expected}"
        );
    }

    #[test]
    fn rejects_bad_timestep() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add(Element::vdc("V1", a, NodeId::GROUND, Volt(1.0)))
            .unwrap();
        assert!(matches!(
            TransientAnalysis::over(&ckt, Second(1e-9))
                .with_fixed_step(Second(0.0))
                .run(),
            Err(SpiceError::InvalidValue { .. })
        ));
        assert!(matches!(
            TransientAnalysis::over(&ckt, Second(0.0))
                .with_fixed_step(Second(1e-9))
                .run(),
            Err(SpiceError::InvalidValue { .. })
        ));
    }

    #[test]
    fn breakpoints_are_not_stepped_over() {
        // A 10 ps pulse inside a 1 ns-step simulation must still be seen.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add(Element::vsource(
            "V1",
            a,
            NodeId::GROUND,
            Waveform::Pulse {
                v0: Volt(0.0),
                v1: Volt(1.0),
                delay: Second(0.5e-9),
                rise: Second(1e-12),
                width: Second(10e-12),
                fall: Second(1e-12),
            },
        ))
        .unwrap();
        ckt.add(Element::resistor("R1", a, NodeId::GROUND, Ohm(1e3)))
            .unwrap();
        let res = TransientAnalysis::over(&ckt, Second(3e-9))
            .with_fixed_step(Second(1e-9))
            .run()
            .unwrap();
        let peak = res
            .trace(a)
            .iter()
            .map(|(_, v)| v.value())
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(peak > 0.99, "pulse peak missed: {peak}");
    }

    #[test]
    fn final_source_current_probe() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add(Element::vdc("V1", a, NodeId::GROUND, Volt(1.0)))
            .unwrap();
        ckt.add(Element::resistor("R1", a, NodeId::GROUND, Ohm(1e3)))
            .unwrap();
        let res = TransientAnalysis::over(&ckt, Second(1e-9))
            .with_fixed_step(Second(1e-10))
            .run()
            .unwrap();
        let i = res.final_source_current("V1").unwrap().value();
        assert!((i + 1e-3).abs() < 1e-8, "i {i}");
        assert!(res.final_source_current("nope").is_err());
    }
}
