//! DC sweep analysis: repeated operating points over a swept source
//! value, with warm starting between points — the workhorse behind
//! `I_D–V_G` characteristic curves (the paper's Fig. 1).

use crate::dc::{DcAnalysis, OperatingPoint};
use crate::mna::NewtonOptions;
use crate::netlist::{Circuit, Element};
use crate::solver::SolverConfig;
use crate::{Budget, SpiceError, Waveform, Workspace};
use ferrocim_telemetry::Telemetry;
use ferrocim_units::{Celsius, Volt};

/// A DC sweep of one voltage source over a list of values.
///
/// The circuit is cloned once; at each sweep point the named source's
/// waveform is replaced by the DC value and the operating point is
/// solved, warm-started from the previous point (which makes fine
/// sweeps through exponential device regions fast and robust).
///
/// # Examples
///
/// ```
/// use ferrocim_spice::{Circuit, DcSweep, Element, NodeId};
/// use ferrocim_spice::sweep::voltage_sweep;
/// use ferrocim_units::{Celsius, Ohm, Volt};
///
/// # fn main() -> Result<(), ferrocim_spice::SpiceError> {
/// let mut ckt = Circuit::new();
/// let a = ckt.node("a");
/// ckt.add(Element::vdc("V1", a, NodeId::GROUND, Volt(0.0)))?;
/// ckt.add(Element::resistor("R1", a, NodeId::GROUND, Ohm(1e3)))?;
/// let points = DcSweep::new(&ckt, "V1", voltage_sweep(Volt(0.0), Volt(1.0), 5))
///     .at(Celsius(27.0))
///     .solve()?;
/// assert_eq!(points.len(), 5);
/// // Ohm's law at the last point: 1 V across 1 kΩ.
/// let i = points.last().unwrap().1.source_current("V1")?.value();
/// assert!((i + 1e-3).abs() < 1e-8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DcSweep<'a> {
    circuit: &'a Circuit,
    source: String,
    values: Vec<Volt>,
    temp: Celsius,
    options: NewtonOptions,
    budget: Budget,
    telemetry: Telemetry,
    solver: Option<SolverConfig>,
}

impl<'a> DcSweep<'a> {
    /// Creates a sweep of the named voltage source over `values`.
    pub fn new(circuit: &'a Circuit, source: impl Into<String>, values: Vec<Volt>) -> Self {
        DcSweep {
            circuit,
            source: source.into(),
            values,
            temp: Celsius::ROOM,
            options: NewtonOptions::default(),
            budget: Budget::unlimited(),
            telemetry: Telemetry::off(),
            solver: None,
        }
    }

    /// Sets the simulation temperature.
    pub fn at(mut self, temp: Celsius) -> Self {
        self.temp = temp;
        self
    }

    /// Overrides the Newton options.
    pub fn with_options(mut self, options: NewtonOptions) -> Self {
        self.options = options;
        self
    }

    /// Attaches a resource [`Budget`]: one step is charged per sweep
    /// point and every Newton iteration counts against the pool, so a
    /// deadline or cancellation aborts mid-sweep with a typed error.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Attaches a telemetry handle forwarded to every per-point DC
    /// solve, so a recorder observes the warm-started Newton work of
    /// the whole sweep. The default handle is off.
    pub fn with_recorder(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Selects the linear-solver backend for the sweep's shared
    /// [`Workspace`] (see [`SolverConfig`]). The sparse backend runs
    /// its symbolic analysis once at the first point and reuses it for
    /// every later one — the topology never changes across a sweep.
    pub fn with_solver(mut self, config: SolverConfig) -> Self {
        self.solver = Some(config);
        self
    }

    /// Runs the sweep, returning `(value, operating point)` pairs.
    ///
    /// # Errors
    ///
    /// * [`SpiceError::UnknownElement`] if the named source does not
    ///   exist or is not a voltage source.
    /// * Analysis errors from any sweep point.
    pub fn solve(&self) -> Result<Vec<(Volt, OperatingPoint)>, SpiceError> {
        match self.circuit.element(&self.source) {
            Some(Element::VoltageSource { .. }) => {}
            _ => {
                return Err(SpiceError::UnknownElement {
                    name: self.source.clone(),
                })
            }
        }
        let _span = self.telemetry.span("spice.dcsweep");
        let mut working = self.circuit.clone();
        let mut results = Vec::with_capacity(self.values.len());
        let mut ws = match self.solver {
            Some(config) => Workspace::with_solver(config),
            None => Workspace::new(),
        };
        let mut previous: Option<OperatingPoint> = None;
        for &value in &self.values {
            self.budget.check()?;
            self.budget.charge_steps(1)?;
            if let Some(Element::VoltageSource { waveform, .. }) = working.element_mut(&self.source)
            {
                *waveform = Waveform::dc(value);
            }
            let cold = DcAnalysis::new(&working)
                .at(self.temp)
                .with_options(self.options)
                .with_budget(self.budget.clone())
                .with_recorder(self.telemetry.clone());
            let op = match &previous {
                Some(prev) => {
                    match cold.clone().warm_start(prev).solve_in(&mut ws) {
                        Ok(op) => op,
                        // Continuation fallback: a sweep step large
                        // enough to throw the warm start out of the
                        // Newton basin retries from a cold start before
                        // the whole sweep is declared failed.
                        Err(SpiceError::NoConvergence { .. }) => cold.solve_in(&mut ws)?,
                        Err(e) => return Err(e),
                    }
                }
                None => cold.solve_in(&mut ws)?,
            };
            previous = Some(op.clone());
            results.push((value, op));
        }
        Ok(results)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::NodeId;
    use crate::sweep::voltage_sweep;
    use ferrocim_device::{MosfetModel, MosfetParams};
    use ferrocim_units::Ohm;

    #[test]
    fn sweep_traces_a_transistor_transfer_curve() {
        let mut ckt = Circuit::new();
        let g = ckt.node("g");
        let d = ckt.node("d");
        ckt.add(Element::vdc("VG", g, NodeId::GROUND, Volt(0.0)))
            .unwrap();
        ckt.add(Element::vdc("VD", d, NodeId::GROUND, Volt(0.6)))
            .unwrap();
        ckt.add(Element::mosfet(
            "M1",
            d,
            g,
            NodeId::GROUND,
            MosfetModel::new(MosfetParams::nmos_14nm()),
        ))
        .unwrap();
        let points = DcSweep::new(&ckt, "VG", voltage_sweep(Volt(0.0), Volt(1.0), 21))
            .solve()
            .unwrap();
        assert_eq!(points.len(), 21);
        // Drain-source current grows monotonically with gate drive.
        let currents: Vec<f64> = points
            .iter()
            .map(|(_, op)| -op.source_current("VD").unwrap().value())
            .collect();
        for pair in currents.windows(2) {
            assert!(pair[1] >= pair[0] - 1e-15, "{currents:?}");
        }
        assert!(currents[20] / currents[0].max(1e-18) > 1e3);
    }

    #[test]
    fn sweep_rejects_unknown_or_non_source_targets() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add(Element::vdc("V1", a, NodeId::GROUND, Volt(1.0)))
            .unwrap();
        ckt.add(Element::resistor("R1", a, NodeId::GROUND, Ohm(1e3)))
            .unwrap();
        assert!(matches!(
            DcSweep::new(&ckt, "VX", vec![Volt(0.0)]).solve(),
            Err(SpiceError::UnknownElement { .. })
        ));
        assert!(matches!(
            DcSweep::new(&ckt, "R1", vec![Volt(0.0)]).solve(),
            Err(SpiceError::UnknownElement { .. })
        ));
    }

    #[test]
    fn sweep_does_not_mutate_the_input_circuit() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add(Element::vdc("V1", a, NodeId::GROUND, Volt(0.5)))
            .unwrap();
        ckt.add(Element::resistor("R1", a, NodeId::GROUND, Ohm(1e3)))
            .unwrap();
        let _ = DcSweep::new(&ckt, "V1", voltage_sweep(Volt(0.0), Volt(1.0), 3))
            .solve()
            .unwrap();
        match ckt.element("V1") {
            Some(Element::VoltageSource { waveform, .. }) => {
                assert_eq!(waveform.at(ferrocim_units::Second::ZERO), Volt(0.5));
            }
            _ => panic!("source missing"),
        }
    }

    #[test]
    fn empty_sweep_is_empty() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add(Element::vdc("V1", a, NodeId::GROUND, Volt(1.0)))
            .unwrap();
        let points = DcSweep::new(&ckt, "V1", Vec::new()).solve().unwrap();
        assert!(points.is_empty());
    }
}
