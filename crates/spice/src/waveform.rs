//! Time-dependent source waveforms.

use crate::SpiceError;
use ferrocim_units::{Second, Volt};
use serde::{Deserialize, Serialize};

/// A voltage waveform for independent sources.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Waveform {
    /// Constant value.
    Dc(Volt),
    /// A single trapezoidal pulse: `v0` before `delay`, ramping to `v1`
    /// over `rise`, holding for `width`, ramping back over `fall`, and
    /// `v0` afterwards.
    Pulse {
        /// Baseline level.
        v0: Volt,
        /// Pulse level.
        v1: Volt,
        /// Time at which the rising edge starts.
        delay: Second,
        /// Rise time (0 is snapped to an instantaneous edge).
        rise: Second,
        /// Time at the pulse level.
        width: Second,
        /// Fall time (0 is snapped to an instantaneous edge).
        fall: Second,
    },
    /// Piecewise-linear interpolation through `(time, value)` points,
    /// clamped at the first/last values outside the range. Points must
    /// be sorted by time.
    Pwl(Vec<(Second, Volt)>),
}

impl Waveform {
    /// Convenience constructor for a DC level.
    pub fn dc(v: Volt) -> Self {
        Waveform::Dc(v)
    }

    /// Convenience constructor for an instantaneous step from `v0` to
    /// `v1` at time `at`.
    pub fn step(v0: Volt, v1: Volt, at: Second) -> Self {
        Waveform::Pwl(vec![
            (Second::ZERO, v0),
            (at, v0),
            (Second(at.value() + 1e-15), v1),
        ])
    }

    /// Validating constructor for a piecewise-linear waveform: every
    /// time and voltage must be finite and the times nondecreasing.
    ///
    /// # Errors
    ///
    /// [`SpiceError::InvalidValue`] on a NaN/Inf point or an
    /// out-of-order time.
    pub fn pwl(points: Vec<(Second, Volt)>) -> Result<Waveform, SpiceError> {
        for (i, (t, v)) in points.iter().enumerate() {
            if !t.value().is_finite() {
                return Err(SpiceError::InvalidValue {
                    name: format!("pwl[{i}].time"),
                    value: t.value(),
                    requirement: "a finite time",
                });
            }
            if !v.value().is_finite() {
                return Err(SpiceError::InvalidValue {
                    name: format!("pwl[{i}].voltage"),
                    value: v.value(),
                    requirement: "a finite voltage",
                });
            }
            if i > 0 && points[i - 1].0.value() > t.value() {
                return Err(SpiceError::InvalidValue {
                    name: format!("pwl[{i}].time"),
                    value: t.value(),
                    requirement: "nondecreasing in time",
                });
            }
        }
        Ok(Waveform::Pwl(points))
    }

    /// Checks that every voltage and time in the waveform is finite.
    /// Called by [`crate::Circuit::add`] on source elements so NaN/Inf
    /// never reaches the solver.
    pub(crate) fn validate(&self, element: &str) -> Result<(), SpiceError> {
        let bad = |what: &'static str, value: f64| SpiceError::InvalidValue {
            name: format!("{element}.{what}"),
            value,
            requirement: "finite",
        };
        match self {
            Waveform::Dc(v) => {
                if !v.value().is_finite() {
                    return Err(bad("voltage", v.value()));
                }
            }
            Waveform::Pulse {
                v0,
                v1,
                delay,
                rise,
                width,
                fall,
            } => {
                for (what, value) in [
                    ("v0", v0.value()),
                    ("v1", v1.value()),
                    ("delay", delay.value()),
                    ("rise", rise.value()),
                    ("width", width.value()),
                    ("fall", fall.value()),
                ] {
                    if !value.is_finite() {
                        return Err(bad(what, value));
                    }
                }
            }
            Waveform::Pwl(points) => {
                for (t, v) in points {
                    if !t.value().is_finite() {
                        return Err(bad("pwl time", t.value()));
                    }
                    if !v.value().is_finite() {
                        return Err(bad("pwl voltage", v.value()));
                    }
                }
            }
        }
        Ok(())
    }

    /// The value of the waveform at time `t` (with `t ≤ 0` meaning the
    /// initial value, used by the DC operating point).
    pub fn at(&self, t: Second) -> Volt {
        match self {
            Waveform::Dc(v) => *v,
            Waveform::Pulse {
                v0,
                v1,
                delay,
                rise,
                width,
                fall,
            } => {
                let t = t.value();
                let t1 = delay.value();
                let t2 = t1 + rise.value();
                let t3 = t2 + width.value();
                let t4 = t3 + fall.value();
                if t <= t1 {
                    *v0
                } else if t < t2 {
                    *v0 + (*v1 - *v0) * ((t - t1) / (t2 - t1))
                } else if t <= t3 {
                    *v1
                } else if t < t4 {
                    *v1 + (*v0 - *v1) * ((t - t3) / (t4 - t3))
                } else {
                    *v0
                }
            }
            Waveform::Pwl(points) => {
                if points.is_empty() {
                    return Volt::ZERO;
                }
                if t <= points[0].0 {
                    return points[0].1;
                }
                if t >= points[points.len() - 1].0 {
                    return points[points.len() - 1].1;
                }
                let idx = points.partition_point(|(pt, _)| pt.value() <= t.value());
                let (t0, v0) = points[idx - 1];
                let (t1, v1) = points[idx];
                let frac = (t.value() - t0.value()) / (t1.value() - t0.value());
                v0 + (v1 - v0) * frac
            }
        }
    }

    /// Times at which the waveform has corners (derivative
    /// discontinuities). The transient engine aligns timesteps to these
    /// so that fast edges are never stepped over.
    pub fn breakpoints(&self) -> Vec<Second> {
        match self {
            Waveform::Dc(_) => Vec::new(),
            Waveform::Pulse {
                delay,
                rise,
                width,
                fall,
                ..
            } => {
                let t1 = delay.value();
                let t2 = t1 + rise.value();
                let t3 = t2 + width.value();
                let t4 = t3 + fall.value();
                vec![Second(t1), Second(t2), Second(t3), Second(t4)]
            }
            Waveform::Pwl(points) => points.iter().map(|(t, _)| *t).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_is_constant() {
        let w = Waveform::dc(Volt(1.2));
        assert_eq!(w.at(Second::ZERO), Volt(1.2));
        assert_eq!(w.at(Second(1.0)), Volt(1.2));
        assert!(w.breakpoints().is_empty());
    }

    #[test]
    fn pulse_shape() {
        let w = Waveform::Pulse {
            v0: Volt(0.0),
            v1: Volt(1.0),
            delay: Second(1e-9),
            rise: Second(1e-10),
            width: Second(2e-9),
            fall: Second(1e-10),
        };
        assert_eq!(w.at(Second(0.5e-9)), Volt(0.0));
        assert!((w.at(Second(1.05e-9)).value() - 0.5).abs() < 1e-9); // mid-rise
        assert_eq!(w.at(Second(2e-9)), Volt(1.0));
        assert_eq!(w.at(Second(5e-9)), Volt(0.0));
        assert_eq!(w.breakpoints().len(), 4);
    }

    #[test]
    fn pwl_interpolates_and_clamps() {
        let w = Waveform::Pwl(vec![(Second(1e-9), Volt(0.0)), (Second(2e-9), Volt(2.0))]);
        assert_eq!(w.at(Second(0.0)), Volt(0.0)); // clamp left
        assert!((w.at(Second(1.5e-9)).value() - 1.0).abs() < 1e-12);
        assert_eq!(w.at(Second(3e-9)), Volt(2.0)); // clamp right
    }

    #[test]
    fn step_is_sharp() {
        let w = Waveform::step(Volt(0.0), Volt(1.0), Second(1e-9));
        assert_eq!(w.at(Second(0.999e-9)), Volt(0.0));
        assert_eq!(w.at(Second(1.01e-9)), Volt(1.0));
    }

    #[test]
    fn empty_pwl_is_zero() {
        let w = Waveform::Pwl(Vec::new());
        assert_eq!(w.at(Second(1.0)), Volt::ZERO);
    }
}
