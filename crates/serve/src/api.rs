//! The JSON wire contract: request parsing and typed response bodies.
//!
//! Every response the service can produce — success, degraded success,
//! shed, deadline, bad request, internal error — is constructed here,
//! so the taxonomy lives in one place and the probe can assert that
//! *no* response falls outside it. Requests are parsed from
//! [`serde_json::Value`] by hand: the fields are few, the defaults
//! matter (a missing `timeout_ms` must become the server default, not
//! a parse error), and hand-parsing produces precise 400 messages.

use ferrocim_cim::MacPath;
use serde_json::{json, Value};

/// A parsed `POST /v1/mac` body.
#[derive(Debug, Clone, PartialEq)]
pub struct MacApiRequest {
    /// Requesting tenant (defaults to `"anonymous"`).
    pub tenant: String,
    /// Word-line inputs.
    pub inputs: Vec<bool>,
    /// Stored weights.
    pub weights: Vec<bool>,
    /// Operating temperature, °C (defaults to 27).
    pub temp_c: f64,
    /// Request deadline; `None` means the server default applies.
    pub timeout_ms: Option<u64>,
    /// Evaluation path (defaults to the fast analytic path).
    pub path: MacPath,
}

/// A typed request-parse failure; always rendered as a 400.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiError {
    /// What was wrong, in one client-actionable sentence.
    pub message: String,
}

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

fn bad(message: impl Into<String>) -> ApiError {
    ApiError {
        message: message.into(),
    }
}

fn parse_bools(doc: &Value, field: &str) -> Result<Vec<bool>, ApiError> {
    match doc.get(field) {
        Some(Value::Array(items)) => items
            .iter()
            .map(|item| match item {
                Value::Bool(b) => Ok(*b),
                Value::Number(n) if *n == 0.0 || *n == 1.0 => Ok(*n == 1.0),
                other => Err(bad(format!(
                    "{field} entries must be booleans (or 0/1), got {other:?}"
                ))),
            })
            .collect(),
        Some(other) => Err(bad(format!("{field} must be an array, got {other:?}"))),
        None => Err(bad(format!("missing required field {field:?}"))),
    }
}

impl MacApiRequest {
    /// Parses a request body.
    ///
    /// # Errors
    ///
    /// Returns a client-facing message for the first missing or
    /// ill-typed field.
    pub fn parse(body: &[u8]) -> Result<MacApiRequest, ApiError> {
        let text = std::str::from_utf8(body).map_err(|_| bad("request body must be UTF-8 JSON"))?;
        let doc: Value =
            serde_json::from_str(text).map_err(|e| bad(format!("invalid JSON: {e}")))?;
        if !matches!(doc, Value::Object(_)) {
            return Err(bad("request body must be a JSON object"));
        }
        let tenant = match doc.get("tenant") {
            Some(Value::String(s)) if !s.is_empty() => s.clone(),
            Some(Value::String(_)) => return Err(bad("tenant must be non-empty")),
            Some(other) => return Err(bad(format!("tenant must be a string, got {other:?}"))),
            None => "anonymous".to_string(),
        };
        let inputs = parse_bools(&doc, "inputs")?;
        let weights = parse_bools(&doc, "weights")?;
        let temp_c = match doc.get("temp_c") {
            Some(Value::Number(n)) if n.is_finite() => *n,
            Some(other) => {
                return Err(bad(format!(
                    "temp_c must be a finite number, got {other:?}"
                )))
            }
            None => 27.0,
        };
        let timeout_ms = match doc.get("timeout_ms") {
            Some(Value::Number(n)) if n.fract() == 0.0 && *n >= 1.0 => Some(*n as u64),
            Some(other) => {
                return Err(bad(format!(
                    "timeout_ms must be a positive integer, got {other:?}"
                )))
            }
            None => None,
        };
        let path = match doc.get("path") {
            Some(Value::String(s)) if s == "analytic" => MacPath::Analytic,
            Some(Value::String(s)) if s == "transient" => MacPath::Transient,
            Some(other) => {
                return Err(bad(format!(
                    "path must be \"analytic\" or \"transient\", got {other:?}"
                )))
            }
            None => MacPath::Analytic,
        };
        Ok(MacApiRequest {
            tenant,
            inputs,
            weights,
            temp_c,
            timeout_ms,
            path,
        })
    }
}

/// Renders a request id the way every response body carries it: a
/// fixed-width 16-digit lowercase hex string, so a client can quote it
/// verbatim when correlating with server-side traces and flight dumps.
pub fn request_id_hex(request_id: u64) -> String {
    format!("{request_id:016x}")
}

/// The success body (live, surrogate, or degraded — the `surrogate`
/// and `degraded` flags say which: surrogate-only is the certified
/// fast path, degraded+surrogate is the fallback tier). `cause`
/// carries the last solver error when the answer degraded, so clients
/// can tell a breaker-open fallback from an exhausted retry ladder.
pub fn ok_body(
    solution: &crate::backend::Solution,
    attempts: u32,
    breaker_open: bool,
    cause: Option<&str>,
    request_id: u64,
) -> Value {
    let mut body = json!({
        "ok": true,
        "request_id": (request_id_hex(request_id)),
        "degraded": (solution.degraded),
        "surrogate": (solution.surrogate),
        "breaker_open": (breaker_open),
        "v_acc": (solution.v_acc.value()),
        "readout": (solution.readout as u64),
        "expected": (solution.expected as u64),
        "energy_j": (solution.energy_j),
        "latency_s": (solution.latency_s),
        "attempts": (attempts)
    });
    if let (Some(cause), Value::Object(entries)) = (cause, &mut body) {
        entries.push((
            "degraded_cause".to_string(),
            Value::String(cause.to_string()),
        ));
    }
    body
}

/// The `429 Overloaded` body. `reason` is `"queue_full"`,
/// `"tenant_quota"`, or `"draining"`.
pub fn overloaded_body(
    reason: &str,
    retry_after_ms: u64,
    queue_depth: usize,
    request_id: u64,
) -> Value {
    json!({
        "ok": false,
        "error": "overloaded",
        "reason": (reason),
        "retry_after_ms": (retry_after_ms),
        "queue_depth": (queue_depth as u64),
        "request_id": (request_id_hex(request_id))
    })
}

/// The `504 Deadline Exceeded` body.
pub fn deadline_body(message: &str, request_id: u64) -> Value {
    json!({
        "ok": false,
        "error": "deadline_exceeded",
        "message": (message),
        "request_id": (request_id_hex(request_id))
    })
}

/// The `400 Bad Request` body.
pub fn bad_request_body(message: &str, request_id: u64) -> Value {
    json!({
        "ok": false,
        "error": "bad_request",
        "message": (message),
        "request_id": (request_id_hex(request_id))
    })
}

/// The `500 Internal` body (typed even when the worker panicked).
pub fn internal_body(message: &str, request_id: u64) -> Value {
    json!({
        "ok": false,
        "error": "internal",
        "message": (message),
        "request_id": (request_id_hex(request_id))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_request() {
        let req = MacApiRequest::parse(
            br#"{"tenant":"t1","inputs":[true,false,1,0],"weights":[1,1,0,0],
                "temp_c":85.0,"timeout_ms":250,"path":"transient"}"#,
        )
        .expect("parse");
        assert_eq!(req.tenant, "t1");
        assert_eq!(req.inputs, vec![true, false, true, false]);
        assert_eq!(req.weights, vec![true, true, false, false]);
        assert_eq!(req.temp_c, 85.0);
        assert_eq!(req.timeout_ms, Some(250));
        assert_eq!(req.path, MacPath::Transient);
    }

    #[test]
    fn defaults_apply_when_fields_are_absent() {
        let req = MacApiRequest::parse(br#"{"inputs":[true],"weights":[true]}"#).expect("parse");
        assert_eq!(req.tenant, "anonymous");
        assert_eq!(req.temp_c, 27.0);
        assert_eq!(req.timeout_ms, None);
        assert_eq!(req.path, MacPath::Analytic);
    }

    #[test]
    fn rejects_malformed_bodies_with_actionable_messages() {
        assert!(MacApiRequest::parse(b"not json")
            .expect_err("garbage")
            .message
            .contains("invalid JSON"));
        assert!(MacApiRequest::parse(br#"{"weights":[true]}"#)
            .expect_err("no inputs")
            .message
            .contains("inputs"));
        assert!(MacApiRequest::parse(br#"{"inputs":[2],"weights":[true]}"#)
            .expect_err("non-bool entry")
            .message
            .contains("booleans"));
        assert!(
            MacApiRequest::parse(br#"{"inputs":[true],"weights":[true],"timeout_ms":0}"#)
                .expect_err("zero timeout")
                .message
                .contains("timeout_ms")
        );
    }

    #[test]
    fn bodies_are_well_typed_json() {
        let shed = overloaded_body("queue_full", 120, 16, 0xABCD);
        assert_eq!(shed.get("error"), Some(&Value::String("overloaded".into())));
        assert_eq!(shed.get("retry_after_ms"), Some(&Value::Number(120.0)));
        let text = serde_json::to_string(&shed).expect("serialize");
        assert!(text.contains("\"queue_full\""));
    }

    #[test]
    fn every_body_echoes_a_fixed_width_request_id() {
        let id = 0x5EED;
        let hex = request_id_hex(id);
        assert_eq!(hex.len(), 16, "request ids are fixed-width hex");
        assert_eq!(hex, "0000000000005eed");
        for body in [
            overloaded_body("queue_full", 120, 16, id),
            deadline_body("late", id),
            bad_request_body("bad", id),
            internal_body("boom", id),
        ] {
            assert_eq!(
                body.get("request_id"),
                Some(&Value::String(hex.clone())),
                "body {body:?} echoes the request id"
            );
        }
    }
}
