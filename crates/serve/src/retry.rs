//! Retry policy: exponential backoff with deterministic jitter, plus a
//! global retry budget so retries cannot amplify an overload.
//!
//! Retrying is only safe when it is bounded twice over: per request
//! (the backoff schedule never outlives the request's deadline) and
//! globally (the [`RetryBudget`] only lets retries spend a fixed
//! fraction of admitted traffic — when the backend is failing for
//! everyone, most requests degrade instead of multiplying load). Both
//! bounds are deterministic for a given seed, which is what the
//! property tests in `tests/retry_prop.rs` pin down.

use ferrocim_spice::chaos::ChaosRng;
use std::sync::atomic::{AtomicU64, Ordering};

/// Exponential backoff with proportional jitter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total solve attempts per request (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry, milliseconds.
    pub base_ms: u64,
    /// Multiplier applied per further retry.
    pub multiplier: f64,
    /// Upper clamp on a single backoff, milliseconds.
    pub cap_ms: u64,
    /// Jitter as a fraction of the nominal backoff, in `[0, 1]`: each
    /// sleep is drawn uniformly from `[nominal·(1−j), nominal]`.
    /// Jittering *downward only* keeps the nominal value an upper
    /// bound, so deadline math stays simple and conservative.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base_ms: 10,
            multiplier: 2.0,
            cap_ms: 200,
            jitter: 0.5,
        }
    }
}

impl RetryPolicy {
    /// The nominal (un-jittered) backoff before retry `retry` (1-based),
    /// clamped to `cap_ms`. This is an upper bound on the jittered
    /// value.
    pub fn nominal_backoff_ms(&self, retry: u32) -> u64 {
        let scaled = self.base_ms as f64 * self.multiplier.powi(retry.saturating_sub(1) as i32);
        (scaled.min(self.cap_ms as f64)).round() as u64
    }

    /// The jittered backoff schedule for one request, milliseconds per
    /// retry, truncated so the *cumulative* sleep never exceeds
    /// `deadline_ms`. Bitwise-reproducible for a given `(policy, seed,
    /// deadline_ms)` triple — replaying a request id replays its exact
    /// sleeps.
    pub fn schedule(&self, seed: u64, deadline_ms: u64) -> Vec<u64> {
        let mut rng = ChaosRng::new(seed);
        let mut schedule = Vec::new();
        let mut total: u64 = 0;
        for retry in 1..self.max_attempts {
            let nominal = self.nominal_backoff_ms(retry) as f64;
            let jitter = self.jitter.clamp(0.0, 1.0);
            let backoff = (nominal * (1.0 - jitter * rng.next_f64())).round() as u64;
            if total.saturating_add(backoff) > deadline_ms {
                break;
            }
            total += backoff;
            schedule.push(backoff);
        }
        schedule
    }
}

/// A token bucket bounding retries to a fraction of admitted traffic.
///
/// Every admission deposits `deposit_millis` milli-tokens (capped at
/// `cap_millis`); every retry withdraws 1000. With the default 100/1000
/// ratio, retries add at most 10% load on top of admissions no matter
/// how hard the backend is failing — beyond that, requests skip the
/// retry ladder and degrade immediately.
#[derive(Debug)]
pub struct RetryBudget {
    millis: AtomicU64,
    deposit_millis: u64,
    cap_millis: u64,
}

/// One retry costs this many milli-tokens.
const RETRY_COST: u64 = 1000;

impl RetryBudget {
    /// A budget depositing `deposit_millis` milli-tokens (1000 = one
    /// whole retry) per admission, holding at most `cap` retries' worth.
    pub fn new(deposit_millis: u64, cap: u64) -> RetryBudget {
        RetryBudget {
            millis: AtomicU64::new(cap.saturating_mul(RETRY_COST)),
            deposit_millis,
            cap_millis: cap.saturating_mul(RETRY_COST),
        }
    }

    /// Credits one admission.
    pub fn deposit(&self) {
        let cap = self.cap_millis;
        let deposit = self.deposit_millis;
        // fetch_update never fails here (the closure always returns
        // Some); clamp to the cap to keep bursts bounded.
        let _ = self
            .millis
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |current| {
                Some(current.saturating_add(deposit).min(cap))
            });
    }

    /// Attempts to withdraw one retry's worth of tokens; `false` means
    /// the global retry allowance is exhausted and the caller must not
    /// retry.
    pub fn try_spend(&self) -> bool {
        self.millis
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |current| {
                current.checked_sub(RETRY_COST)
            })
            .is_ok()
    }

    /// Whole retries currently affordable.
    pub fn available(&self) -> u64 {
        self.millis.load(Ordering::Relaxed) / RETRY_COST
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_backoff_grows_then_caps() {
        let p = RetryPolicy::default();
        assert_eq!(p.nominal_backoff_ms(1), 10);
        assert_eq!(p.nominal_backoff_ms(2), 20);
        assert_eq!(p.nominal_backoff_ms(3), 40);
        assert_eq!(p.nominal_backoff_ms(10), 200, "clamped at cap_ms");
    }

    #[test]
    fn schedule_is_deterministic_and_deadline_bounded() {
        let p = RetryPolicy {
            max_attempts: 6,
            ..RetryPolicy::default()
        };
        let a = p.schedule(42, 1000);
        let b = p.schedule(42, 1000);
        assert_eq!(a, b, "same seed, same sleeps");
        let c = p.schedule(43, 1000);
        assert!(!c.is_empty());
        // A tiny deadline truncates the schedule.
        let tight = p.schedule(42, 5);
        assert!(tight.iter().sum::<u64>() <= 5);
    }

    #[test]
    fn budget_limits_retries_to_the_deposit_fraction() {
        let budget = RetryBudget::new(100, 2); // starts with 2 retries banked
        assert!(budget.try_spend());
        assert!(budget.try_spend());
        assert!(!budget.try_spend(), "bank is empty");
        // Ten admissions buy exactly one more retry at 10%.
        for _ in 0..10 {
            budget.deposit();
        }
        assert_eq!(budget.available(), 1);
        assert!(budget.try_spend());
        assert!(!budget.try_spend());
    }
}
