//! Overload-safe multi-tenant serving of CIM MAC simulations.
//!
//! `ferrocim-serve` exposes the `ferrocim-cim` array simulator as a
//! small HTTP/1.1 service built directly on [`std::net::TcpListener`]
//! (the workspace has no async runtime and no network registry, so the
//! server is dependency-light by construction). The interesting part is
//! not the HTTP plumbing but the robustness envelope around the solver:
//!
//! * **Admission control & load shedding** ([`queue`]) — a bounded
//!   worker pool fed by a fixed-capacity queue, plus per-tenant
//!   concurrency quotas. When either bound is hit the request is shed
//!   *immediately* with a typed `429 Overloaded` JSON body carrying a
//!   `retry_after_ms` hint, instead of queueing without bound.
//! * **Deadline propagation & cancellation** — each request's
//!   `timeout_ms` becomes a [`ferrocim_spice::Budget`] wall-clock
//!   deadline threaded into the transient solves; a client that
//!   disconnects mid-solve trips the [`ferrocim_spice::CancelToken`]
//!   via the connection watchdog, so abandoned work stops burning CPU.
//! * **Retry with backoff** ([`retry`]) — transient solver failures are
//!   retried under a deterministic, seedable exponential-backoff-with-
//!   jitter schedule, governed by a global retry *budget* so retries
//!   can never amplify an overload.
//! * **Graceful degradation** ([`breaker`], [`backend`]) — a per-tenant
//!   circuit breaker watches solve outcomes; while it is open, MAC
//!   requests fall back to the calibrated transfer-curve estimate
//!   (marked `degraded: true` in the response) instead of failing, and
//!   half-open probes restore live solving once the fault clears.
//! * **Observability** — `/metrics` renders the workspace-standard
//!   Prometheus exposition from a [`ferrocim_telemetry::Aggregator`]
//!   (including the `serve_*` counters and the per-tenant dimensional
//!   series), and `/healthz` reports queue and breaker state. Every
//!   response echoes a seeded hex `request_id` that is also attached to
//!   the request's telemetry events; the read-only `/debug/requests`,
//!   `/debug/queue`, `/debug/breakers`, and `/debug/flight` endpoints
//!   expose live internals, with `/debug/*` answered by the acceptor
//!   even when the admission queue is full.
//!
//! The `probe_serve` bench in `ferrocim-bench` drives an in-process
//! server through overload, deadline-expiry, and chaos-injected solver
//! faults, asserting the robustness contract end to end.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod api;
pub mod backend;
pub mod breaker;
pub mod chaos;
pub mod client;
pub mod http;
pub mod queue;
pub mod retry;
pub mod server;

pub use api::{ApiError, MacApiRequest};
pub use backend::{CimBackend, MacBackend, Solution, SolveRequest};
pub use breaker::{
    BreakerConfig, BreakerDecision, BreakerSnapshot, BreakerState, CircuitBreaker, TripInfo,
};
pub use chaos::{ChaosBackend, ChaosPlan};
pub use client::{http_request, HttpResponse};
pub use queue::{BoundedQueue, TenantGovernor};
pub use retry::{RetryBudget, RetryPolicy};
pub use server::{ServeConfig, Server};
