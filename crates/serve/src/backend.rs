//! The solver backend behind the service, its surrogate fast path, and
//! its degraded fallback.
//!
//! [`MacBackend`] is the seam the server is written against: the real
//! [`CimBackend`] runs live `ferrocim-cim` transients, while tests and
//! the `probe_serve` bench wrap it in [`crate::ChaosBackend`] to inject
//! faults. Two layers sit in front of and behind the live solve:
//!
//! - **Surrogate fast path** ([`MacBackend::surrogate`]): the
//!   content-addressed store from `ferrocim-surrogate`. Analytic
//!   requests whose (weights, faults, temperature-domain) key is
//!   calibrated are answered from the curve — no netlist, no Newton
//!   iterations — marked `surrogate: true` with `degraded: false`; a
//!   miss calibrates the key with live solves and then answers.
//! - **Degraded fallback** ([`MacBackend::fallback`]): the surrogate's
//!   lowest tier. The all-ones-weights curve calibrated at startup
//!   answers from the request's true MAC count with the temperature
//!   clamped into the calibrated domain — infallible and solver-free,
//!   which is what makes it safe while the circuit breaker is open.
//!   Fallback answers carry `degraded: true` *and* `surrogate: true`,
//!   so clients can tell the two tiers apart: a surrogate answer is a
//!   certified curve evaluation of the actual operands, a degraded
//!   answer is the level-table estimate for the digital count.

use ferrocim_cim::cells::TwoTransistorOneFefet;
use ferrocim_cim::transfer::Adc;
use ferrocim_cim::{mac_operands, ArrayConfig, CimArray, CimError, MacPath, MacRequest};
use ferrocim_spice::Budget;
use ferrocim_surrogate::{CalibratedCurve, CheckPolicy, MacSurrogate, SurrogateError};
use ferrocim_telemetry::Telemetry;
use ferrocim_units::{Celsius, Volt};
use std::sync::Arc;

/// The serve backend's calibration grid: the paper's full operating
/// range with a room-temperature anchor.
const SURROGATE_GRID_C: [f64; 3] = [0.0, 27.0, 85.0];

/// One MAC solve as the server sees it: operands, operating
/// temperature, and the per-request budget (deadline + cancellation)
/// already attached.
#[derive(Debug, Clone)]
pub struct SolveRequest {
    /// Word-line inputs.
    pub inputs: Vec<bool>,
    /// Stored weights.
    pub weights: Vec<bool>,
    /// Operating temperature.
    pub temp: Celsius,
    /// Deadline + cancellation budget for this request.
    pub budget: Budget,
    /// Evaluation path (analytic by default for serving latency).
    pub path: MacPath,
}

impl SolveRequest {
    /// The digital ground truth `Σ wᵢ·xᵢ`.
    pub fn true_mac(&self) -> usize {
        self.inputs
            .iter()
            .zip(&self.weights)
            .filter(|&(&x, &w)| x && w)
            .count()
    }
}

/// A completed MAC answer, live, surrogate, or degraded.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// The accumulated analog output (live), its certified curve
    /// evaluation (surrogate), or its calibrated estimate (degraded).
    pub v_acc: Volt,
    /// The quantized readout count.
    pub readout: usize,
    /// The digital ground truth `Σ wᵢ·xᵢ`.
    pub expected: usize,
    /// Operation energy in joules (0 when degraded: no solve ran).
    pub energy_j: f64,
    /// MAC latency in seconds (0 when degraded).
    pub latency_s: f64,
    /// Whether this answer came from the degraded fallback tier.
    pub degraded: bool,
    /// Whether this answer was produced by the calibrated surrogate
    /// store rather than a live solve. Degraded answers from
    /// [`CimBackend`] set both flags (the fallback *is* the surrogate's
    /// lowest tier); a surrogate fast-path answer sets only this one.
    pub surrogate: bool,
}

/// The solver seam the server drives.
pub trait MacBackend: Send + Sync {
    /// Runs one live MAC under the request's budget.
    ///
    /// # Errors
    ///
    /// Propagates solver failures; the server classifies them into
    /// retryable, deadline, and invalid-input cases.
    fn solve(&self, request: &SolveRequest) -> Result<Solution, CimError>;

    /// Tries to answer from the calibrated surrogate store without a
    /// live solve. `None` means "no fast path for this request" (no
    /// store, transient-path request, out-of-domain temperature, or a
    /// calibration that failed) and the server falls through to
    /// [`MacBackend::solve`]. The default implementation has no store.
    fn surrogate(&self, request: &SolveRequest) -> Option<Solution> {
        let _ = request;
        None
    }

    /// Answers from the degraded tier without touching the solver.
    /// Infallible by design — degradation must not be able to fail.
    fn fallback(&self, request: &SolveRequest) -> Solution;

    /// Row width the backend accepts (for input validation).
    fn cells_per_row(&self) -> usize;
}

impl<B: MacBackend + ?Sized> MacBackend for std::sync::Arc<B> {
    fn solve(&self, request: &SolveRequest) -> Result<Solution, CimError> {
        (**self).solve(request)
    }

    fn surrogate(&self, request: &SolveRequest) -> Option<Solution> {
        (**self).surrogate(request)
    }

    fn fallback(&self, request: &SolveRequest) -> Solution {
        (**self).fallback(request)
    }

    fn cells_per_row(&self) -> usize {
        (**self).cells_per_row()
    }
}

/// Maps surrogate-layer failures into the backend's error type. The
/// grid and operand widths are fixed by construction, so in practice
/// only wrapped solver errors ever surface.
fn cim_error(e: SurrogateError) -> CimError {
    match e {
        SurrogateError::Cim(e) => e,
        _ => CimError::InvalidConfig {
            name: "surrogate",
            value: 0.0,
            requirement: "the serve surrogate grid and operands are static and must be accepted",
        },
    }
}

/// The live `ferrocim-cim` backend: the paper's 2T1F array, a startup-
/// calibrated ADC, and the surrogate store whose all-ones curve doubles
/// as the degraded fallback tier.
pub struct CimBackend {
    array: CimArray<TwoTransistorOneFefet>,
    adc: Adc,
    surrogate: MacSurrogate<TwoTransistorOneFefet>,
    /// The all-ones-weights curve calibrated at startup: the degraded
    /// tier, and the proof the surrogate store is answerable before the
    /// first request lands.
    startup: Arc<CalibratedCurve>,
    levels: Vec<Volt>,
}

impl CimBackend {
    /// Builds the paper-default array, calibrates the ADC, and eagerly
    /// calibrates the surrogate's all-ones-weights curve over the
    /// 0–85 °C grid (the degraded-fallback tier). `check_every` > 0
    /// enables surrogate check mode: roughly one in that many
    /// surrogate-answered queries is re-solved live and compared to the
    /// certified envelope (0 disables checking). Telemetry flows into
    /// the server's aggregator, so calibration work, surrogate hits,
    /// and check outcomes are all visible in `/metrics`.
    ///
    /// # Errors
    ///
    /// Propagates array-construction and calibration solve failures.
    pub fn new(telemetry: Telemetry, check_every: usize) -> Result<CimBackend, CimError> {
        let array = CimArray::new(
            TwoTransistorOneFefet::paper_default(),
            ArrayConfig::paper_default(),
        )?
        .with_recorder(telemetry.clone());
        let adc = Adc::calibrate(&array, Celsius::ROOM)?;
        let levels = array.level_voltages(Celsius::ROOM)?;
        let grid: Vec<Celsius> = SURROGATE_GRID_C.iter().map(|&t| Celsius(t)).collect();
        let mut surrogate = MacSurrogate::new(array.clone(), &grid)
            .map_err(cim_error)?
            .with_recorder(telemetry);
        if check_every > 0 {
            surrogate = surrogate.with_check(CheckPolicy::every(check_every as u64));
        }
        let n = array.config().cells_per_row;
        let startup = surrogate.curve_for(&vec![true; n]).map_err(cim_error)?;
        Ok(CimBackend {
            array,
            adc,
            surrogate,
            startup,
            levels,
        })
    }

    /// The surrogate store (counters, curves, calibration domain).
    pub fn mac_surrogate(&self) -> &MacSurrogate<TwoTransistorOneFefet> {
        &self.surrogate
    }
}

impl MacBackend for CimBackend {
    fn solve(&self, request: &SolveRequest) -> Result<Solution, CimError> {
        // Cloning the array shares nothing mutable (it is a value-type
        // netlist description); attaching the request budget threads
        // the deadline and cancel token into every transient step.
        let array = self.array.clone().with_budget(request.budget.clone());
        let output = array.run(
            &MacRequest::new(&request.inputs)
                .weights(&request.weights)
                .at(request.temp)
                .path(request.path),
        )?;
        Ok(Solution {
            v_acc: output.v_acc,
            readout: self.adc.quantize(output.v_acc),
            expected: output.expected,
            energy_j: output.energy.value(),
            latency_s: output.latency.value(),
            degraded: false,
            surrogate: false,
        })
    }

    fn surrogate(&self, request: &SolveRequest) -> Option<Solution> {
        // The store is calibrated against the analytic path; a client
        // that explicitly asked for a transient simulation gets one.
        if request.path != MacPath::Analytic {
            return None;
        }
        // Out-of-domain temperatures and (unreachable) width mismatches
        // fall through to the live solve; a miss calibrates in-line and
        // then answers.
        let answer = self
            .surrogate
            .evaluate(&request.weights, &request.inputs, request.temp)
            .ok()?;
        Some(Solution {
            v_acc: answer.v_acc,
            // Quantize with the serve ADC, not the curve's interpolated
            // thresholds, so surrogate and live answers to the same
            // request can never disagree about the readout convention.
            readout: self.adc.quantize(answer.v_acc),
            expected: answer.expected,
            energy_j: answer.energy.value(),
            latency_s: answer.latency.value(),
            degraded: false,
            surrogate: true,
        })
    }

    fn fallback(&self, request: &SolveRequest) -> Solution {
        let n = self.levels.len().saturating_sub(1);
        let k = request.true_mac().min(n);
        // The degraded tier is the surrogate's startup curve: evaluate
        // the all-ones-weights row at the digital count's canonical
        // pattern, with the temperature clamped into the calibrated
        // domain so the answer exists for any request.
        let (lo, hi) = self.surrogate.domain_c();
        let temp = Celsius(request.temp.value().clamp(lo, hi));
        let (_, pattern) = mac_operands(n, k);
        match self.startup.eval(&pattern, temp) {
            Ok(answer) => Solution {
                v_acc: answer.v_acc,
                readout: self.adc.quantize(answer.v_acc),
                expected: request.true_mac(),
                energy_j: 0.0,
                latency_s: 0.0,
                degraded: true,
                surrogate: true,
            },
            // Unreachable (clamped temperature, canonical width); the
            // raw level table keeps the fallback infallible regardless.
            Err(_) => Solution {
                v_acc: self.levels[k],
                readout: k,
                expected: request.true_mac(),
                energy_j: 0.0,
                latency_s: 0.0,
                degraded: true,
                surrogate: false,
            },
        }
    }

    fn cells_per_row(&self) -> usize {
        self.array.config().cells_per_row
    }
}
