//! The solver backend behind the service, and its degraded fallback.
//!
//! [`MacBackend`] is the seam the server is written against: the real
//! [`CimBackend`] runs live `ferrocim-cim` transients, while tests and
//! the `probe_serve` bench wrap it in [`crate::ChaosBackend`] to inject
//! faults. The fallback path answers from the transfer curve measured
//! at startup (the `cim.transfer_measure` calibration), which costs no
//! solver work at all — that is what makes it safe to use while the
//! circuit breaker is open.

use ferrocim_cim::cells::TwoTransistorOneFefet;
use ferrocim_cim::transfer::{Adc, TransferConfig, TransferModel};
use ferrocim_cim::{ArrayConfig, CimArray, CimError, MacPath, MacRequest};
use ferrocim_spice::Budget;
use ferrocim_telemetry::Telemetry;
use ferrocim_units::{Celsius, Volt};

/// One MAC solve as the server sees it: operands, operating
/// temperature, and the per-request budget (deadline + cancellation)
/// already attached.
#[derive(Debug, Clone)]
pub struct SolveRequest {
    /// Word-line inputs.
    pub inputs: Vec<bool>,
    /// Stored weights.
    pub weights: Vec<bool>,
    /// Operating temperature.
    pub temp: Celsius,
    /// Deadline + cancellation budget for this request.
    pub budget: Budget,
    /// Evaluation path (analytic by default for serving latency).
    pub path: MacPath,
}

impl SolveRequest {
    /// The digital ground truth `Σ wᵢ·xᵢ`.
    pub fn true_mac(&self) -> usize {
        self.inputs
            .iter()
            .zip(&self.weights)
            .filter(|&(&x, &w)| x && w)
            .count()
    }
}

/// A completed MAC answer, live or degraded.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// The accumulated analog output (live) or its calibrated estimate
    /// (degraded).
    pub v_acc: Volt,
    /// The quantized readout count.
    pub readout: usize,
    /// The digital ground truth `Σ wᵢ·xᵢ`.
    pub expected: usize,
    /// Operation energy in joules (0 when degraded: no solve ran).
    pub energy_j: f64,
    /// MAC latency in seconds (0 when degraded).
    pub latency_s: f64,
    /// Whether this answer came from the fallback curve.
    pub degraded: bool,
}

/// The solver seam the server drives.
pub trait MacBackend: Send + Sync {
    /// Runs one live MAC under the request's budget.
    ///
    /// # Errors
    ///
    /// Propagates solver failures; the server classifies them into
    /// retryable, deadline, and invalid-input cases.
    fn solve(&self, request: &SolveRequest) -> Result<Solution, CimError>;

    /// Answers from the calibrated transfer curve without touching the
    /// solver. Infallible by design — degradation must not be able to
    /// fail.
    fn fallback(&self, request: &SolveRequest) -> Solution;

    /// Row width the backend accepts (for input validation).
    fn cells_per_row(&self) -> usize;
}

impl<B: MacBackend + ?Sized> MacBackend for std::sync::Arc<B> {
    fn solve(&self, request: &SolveRequest) -> Result<Solution, CimError> {
        (**self).solve(request)
    }

    fn fallback(&self, request: &SolveRequest) -> Solution {
        (**self).fallback(request)
    }

    fn cells_per_row(&self) -> usize {
        (**self).cells_per_row()
    }
}

/// The live `ferrocim-cim` backend: the paper's 2T1F array plus a
/// startup-calibrated ADC and transfer curve.
pub struct CimBackend {
    array: CimArray<TwoTransistorOneFefet>,
    adc: Adc,
    transfer: TransferModel,
    levels: Vec<Volt>,
}

impl CimBackend {
    /// Builds the paper-default array and measures the fallback
    /// transfer curve (`samples_per_level` Monte-Carlo samples per MAC
    /// level — small values keep startup fast; 8 is plenty for a
    /// fallback estimate). Telemetry flows into the server's
    /// aggregator, so calibration work is visible in `/metrics`.
    ///
    /// # Errors
    ///
    /// Propagates array-construction and calibration solve failures.
    pub fn new(telemetry: Telemetry, samples_per_level: usize) -> Result<CimBackend, CimError> {
        let array = CimArray::new(
            TwoTransistorOneFefet::paper_default(),
            ArrayConfig::paper_default(),
        )?
        .with_recorder(telemetry);
        let adc = Adc::calibrate(&array, Celsius::ROOM)?;
        let levels = array.level_voltages(Celsius::ROOM)?;
        let transfer = TransferModel::measure(
            &array,
            &TransferConfig {
                samples_per_level: samples_per_level.max(1),
                ..TransferConfig::paper_default(Celsius::ROOM)
            },
        )?;
        Ok(CimBackend {
            array,
            adc,
            transfer,
            levels,
        })
    }

    /// The calibrated transfer model (the degradation curve).
    pub fn transfer(&self) -> &TransferModel {
        &self.transfer
    }
}

impl MacBackend for CimBackend {
    fn solve(&self, request: &SolveRequest) -> Result<Solution, CimError> {
        // Cloning the array shares nothing mutable (it is a value-type
        // netlist description); attaching the request budget threads
        // the deadline and cancel token into every transient step.
        let array = self.array.clone().with_budget(request.budget.clone());
        let output = array.run(
            &MacRequest::new(&request.inputs)
                .weights(&request.weights)
                .at(request.temp)
                .path(request.path),
        )?;
        Ok(Solution {
            v_acc: output.v_acc,
            readout: self.adc.quantize(output.v_acc),
            expected: output.expected,
            energy_j: output.energy.value(),
            latency_s: output.latency.value(),
            degraded: false,
        })
    }

    fn fallback(&self, request: &SolveRequest) -> Solution {
        let k = request.true_mac().min(self.levels.len().saturating_sub(1));
        // The transfer curve's expected readout folds in the measured
        // temperature-and-variation error statistics; the level table
        // turns it back into a voltage estimate.
        let expected_read = self.transfer.expected(k);
        let readout =
            (expected_read.round().max(0.0) as usize).min(self.levels.len().saturating_sub(1));
        Solution {
            v_acc: self.levels[readout],
            readout,
            expected: request.true_mac(),
            energy_j: 0.0,
            latency_s: 0.0,
            degraded: true,
        }
    }

    fn cells_per_row(&self) -> usize {
        self.array.config().cells_per_row
    }
}
