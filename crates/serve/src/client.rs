//! A blocking single-request HTTP client, for the probe bench, the
//! `--self-check` smoke mode, and integration tests.
//!
//! One request per connection (matching the server's
//! `Connection: close`), with a read timeout so a wedged server fails a
//! test instead of hanging it.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A decoded response.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// The HTTP status code.
    pub status: u16,
    /// The response body.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// The body parsed as JSON, when it is JSON.
    pub fn json(&self) -> Option<serde_json::Value> {
        let text = std::str::from_utf8(&self.body).ok()?;
        serde_json::from_str(text).ok()
    }
}

/// Performs one request and reads the full response.
///
/// # Errors
///
/// Returns connection, write, timeout, and malformed-response errors.
pub fn http_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &[u8],
    timeout: Duration,
) -> std::io::Result<HttpResponse> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.set_nodelay(true)?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: ferrocim\r\nContent-Length: {}\r\n\
         Connection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
}

fn parse_response(raw: &[u8]) -> std::io::Result<HttpResponse> {
    let malformed = |what: &str| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("malformed response: {what}"),
        )
    };
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| malformed("no header terminator"))?;
    let head = std::str::from_utf8(&raw[..head_end]).map_err(|_| malformed("head is not UTF-8"))?;
    let status_line = head.lines().next().ok_or_else(|| malformed("empty head"))?;
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| malformed("bad status line"))?;
    Ok(HttpResponse {
        status,
        body: raw[head_end + 4..].to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_response() {
        let raw = b"HTTP/1.1 429 Too Many Requests\r\nContent-Length: 2\r\n\r\n{}";
        let resp = parse_response(raw).expect("parse");
        assert_eq!(resp.status, 429);
        assert_eq!(resp.body, b"{}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_response(b"nope").is_err());
        assert!(parse_response(b"HTTP/1.1 huh\r\n\r\n").is_err());
    }
}
