//! Chaos wrapper: deterministic fault injection at the backend seam.
//!
//! [`ChaosBackend`] wraps any [`MacBackend`] and makes a seeded
//! fraction of solves fail with realistic solver errors — numerical
//! blowups, uncertified solves — or panic outright, exercising the
//! retry ladder, the circuit breaker, and the worker's panic
//! containment exactly as a flaky solver would. Faults are drawn from
//! [`ferrocim_spice::chaos::ChaosRng`] keyed by `(seed, solve index)`,
//! so a failing probe run replays bit-for-bit.

use crate::backend::{MacBackend, Solution, SolveRequest};
use ferrocim_cim::CimError;
use ferrocim_spice::chaos::ChaosRng;
use ferrocim_spice::SpiceError;
use std::sync::atomic::{AtomicU64, Ordering};

/// Which fraction of solves fail, and how.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosPlan {
    /// Base seed; solve `i` draws from `ChaosRng::new(seed ^ i)`.
    pub seed: u64,
    /// Probability a solve returns [`SpiceError::NumericalBlowup`].
    pub blowup_probability: f64,
    /// Probability a solve returns [`SpiceError::UncertifiedSolve`].
    pub uncertified_probability: f64,
    /// Probability a solve panics (testing worker containment).
    pub panic_probability: f64,
}

impl ChaosPlan {
    /// No injected faults; the wrapper becomes transparent.
    pub fn quiet(seed: u64) -> ChaosPlan {
        ChaosPlan {
            seed,
            blowup_probability: 0.0,
            uncertified_probability: 0.0,
            panic_probability: 0.0,
        }
    }
}

/// A [`MacBackend`] decorator injecting seeded faults before the inner
/// solve runs.
pub struct ChaosBackend<B> {
    inner: B,
    plan: ChaosPlan,
    solves: AtomicU64,
}

impl<B: MacBackend> ChaosBackend<B> {
    /// Wraps `inner` under `plan`.
    pub fn new(inner: B, plan: ChaosPlan) -> ChaosBackend<B> {
        ChaosBackend {
            inner,
            plan,
            solves: AtomicU64::new(0),
        }
    }

    /// Live solves attempted so far (including faulted ones).
    pub fn solves_attempted(&self) -> u64 {
        self.solves.load(Ordering::Relaxed)
    }
}

impl<B: MacBackend> MacBackend for ChaosBackend<B> {
    fn solve(&self, request: &SolveRequest) -> Result<Solution, CimError> {
        let index = self.solves.fetch_add(1, Ordering::Relaxed);
        let mut rng = ChaosRng::new(self.plan.seed ^ index.wrapping_mul(0x9e37_79b9));
        if rng.chance(self.plan.panic_probability) {
            panic!("chaos: injected solver panic at solve {index}");
        }
        if rng.chance(self.plan.blowup_probability) {
            return Err(CimError::Spice(SpiceError::NumericalBlowup {
                iteration: rng.below(50),
                unknown: rng.below(8),
            }));
        }
        if rng.chance(self.plan.uncertified_probability) {
            return Err(CimError::Spice(SpiceError::UncertifiedSolve {
                residual: 1e-3 * rng.next_f64(),
                cond_estimate: Some(1e12),
            }));
        }
        self.inner.solve(request)
    }

    fn surrogate(&self, _request: &SolveRequest) -> Option<Solution> {
        // Chaos exists to exercise the live solve/retry/breaker ladder;
        // letting the inner surrogate answer would bypass exactly the
        // machinery under test, so the fast path is disabled here.
        None
    }

    fn fallback(&self, request: &SolveRequest) -> Solution {
        // Faults never touch the fallback: degradation must stay safe
        // even (especially) under chaos.
        self.inner.fallback(request)
    }

    fn cells_per_row(&self) -> usize {
        self.inner.cells_per_row()
    }
}
