//! A deliberately minimal HTTP/1.1 layer over blocking [`TcpStream`]s.
//!
//! Only what the service needs: one request per connection
//! (`Connection: close` on every response), bounded header and body
//! sizes, and a write path that tolerates the socket being switched to
//! non-blocking mode mid-request (the connection watchdog and the
//! worker share the underlying fd — see [`crate::server`]).

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Largest accepted request head (request line + headers), bytes.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;
/// Largest accepted request body, bytes.
pub const MAX_BODY_BYTES: usize = 64 * 1024;
/// How long a response write may retry `WouldBlock` before giving up.
pub const WRITE_DEADLINE: Duration = Duration::from_secs(2);

/// A parsed request head plus body.
#[derive(Debug, Clone)]
pub struct Request {
    /// The HTTP method, uppercased as received (`GET`, `POST`, …).
    pub method: String,
    /// The request path, query string included.
    pub path: String,
    /// Lowercased header names with their raw values.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// The first header with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let lower = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == lower)
            .map(|(_, v)| v.as_str())
    }
}

/// A typed request-read failure; each variant maps to one HTTP status.
#[derive(Debug)]
pub enum HttpError {
    /// The socket failed or timed out before a full head arrived.
    Io(std::io::Error),
    /// The request line or a header line was not parseable HTTP/1.1.
    Malformed(&'static str),
    /// The head or body exceeded its size bound.
    TooLarge(&'static str),
    /// The peer closed the connection before sending anything.
    Disconnected,
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "socket error: {e}"),
            HttpError::Malformed(what) => write!(f, "malformed request: {what}"),
            HttpError::TooLarge(what) => write!(f, "request too large: {what}"),
            HttpError::Disconnected => write!(f, "peer disconnected before sending a request"),
        }
    }
}

/// Reads one request from the stream. The caller is expected to have
/// set a read timeout; a timeout surfaces as [`HttpError::Io`].
///
/// # Errors
///
/// See [`HttpError`].
pub fn read_request(stream: &mut TcpStream) -> Result<Request, HttpError> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::TooLarge("request head"));
        }
        let n = stream.read(&mut chunk).map_err(HttpError::Io)?;
        if n == 0 {
            if buf.is_empty() {
                return Err(HttpError::Disconnected);
            }
            return Err(HttpError::Malformed("connection closed mid-head"));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::Malformed("head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().ok_or(HttpError::Malformed("empty head"))?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or(HttpError::Malformed("missing method"))?
        .to_string();
    let path = parts
        .next()
        .ok_or(HttpError::Malformed("missing path"))?
        .to_string();
    let version = parts
        .next()
        .ok_or(HttpError::Malformed("missing version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed("unsupported HTTP version"));
    }
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(HttpError::Malformed("header without a colon"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| HttpError::Malformed("bad Content-Length"))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge("request body"));
    }
    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk).map_err(HttpError::Io)?;
        if n == 0 {
            return Err(HttpError::Malformed("connection closed mid-body"));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Writes one complete response and flushes it.
///
/// The stream may be in non-blocking mode (the fd is shared with the
/// connection watchdog, which needs non-blocking peeks), so
/// `WouldBlock` is retried with a short sleep until [`WRITE_DEADLINE`]
/// passes. Write failures are returned but are usually ignored by the
/// caller: a peer that vanished mid-response has already got all the
/// service can give it.
///
/// # Errors
///
/// Returns the underlying socket error, or `TimedOut` if the peer
/// stopped draining for longer than [`WRITE_DEADLINE`].
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let mut message = head.into_bytes();
    message.extend_from_slice(body);
    let give_up = Instant::now() + WRITE_DEADLINE;
    let mut written = 0;
    while written < message.len() {
        match stream.write(&message[written..]) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    ErrorKind::WriteZero,
                    "peer closed mid-response",
                ))
            }
            Ok(n) => written += n,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::Interrupted => {
                if Instant::now() >= give_up {
                    return Err(std::io::Error::new(
                        ErrorKind::TimedOut,
                        "peer stopped draining the response",
                    ));
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(e) => return Err(e),
        }
    }
    loop {
        match stream.flush() {
            Ok(()) => return Ok(()),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::Interrupted => {
                if Instant::now() >= give_up {
                    return Err(std::io::Error::new(ErrorKind::TimedOut, "flush stalled"));
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn round_trip(raw: &str) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let raw = raw.to_string();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).expect("connect");
            s.write_all(raw.as_bytes()).expect("write");
        });
        let (mut stream, _) = listener.accept().expect("accept");
        stream
            .set_read_timeout(Some(Duration::from_secs(2)))
            .expect("timeout");
        let result = read_request(&mut stream);
        writer.join().expect("writer thread");
        result
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = round_trip("POST /v1/mac HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nhey!")
            .expect("parse");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/mac");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));
        assert_eq!(req.body, b"hey!");
    }

    #[test]
    fn parses_a_bodyless_get() {
        let req = round_trip("GET /healthz HTTP/1.1\r\n\r\n").expect("parse");
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_garbage_and_eof() {
        assert!(matches!(
            round_trip("not http at all\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(round_trip(""), Err(HttpError::Disconnected)));
        assert!(matches!(
            round_trip("POST / HTTP/1.1\r\nContent-Length: 999999\r\n\r\n"),
            Err(HttpError::TooLarge(_))
        ));
    }
}
