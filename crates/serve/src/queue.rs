//! Admission control: the bounded job queue and per-tenant quotas.
//!
//! Both primitives make overload decisions *immediately* instead of
//! queueing without bound — the caller turns a rejection into a typed
//! `429` with a `retry_after_ms` hint while the system still has the
//! capacity to say so. Blocking happens only on the consumer side
//! (workers waiting for jobs), never on the producer side.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Locks a mutex, recovering the data from a poisoned lock.
///
/// Worker panics are contained by `catch_unwind`, but a panic between
/// lock and unlock still poisons the mutex; every structure guarded
/// here (queue entries, tenant counts) stays internally consistent
/// under early unlock, so recovery is safe and keeps one crashed
/// request from wedging the whole service.
fn lock_recovering<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A fixed-capacity MPMC queue with a non-blocking producer side.
///
/// `push` never waits: the queue either accepts the job or returns it
/// to the caller, which is the load-shedding decision point. `pop`
/// blocks until a job arrives or the queue is closed; after `close`,
/// remaining jobs are still drained (graceful shutdown finishes
/// admitted work) and only then does `pop` return `None`.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    inner: Mutex<QueueInner<T>>,
    ready: Condvar,
    capacity: usize,
}

#[derive(Debug)]
struct QueueInner<T> {
    jobs: VecDeque<T>,
    closed: bool,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` jobs (at least 1).
    pub fn new(capacity: usize) -> Arc<BoundedQueue<T>> {
        Arc::new(BoundedQueue {
            inner: Mutex::new(QueueInner {
                jobs: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        })
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Jobs currently queued (racy by nature; for metrics and hints).
    pub fn depth(&self) -> usize {
        lock_recovering(&self.inner).jobs.len()
    }

    /// Attempts to enqueue without blocking.
    ///
    /// # Errors
    ///
    /// Returns the job back when the queue is full or closed — the
    /// caller owns the shed decision and the connection it must answer
    /// on.
    pub fn push(&self, job: T) -> Result<usize, T> {
        let mut inner = lock_recovering(&self.inner);
        if inner.closed || inner.jobs.len() >= self.capacity {
            return Err(job);
        }
        inner.jobs.push_back(job);
        let depth = inner.jobs.len();
        drop(inner);
        self.ready.notify_one();
        Ok(depth)
    }

    /// Blocks until a job is available or the queue is closed *and*
    /// drained, then returns `None`.
    pub fn pop(&self) -> Option<T> {
        let mut inner = lock_recovering(&self.inner);
        loop {
            if let Some(job) = inner.jobs.pop_front() {
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .ready
                .wait(inner)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Closes the queue: new pushes fail, consumers drain what remains
    /// and then observe `None`.
    pub fn close(&self) {
        lock_recovering(&self.inner).closed = true;
        self.ready.notify_all();
    }
}

/// Per-tenant concurrency quotas.
///
/// A tenant may have at most `quota` requests in flight (queued or
/// solving). Acquisition is RAII: dropping the [`TenantPermit`]
/// releases the slot, so early returns and panics unwound by
/// `catch_unwind` cannot leak quota.
#[derive(Debug)]
pub struct TenantGovernor {
    counts: Mutex<Vec<(String, usize)>>,
    quota: usize,
}

impl TenantGovernor {
    /// A governor allowing `quota` concurrent requests per tenant (at
    /// least 1).
    pub fn new(quota: usize) -> Arc<TenantGovernor> {
        Arc::new(TenantGovernor {
            counts: Mutex::new(Vec::new()),
            quota: quota.max(1),
        })
    }

    /// The per-tenant quota.
    pub fn quota(&self) -> usize {
        self.quota
    }

    /// Attempts to claim a slot for `tenant`; `None` means the tenant
    /// is at its quota and the request must be shed.
    pub fn try_acquire(self: &Arc<Self>, tenant: &str) -> Option<TenantPermit> {
        let mut counts = lock_recovering(&self.counts);
        match counts.iter_mut().find(|(name, _)| name == tenant) {
            Some((_, n)) if *n >= self.quota => None,
            Some((_, n)) => {
                *n += 1;
                Some(TenantPermit {
                    governor: Arc::clone(self),
                    tenant: tenant.to_string(),
                })
            }
            None => {
                counts.push((tenant.to_string(), 1));
                Some(TenantPermit {
                    governor: Arc::clone(self),
                    tenant: tenant.to_string(),
                })
            }
        }
    }

    /// Every tenant with work in flight and its live count, sorted by
    /// tenant name — the `/debug/queue` introspection view.
    pub fn snapshot(&self) -> Vec<(String, usize)> {
        let mut counts: Vec<(String, usize)> = lock_recovering(&self.counts)
            .iter()
            .map(|(name, n)| (name.clone(), *n))
            .collect();
        counts.sort_by(|a, b| a.0.cmp(&b.0));
        counts
    }

    /// Requests currently in flight for `tenant`.
    pub fn in_flight(&self, tenant: &str) -> usize {
        lock_recovering(&self.counts)
            .iter()
            .find(|(name, _)| name == tenant)
            .map_or(0, |(_, n)| *n)
    }

    fn release(&self, tenant: &str) {
        let mut counts = lock_recovering(&self.counts);
        if let Some(pos) = counts.iter().position(|(name, _)| name == tenant) {
            counts[pos].1 = counts[pos].1.saturating_sub(1);
            if counts[pos].1 == 0 {
                counts.swap_remove(pos);
            }
        }
    }
}

/// An RAII claim on one tenant concurrency slot.
#[derive(Debug)]
pub struct TenantPermit {
    governor: Arc<TenantGovernor>,
    tenant: String,
}

impl Drop for TenantPermit {
    fn drop(&mut self) {
        self.governor.release(&self.tenant);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_sheds_at_capacity_and_pop_drains_after_close() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.push(1), Ok(1));
        assert_eq!(q.push(2), Ok(2));
        assert_eq!(q.push(3), Err(3), "third push is shed, not queued");
        q.close();
        assert_eq!(q.push(4), Err(4), "closed queue sheds");
        // Admitted work still drains after close.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pop_blocks_until_a_push_arrives() {
        let q: Arc<BoundedQueue<u32>> = BoundedQueue::new(4);
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(q.push(7), Ok(1));
        assert_eq!(consumer.join().expect("join"), Some(7));
    }

    #[test]
    fn tenant_quota_is_enforced_and_released_on_drop() {
        let gov = TenantGovernor::new(2);
        let a1 = gov.try_acquire("a").expect("first");
        let _a2 = gov.try_acquire("a").expect("second");
        assert!(gov.try_acquire("a").is_none(), "quota of 2 is exhausted");
        // Other tenants are unaffected.
        assert!(gov.try_acquire("b").is_some());
        assert_eq!(gov.in_flight("a"), 2);
        drop(a1);
        assert_eq!(gov.in_flight("a"), 1);
        assert!(gov.try_acquire("a").is_some(), "released slot is reusable");
    }
}
