//! `ferrocim-serve` — serve CIM MAC simulations over HTTP.
//!
//! ```text
//! ferrocim-serve [--addr 127.0.0.1:7878] [--workers N] [--queue N]
//!                [--tenant-quota N] [--surrogate-check N]
//!                [--flight N] [--flight-dump DIR]
//!                [--self-check]
//! ```
//!
//! `--surrogate-check N` re-solves roughly one in `N` surrogate-
//! answered queries through the live solver and compares the deviation
//! to the certified error envelope (visible in `/metrics` as
//! `ferrocim_surrogate_checks_total` / `..._check_failures_total`).
//!
//! `--flight N` keeps the last N telemetry events per thread in an
//! in-memory flight recorder, exposed at `GET /debug/flight` as a
//! `ferrocim-trace-v1` stream (default 256; 0 disables it).
//! `--flight-dump DIR` additionally writes an atomic trace dump into
//! DIR whenever a breaker trips, the SLO burn-rate breaches, or a
//! request ends in error — the post-incident black box.
//!
//! `--self-check` boots the full service on an ephemeral port, drives
//! one MAC request plus `/healthz`, `/metrics`, and every `/debug/*`
//! endpoint through a real TCP client, shuts down cleanly, and exits
//! 0 — the CI smoke test, with no curl dependency.

use ferrocim_serve::{http_request, CimBackend, ServeConfig, Server};
use ferrocim_telemetry::{Aggregator, DumpOn, FlightRecorder, Recorder, Tee, Telemetry};
use serde_json::Value;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "usage: ferrocim-serve [--addr HOST:PORT] [--workers N] [--queue N] \
                     [--tenant-quota N] [--surrogate-check N] [--flight N] \
                     [--flight-dump DIR] [--self-check]";

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::from(2)
        }
    }
}

fn parse_count(value: Option<&String>, flag: &str) -> Result<usize, String> {
    value
        .ok_or_else(|| format!("{flag} needs a value"))?
        .parse::<usize>()
        .map_err(|_| format!("{flag} needs a positive integer"))
}

fn run() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = ServeConfig {
        addr: "127.0.0.1:7878".to_string(),
        ..ServeConfig::default()
    };
    let mut self_check = false;
    let mut flight_capacity: usize = 256;
    let mut flight_dump: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--addr" => {
                config.addr = iter.next().ok_or("--addr needs a value")?.clone();
            }
            "--workers" => config.workers = parse_count(iter.next(), "--workers")?.max(1),
            "--queue" => config.queue_capacity = parse_count(iter.next(), "--queue")?.max(1),
            "--tenant-quota" => {
                config.tenant_quota = parse_count(iter.next(), "--tenant-quota")?.max(1);
            }
            "--surrogate-check" => {
                config.surrogate_check_every = parse_count(iter.next(), "--surrogate-check")?;
            }
            "--flight" => flight_capacity = parse_count(iter.next(), "--flight")?,
            "--flight-dump" => {
                flight_dump = Some(iter.next().ok_or("--flight-dump needs a value")?.clone());
            }
            "--self-check" => self_check = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unexpected argument {other:?}\n{USAGE}")),
        }
    }
    if self_check {
        config.addr = "127.0.0.1:0".to_string();
    }

    let aggregator = Arc::new(Aggregator::new());
    let flight = if flight_capacity > 0 {
        let mut recorder = FlightRecorder::new(flight_capacity);
        if let Some(dir) = &flight_dump {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create --flight-dump dir {dir:?}: {e}"))?;
            recorder = recorder.with_dump_dir(
                dir,
                &[DumpOn::Error, DumpOn::BreakerOpen, DumpOn::SloBreach],
            );
        }
        Some(Arc::new(recorder))
    } else {
        if flight_dump.is_some() {
            return Err("--flight-dump needs a flight recorder (set --flight > 0)".to_string());
        }
        None
    };
    let telemetry = match &flight {
        Some(flight) => Telemetry::to(Tee::new(vec![
            Arc::clone(&aggregator) as Arc<dyn Recorder>,
            Arc::clone(flight) as Arc<dyn Recorder>,
        ])),
        None => Telemetry::new(aggregator.clone()),
    };
    eprintln!("calibrating surrogate store (all-ones curve, 0-85 \u{b0}C grid)...");
    let backend = CimBackend::new(telemetry.clone(), config.surrogate_check_every)
        .map_err(|e| format!("backend calibration failed: {e}"))?;
    let server = Server::start_observed(config, Arc::new(backend), telemetry, aggregator, flight)
        .map_err(|e| format!("bind failed: {e}"))?;
    eprintln!("ferrocim-serve listening on {}", server.addr());

    if self_check {
        return match self_check_run(&server) {
            Ok(()) => {
                server.shutdown();
                eprintln!("self-check passed");
                Ok(ExitCode::SUCCESS)
            }
            Err(message) => {
                server.shutdown();
                Err(format!("self-check failed: {message}"))
            }
        };
    }

    // Foreground mode: serve until the process is killed.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

fn self_check_run(server: &Server) -> Result<(), String> {
    let addr = server.addr();
    let timeout = Duration::from_secs(10);
    let mac = http_request(
        addr,
        "POST",
        "/v1/mac",
        br#"{"tenant":"smoke","inputs":[true,true,false,false,true,false,false,false],
            "weights":[true,true,true,false,false,false,false,false],"timeout_ms":5000}"#,
        timeout,
    )
    .map_err(|e| format!("MAC request: {e}"))?;
    if mac.status != 200 {
        return Err(format!(
            "MAC returned {} with body {}",
            mac.status,
            String::from_utf8_lossy(&mac.body)
        ));
    }
    let body = mac.json().ok_or("MAC response is not JSON")?;
    if body.get("ok") != Some(&Value::Bool(true)) {
        return Err(format!("MAC response not ok: {body:?}"));
    }
    match body.get("expected") {
        Some(Value::Number(n)) if *n == 2.0 => {}
        other => return Err(format!("expected MAC of 2, got {other:?}")),
    }
    // An analytic in-domain request is answered by the surrogate store
    // (populated on miss), never the degraded tier.
    if body.get("surrogate") != Some(&Value::Bool(true)) {
        return Err(format!("expected a surrogate-answered MAC: {body:?}"));
    }
    if body.get("degraded") != Some(&Value::Bool(false)) {
        return Err(format!("smoke MAC must not be degraded: {body:?}"));
    }
    // Every response carries the fixed-width hex request id.
    match body.get("request_id") {
        Some(Value::String(id)) if id.len() == 16 && id.chars().all(|c| c.is_ascii_hexdigit()) => {}
        other => return Err(format!("expected a 16-hex request_id, got {other:?}")),
    }

    let health =
        http_request(addr, "GET", "/healthz", b"", timeout).map_err(|e| format!("healthz: {e}"))?;
    if health.status != 200 {
        return Err(format!("healthz returned {}", health.status));
    }
    let health_body = health.json().ok_or("healthz is not JSON")?;
    match health_body.get("status") {
        Some(Value::String(s)) if s == "ok" => {}
        other => return Err(format!("healthz status not ok: {other:?}")),
    }

    // The read-only introspection surface answers while serving.
    for path in ["/debug/requests", "/debug/queue", "/debug/breakers"] {
        let resp =
            http_request(addr, "GET", path, b"", timeout).map_err(|e| format!("{path}: {e}"))?;
        if resp.status != 200 {
            return Err(format!("{path} returned {}", resp.status));
        }
        let doc = resp.json().ok_or_else(|| format!("{path} is not JSON"))?;
        if doc.get("ok") != Some(&Value::Bool(true)) {
            return Err(format!("{path} not ok: {doc:?}"));
        }
    }
    let flight = http_request(addr, "GET", "/debug/flight", b"", timeout)
        .map_err(|e| format!("/debug/flight: {e}"))?;
    if server.flight().is_some() {
        if flight.status != 200 {
            return Err(format!("/debug/flight returned {}", flight.status));
        }
        let text = String::from_utf8_lossy(&flight.body);
        if !text.starts_with("{\"format\":\"ferrocim-trace-v1\"}") {
            return Err("flight stream is not a ferrocim-trace-v1 dump".to_string());
        }
    } else if flight.status != 404 {
        return Err(format!(
            "/debug/flight without a recorder must 404, got {}",
            flight.status
        ));
    }

    let metrics =
        http_request(addr, "GET", "/metrics", b"", timeout).map_err(|e| format!("metrics: {e}"))?;
    if metrics.status != 200 {
        return Err(format!("metrics returned {}", metrics.status));
    }
    let text = String::from_utf8_lossy(&metrics.body);
    for metric in [
        "ferrocim_serve_admitted_total",
        "ferrocim_serve_shed_total",
        "ferrocim_serve_done_total",
        "ferrocim_newton_iterations_total",
        "ferrocim_surrogate_hits_total",
        "ferrocim_surrogate_misses_total",
        "ferrocim_serve_requests_total{tenant=\"smoke\"",
        "ferrocim_serve_request_latency_ms_bucket{tenant=\"smoke\"",
        "ferrocim_serve_request_latency_ms_sum{tenant=\"smoke\"}",
        "ferrocim_serve_request_latency_ms_count{tenant=\"smoke\"}",
        "ferrocim_serve_slo_burn",
    ] {
        if !text.contains(metric) {
            return Err(format!("metrics exposition is missing {metric}"));
        }
    }
    Ok(())
}
