//! Per-tenant circuit breaking over the solver path.
//!
//! The classic three-state machine: **closed** (solving normally,
//! outcomes recorded into a sliding window) → **open** (error rate over
//! the window tripped the threshold; all solves for the tenant are
//! answered from the degraded fallback for a cooldown period) →
//! **half-open** (after the cooldown, a limited number of probe solves
//! run live; success closes the breaker, failure re-opens it). Opening
//! the breaker converts a failing dependency from "every request eats a
//! full retry ladder against a broken solver" into "every request gets
//! a fast, explicitly-marked degraded answer".

use std::collections::VecDeque;
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Tuning knobs for one [`CircuitBreaker`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Sliding-window length, in recorded outcomes.
    pub window: usize,
    /// Minimum outcomes in the window before the breaker may trip
    /// (a single early failure must not open it).
    pub min_samples: usize,
    /// Error-rate threshold in `(0, 1]`; at or above it, the breaker
    /// opens.
    pub trip_error_rate: f64,
    /// How long the breaker stays open before probing.
    pub cooldown: Duration,
    /// Live probes allowed concurrently while half-open.
    pub half_open_probes: usize,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            window: 16,
            min_samples: 8,
            trip_error_rate: 0.5,
            cooldown: Duration::from_millis(500),
            half_open_probes: 1,
        }
    }
}

/// The observable state of a breaker (for `/healthz`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Solving normally.
    Closed,
    /// Failing fast to the degraded fallback.
    Open,
    /// Cooldown elapsed; probing the solver with limited live traffic.
    HalfOpen,
}

impl BreakerState {
    /// The lowercase name used in `/healthz` JSON.
    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

/// What the breaker tells the caller to do with one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerDecision {
    /// Solve live (closed breaker).
    Allow,
    /// Solve live as a half-open probe; report the outcome faithfully.
    Probe,
    /// Do not touch the solver; answer from the fallback.
    Deny,
}

#[derive(Debug)]
enum State {
    Closed { outcomes: VecDeque<bool> },
    Open { until: Instant },
    HalfOpen { in_flight: usize },
}

/// A sliding-window circuit breaker; one per tenant.
///
/// All methods are callable from any worker thread.
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: Mutex<State>,
}

/// A breaker trip observation handed back to the caller so it can be
/// recorded as telemetry ([`ferrocim_telemetry::Event::ServeBreakerOpen`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TripInfo {
    /// Failures in the window at the moment of the trip.
    pub window_failures: u64,
    /// Outcomes in the window at the moment of the trip.
    pub window_size: u64,
}

/// A point-in-time, read-only view of one breaker for the
/// `/debug/breakers` endpoint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerSnapshot {
    /// The state at the moment of the snapshot (cooldown advanced).
    pub state: BreakerState,
    /// Failures currently in the closed-state window (0 otherwise).
    pub window_failures: u64,
    /// Outcomes currently in the closed-state window (0 otherwise).
    pub window_size: u64,
    /// Milliseconds of cooldown left while open (0 otherwise).
    pub cooldown_remaining_ms: u64,
    /// Live probes in flight while half-open (0 otherwise).
    pub probes_in_flight: u64,
}

impl CircuitBreaker {
    /// A closed breaker with the given tuning.
    pub fn new(config: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            config,
            state: Mutex::new(State::Closed {
                outcomes: VecDeque::new(),
            }),
        }
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        // Breaker state stays consistent under early unlock, so recover
        // from poisoning instead of wedging the tenant forever.
        self.state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// The current state, advancing open → half-open if the cooldown
    /// has elapsed.
    pub fn state(&self) -> BreakerState {
        let mut state = self.lock();
        self.advance(&mut state);
        match *state {
            State::Closed { .. } => BreakerState::Closed,
            State::Open { .. } => BreakerState::Open,
            State::HalfOpen { .. } => BreakerState::HalfOpen,
        }
    }

    /// A consistent read of the whole breaker (state plus the
    /// state-specific detail a debugger wants), advancing open →
    /// half-open first so the view never shows a stale cooldown.
    pub fn snapshot(&self) -> BreakerSnapshot {
        let mut state = self.lock();
        self.advance(&mut state);
        match &*state {
            State::Closed { outcomes } => BreakerSnapshot {
                state: BreakerState::Closed,
                window_failures: outcomes.iter().filter(|&&o| !o).count() as u64,
                window_size: outcomes.len() as u64,
                cooldown_remaining_ms: 0,
                probes_in_flight: 0,
            },
            State::Open { until } => BreakerSnapshot {
                state: BreakerState::Open,
                window_failures: 0,
                window_size: 0,
                cooldown_remaining_ms: until.saturating_duration_since(Instant::now()).as_millis()
                    as u64,
                probes_in_flight: 0,
            },
            State::HalfOpen { in_flight } => BreakerSnapshot {
                state: BreakerState::HalfOpen,
                window_failures: 0,
                window_size: 0,
                cooldown_remaining_ms: 0,
                probes_in_flight: *in_flight as u64,
            },
        }
    }

    fn advance(&self, state: &mut State) {
        if let State::Open { until } = *state {
            if Instant::now() >= until {
                *state = State::HalfOpen { in_flight: 0 };
            }
        }
    }

    /// Decides what one request may do. A [`BreakerDecision::Probe`]
    /// claims one of the half-open probe slots; the caller *must*
    /// report the probe's outcome via [`CircuitBreaker::record`] (a
    /// dropped probe is released by recording a failure).
    pub fn decide(&self) -> BreakerDecision {
        let mut state = self.lock();
        self.advance(&mut state);
        match &mut *state {
            State::Closed { .. } => BreakerDecision::Allow,
            State::Open { .. } => BreakerDecision::Deny,
            State::HalfOpen { in_flight } => {
                if *in_flight < self.config.half_open_probes {
                    *in_flight += 1;
                    BreakerDecision::Probe
                } else {
                    BreakerDecision::Deny
                }
            }
        }
    }

    /// Records one live-solve outcome. Returns trip details at the
    /// moment the breaker transitions closed → open (and only then), so
    /// the caller can emit the telemetry event exactly once per trip.
    pub fn record(&self, ok: bool) -> Option<TripInfo> {
        let mut state = self.lock();
        self.advance(&mut state);
        match &mut *state {
            State::Closed { outcomes } => {
                outcomes.push_back(ok);
                while outcomes.len() > self.config.window {
                    outcomes.pop_front();
                }
                let failures = outcomes.iter().filter(|&&o| !o).count();
                let size = outcomes.len();
                if size >= self.config.min_samples
                    && failures as f64 / size as f64 >= self.config.trip_error_rate
                {
                    *state = State::Open {
                        until: Instant::now() + self.config.cooldown,
                    };
                    return Some(TripInfo {
                        window_failures: failures as u64,
                        window_size: size as u64,
                    });
                }
                None
            }
            State::Open { .. } => None,
            State::HalfOpen { .. } => {
                if ok {
                    // One healthy probe closes the breaker; the window
                    // restarts empty so stale failures don't re-trip it.
                    *state = State::Closed {
                        outcomes: VecDeque::new(),
                    };
                } else {
                    *state = State::Open {
                        until: Instant::now() + self.config.cooldown,
                    };
                }
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config() -> BreakerConfig {
        BreakerConfig {
            window: 4,
            min_samples: 4,
            trip_error_rate: 0.5,
            cooldown: Duration::from_millis(10),
            half_open_probes: 1,
        }
    }

    #[test]
    fn trips_at_the_error_rate_and_not_before() {
        let b = CircuitBreaker::new(fast_config());
        assert!(b.record(false).is_none(), "below min_samples");
        assert!(b.record(true).is_none());
        assert!(b.record(false).is_none());
        let trip = b.record(false).expect("2/4 failures >= 50% trips");
        assert_eq!(trip.window_failures, 3);
        assert_eq!(trip.window_size, 4);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.decide(), BreakerDecision::Deny);
    }

    #[test]
    fn snapshot_reports_state_specific_detail() {
        let b = CircuitBreaker::new(fast_config());
        b.record(false);
        b.record(true);
        let snap = b.snapshot();
        assert_eq!(snap.state, BreakerState::Closed);
        assert_eq!(snap.window_failures, 1);
        assert_eq!(snap.window_size, 2);
        for _ in 0..4 {
            b.record(false);
        }
        let snap = b.snapshot();
        assert_eq!(snap.state, BreakerState::Open);
        assert!(snap.cooldown_remaining_ms <= 10, "bounded by the cooldown");
        std::thread::sleep(Duration::from_millis(15));
        assert_eq!(b.decide(), BreakerDecision::Probe);
        let snap = b.snapshot();
        assert_eq!(snap.state, BreakerState::HalfOpen);
        assert_eq!(snap.probes_in_flight, 1);
    }

    #[test]
    fn cooldown_leads_to_half_open_probe_then_close_or_reopen() {
        let b = CircuitBreaker::new(fast_config());
        for _ in 0..4 {
            b.record(false);
        }
        assert_eq!(b.state(), BreakerState::Open);
        std::thread::sleep(Duration::from_millis(15));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert_eq!(b.decide(), BreakerDecision::Probe);
        assert_eq!(
            b.decide(),
            BreakerDecision::Deny,
            "only one concurrent probe"
        );
        // Failed probe re-opens; successful probe closes.
        assert!(b.record(false).is_none());
        assert_eq!(b.state(), BreakerState::Open);
        std::thread::sleep(Duration::from_millis(15));
        assert_eq!(b.decide(), BreakerDecision::Probe);
        b.record(true);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.decide(), BreakerDecision::Allow);
    }
}
