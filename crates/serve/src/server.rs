//! The service: acceptor, bounded worker pool, connection watchdog,
//! and the per-request robustness ladder.
//!
//! One request's life:
//!
//! 1. **Accept + admit.** The acceptor thread accepts the TCP
//!    connection and tries a non-blocking push into the bounded job
//!    queue. A full (or closing) queue sheds *right there* with a typed
//!    `429` carrying `retry_after_ms` — the acceptor never blocks on a
//!    slow worker pool.
//! 2. **Parse + quota.** A worker pops the job, reads the request under
//!    a read timeout, and claims the tenant's concurrency slot; an
//!    exhausted quota is the second shed point (also a typed `429`).
//! 3. **Surrogate, then solve under budget.** The calibrated surrogate
//!    store gets first refusal: an analytic request whose key is
//!    calibrated is answered from the curve (marked `surrogate: true`)
//!    with no solver work at all. Otherwise the request's `timeout_ms`
//!    (measured from *admission*, so queue wait counts) becomes a
//!    [`ferrocim_spice::Budget`] deadline, and a
//!    [`ferrocim_spice::CancelToken`] is registered with the watchdog
//!    thread, which trips it if the client disconnects mid-solve.
//! 4. **Retry, break, degrade.** Transient solver failures (numerical
//!    blowups, uncertified solves, worker-contained panics) walk the
//!    seeded backoff schedule while the global [`RetryBudget`] allows;
//!    the tenant's circuit breaker records every live outcome, and once
//!    it opens — or retries run dry — the answer comes from the
//!    surrogate's degraded tier (the startup-calibrated all-ones
//!    curve), marked `degraded: true`.
//! 5. **Answer, always typed.** Every terminal outcome is one of the
//!    bodies in [`crate::api`]; even a panic unwinds into a typed
//!    `500`, and a vanished client is the only case that produces no
//!    response at all.
//!
//! Every connection is stamped with a seeded 64-bit **request id** at
//! accept time, echoed (as fixed-width hex) in every response body and
//! attached to every `Serve*` telemetry event, so one grep correlates
//! a client-reported failure with the server's trace and flight dump.
//! Terminal MAC outcomes additionally emit one
//! [`Event::ServeDone`] each — the feed for the per-tenant dimensional
//! metrics and the SLO burn-rate monitor in
//! [`ferrocim_telemetry::Aggregator`]. The read-only `/debug/requests`,
//! `/debug/queue`, `/debug/breakers`, and `/debug/flight` endpoints
//! expose in-flight requests, admission state, breaker detail, and the
//! flight-recorder ring; `/debug/*` GETs are admission-exempt (answered
//! inline by the acceptor even when the queue is full), because
//! introspection matters most mid-incident.

use crate::api;
use crate::backend::{MacBackend, Solution, SolveRequest};
use crate::breaker::{BreakerConfig, BreakerDecision, CircuitBreaker};
use crate::http::{self, HttpError, Request};
use crate::queue::{BoundedQueue, TenantGovernor};
use crate::retry::{RetryBudget, RetryPolicy};
use ferrocim_cim::CimError;
use ferrocim_spice::{Budget, CancelToken, Deadline, SpiceError};
use ferrocim_telemetry::{
    Aggregator, Event, FlightRecorder, ServeBackendKind, ServeOutcome, Telemetry,
};
use ferrocim_units::Celsius;
use serde_json::{json, Value};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning for one [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads (also the live-solve concurrency bound).
    pub workers: usize,
    /// Admission-queue capacity; pushes beyond it are shed.
    pub queue_capacity: usize,
    /// Concurrent requests allowed per tenant.
    pub tenant_quota: usize,
    /// Deadline applied when a request carries no `timeout_ms`.
    pub default_timeout_ms: u64,
    /// Upper clamp on client-requested deadlines.
    pub max_timeout_ms: u64,
    /// Per-connection socket read timeout.
    pub read_timeout: Duration,
    /// The retry ladder for transient solve failures.
    pub retry: RetryPolicy,
    /// Base seed for the per-request jittered backoff schedules.
    pub retry_seed: u64,
    /// Milli-tokens deposited into the retry budget per admission
    /// (1000 = one whole retry; 100 caps retries at 10% of traffic).
    pub retry_deposit_millis: u64,
    /// Retries the budget may bank.
    pub retry_budget_cap: u64,
    /// Per-tenant circuit-breaker tuning.
    pub breaker: BreakerConfig,
    /// Surrogate check-mode sampling period: roughly one in this many
    /// surrogate-answered queries is re-solved live and compared to the
    /// certified error envelope; 0 disables checking (only used by
    /// backends built through [`crate::CimBackend::new`]).
    pub surrogate_check_every: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_capacity: 16,
            tenant_quota: 4,
            default_timeout_ms: 2_000,
            max_timeout_ms: 30_000,
            read_timeout: Duration::from_secs(2),
            retry: RetryPolicy::default(),
            retry_seed: 0x5EED,
            retry_deposit_millis: 100,
            retry_budget_cap: 10,
            breaker: BreakerConfig::default(),
            surrogate_check_every: 0,
        }
    }
}

struct Job {
    stream: TcpStream,
    admitted_at: Instant,
    request_id: u64,
}

/// SplitMix64: turns the sequential accept counter into well-mixed,
/// reproducible request ids (seeded by `ServeConfig::retry_seed`, so a
/// test run's ids are stable).
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One request currently being parsed or solved, as `/debug/requests`
/// reports it. Registered after admission, removed by RAII on every
/// exit path (including panics unwound by the worker's `catch_unwind`).
struct InflightEntry {
    request_id: u64,
    tenant: String,
    admitted_at: Instant,
    deadline_at: Option<Instant>,
}

/// An entry the watchdog polls: a dup of the connection's fd plus the
/// cancel token to trip when the peer goes away.
struct WatchEntry {
    id: u64,
    stream: TcpStream,
    token: CancelToken,
}

struct Shared {
    config: ServeConfig,
    backend: Arc<dyn MacBackend>,
    queue: Arc<BoundedQueue<Job>>,
    governor: Arc<TenantGovernor>,
    breakers: Mutex<Vec<(String, Arc<CircuitBreaker>)>>,
    retry_budget: RetryBudget,
    aggregator: Arc<Aggregator>,
    telemetry: Telemetry,
    shutting_down: AtomicBool,
    watch: Mutex<Vec<WatchEntry>>,
    watch_seq: AtomicU64,
    request_seq: AtomicU64,
    inflight: Mutex<Vec<InflightEntry>>,
    flight: Option<Arc<FlightRecorder>>,
}

impl Shared {
    fn breaker_for(&self, tenant: &str) -> Arc<CircuitBreaker> {
        let mut breakers = self
            .breakers
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if let Some((_, breaker)) = breakers.iter().find(|(name, _)| name == tenant) {
            return Arc::clone(breaker);
        }
        let breaker = Arc::new(CircuitBreaker::new(self.config.breaker));
        breakers.push((tenant.to_string(), Arc::clone(&breaker)));
        breaker
    }

    fn emit(&self, event: Event) {
        self.telemetry.record(&event);
    }

    /// The client-facing backoff hint when shedding: scales with how
    /// deep the queue is so a deeply-overloaded server pushes retries
    /// further out.
    fn retry_after_hint(&self, queue_depth: usize) -> u64 {
        50 + 25 * queue_depth as u64
    }

    fn watch_register(&self, stream: &TcpStream, token: &CancelToken) -> Option<u64> {
        let clone = stream.try_clone().ok()?;
        let id = self.watch_seq.fetch_add(1, Ordering::Relaxed);
        self.watch
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .push(WatchEntry {
                id,
                stream: clone,
                token: token.clone(),
            });
        Some(id)
    }

    fn watch_deregister(&self, id: Option<u64>) {
        let Some(id) = id else { return };
        self.watch
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .retain(|entry| entry.id != id);
    }

    /// Allocates the next request id: a seeded SplitMix64 mix of the
    /// accept counter, so ids look random on the wire but replay
    /// identically for a fixed `retry_seed`.
    fn next_request_id(&self) -> u64 {
        let seq = self.request_seq.fetch_add(1, Ordering::Relaxed);
        splitmix64(self.config.retry_seed ^ seq)
    }

    /// Emits the terminal [`Event::ServeDone`] for one MAC request and
    /// drains the aggregator's SLO latch into a typed
    /// [`Event::SloBreach`] — routed through the same telemetry tee, so
    /// trace sinks and the flight recorder's `SloBreach` dump trigger
    /// both observe it.
    fn finish_request(
        &self,
        request_id: u64,
        tenant: &str,
        outcome: ServeOutcome,
        backend: ServeBackendKind,
        admitted_at: Instant,
    ) {
        let latency_ms = admitted_at.elapsed().as_secs_f64() * 1e3;
        self.emit(Event::ServeDone {
            request_id,
            tenant: tenant.to_string(),
            outcome,
            backend,
            latency_ms,
        });
        if let Some(info) = self.aggregator.take_slo_breach() {
            self.emit(Event::SloBreach {
                window: info.window,
                bad: info.bad,
                burn_pct: info.burn * 100.0,
            });
        }
    }

    fn inflight_register(
        &self,
        request_id: u64,
        tenant: &str,
        admitted_at: Instant,
        deadline_at: Option<Instant>,
    ) -> InflightGuard<'_> {
        self.inflight
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .push(InflightEntry {
                request_id,
                tenant: tenant.to_string(),
                admitted_at,
                deadline_at,
            });
        InflightGuard {
            shared: self,
            request_id,
        }
    }
}

/// RAII removal of one [`InflightEntry`]; dropping on any exit path
/// keeps `/debug/requests` free of ghosts.
struct InflightGuard<'a> {
    shared: &'a Shared,
    request_id: u64,
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.shared
            .inflight
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .retain(|entry| entry.request_id != self.request_id);
    }
}

/// A running service; dropping it without [`Server::shutdown`] aborts
/// the threads detached (tests should always call `shutdown`).
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    watchdog: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the acceptor + worker pool + watchdog, and returns
    /// once the service is accepting connections.
    ///
    /// `telemetry` receives every serve event and should usually wrap
    /// `aggregator` (plus any trace sink); the aggregator is what
    /// `/metrics` renders.
    ///
    /// # Errors
    ///
    /// Returns binding failures.
    pub fn start(
        config: ServeConfig,
        backend: Arc<dyn MacBackend>,
        telemetry: Telemetry,
        aggregator: Arc<Aggregator>,
    ) -> std::io::Result<Server> {
        Server::start_observed(config, backend, telemetry, aggregator, None)
    }

    /// [`Server::start`] plus an optional flight recorder. The recorder
    /// should already be wired into `telemetry` (usually via
    /// [`ferrocim_telemetry::Tee`]) so it sees every event; passing it
    /// here additionally exposes its ring at `GET /debug/flight`.
    ///
    /// # Errors
    ///
    /// Returns binding failures.
    pub fn start_observed(
        config: ServeConfig,
        backend: Arc<dyn MacBackend>,
        telemetry: Telemetry,
        aggregator: Arc<Aggregator>,
        flight: Option<Arc<FlightRecorder>>,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(config.queue_capacity),
            governor: TenantGovernor::new(config.tenant_quota),
            retry_budget: RetryBudget::new(config.retry_deposit_millis, config.retry_budget_cap),
            breakers: Mutex::new(Vec::new()),
            aggregator,
            telemetry,
            shutting_down: AtomicBool::new(false),
            watch: Mutex::new(Vec::new()),
            watch_seq: AtomicU64::new(0),
            request_seq: AtomicU64::new(0),
            inflight: Mutex::new(Vec::new()),
            flight,
            backend,
            config,
        });
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&shared, &listener))
        };
        let workers = (0..shared.config.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        let watchdog = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || watchdog_loop(&shared))
        };
        Ok(Server {
            addr,
            shared,
            acceptor: Some(acceptor),
            workers,
            watchdog: Some(watchdog),
        })
    }

    /// The bound address (resolves the ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The aggregator `/metrics` renders (for in-process assertions).
    pub fn aggregator(&self) -> &Arc<Aggregator> {
        &self.shared.aggregator
    }

    /// The flight recorder `/debug/flight` exposes, when one was wired
    /// in via [`Server::start_observed`].
    pub fn flight(&self) -> Option<&Arc<FlightRecorder>> {
        self.shared.flight.as_ref()
    }

    /// Graceful shutdown: stop accepting, drain every admitted job,
    /// join all threads. Idempotent against a racing drop.
    pub fn shutdown(mut self) {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        // Unblock the acceptor with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // Only after the acceptor stops pushing may the queue close;
        // workers drain what was admitted, then observe `None`.
        self.shared.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(watchdog) = self.watchdog.take() {
            let _ = watchdog.join();
        }
    }
}

fn accept_loop(shared: &Shared, listener: &TcpListener) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            if shared.shutting_down.load(Ordering::SeqCst) {
                return;
            }
            continue;
        };
        let request_id = shared.next_request_id();
        if shared.shutting_down.load(Ordering::SeqCst) {
            // A connection that slipped in during shutdown still gets a
            // typed shed (this also answers the shutdown's own wake-up
            // connect, which ignores it).
            respond_and_drain(
                stream,
                429,
                "Too Many Requests",
                &api::overloaded_body("draining", shared.retry_after_hint(0), 0, request_id),
            );
            return;
        }
        let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
        let _ = stream.set_nodelay(true);
        match shared.queue.push(Job {
            stream,
            admitted_at: Instant::now(),
            request_id,
        }) {
            Ok(depth) => {
                shared.emit(Event::ServeAdmitted {
                    queue_depth: depth as u64,
                    request_id,
                });
                shared.retry_budget.deposit();
            }
            Err(job) => shed_or_debug(shared, job),
        }
    }
}

/// The queue-full path. Introspection must keep working *especially*
/// under overload, so before shedding, the acceptor reads the request
/// under a tight bound and answers a `GET /debug/*` inline — the same
/// 100 ms the shed drain already tolerates, because the response to a
/// full queue must never depend on the wedged worker pool. Anything
/// else is shed with the typed 429.
fn shed_or_debug(shared: &Shared, mut job: Job) {
    let _ = job
        .stream
        .set_read_timeout(Some(Duration::from_millis(100)));
    if let Ok(request) = http::read_request(&mut job.stream) {
        if request.method == "GET"
            && request.path.starts_with("/debug/")
            && serve_debug(shared, &mut job.stream, &request.path, job.request_id)
        {
            return;
        }
    }
    let depth = shared.queue.depth();
    let retry_after_ms = shared.retry_after_hint(depth);
    shared.emit(Event::ServeShed {
        queue_depth: depth as u64,
        retry_after_ms,
        request_id: job.request_id,
        // Shed before the body was parsed: the tenant is unknowable.
        tenant: "unknown".to_string(),
    });
    shared.finish_request(
        job.request_id,
        "unknown",
        ServeOutcome::Shed,
        ServeBackendKind::None,
        job.admitted_at,
    );
    respond_and_drain(
        job.stream,
        429,
        "Too Many Requests",
        &api::overloaded_body("queue_full", retry_after_ms, depth, job.request_id),
    );
}

fn respond(stream: &mut TcpStream, status: u16, reason: &str, body: &Value) {
    let text = serde_json::to_string(body).unwrap_or_else(|_| "{}".to_string());
    // A peer that vanished mid-response already has everything the
    // service can give it; the watchdog/cancel path owns that case.
    let _ = http::write_response(stream, status, reason, "application/json", text.as_bytes());
}

/// Responds on a stream whose request was (possibly) never read, then
/// drains the unread bytes before closing. Closing a socket with
/// unread inbound data makes the kernel send RST instead of FIN, and a
/// RST discards the response sitting in the peer's receive queue — the
/// shed reply would be destroyed exactly when the client needs it.
fn respond_and_drain(mut stream: TcpStream, status: u16, reason: &str, body: &Value) {
    use std::io::Read as _;
    respond(&mut stream, status, reason, body);
    let _ = stream.shutdown(std::net::Shutdown::Write);
    // Bounded drain: waits briefly for the peer to finish sending (and
    // to close after reading the response), giving a clean FIN-FIN
    // teardown without letting a slow sender hold the acceptor hostage.
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut sink = [0u8; 1024];
    for _ in 0..64 {
        match stream.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.queue.pop() {
        let outcome = catch_unwind(AssertUnwindSafe(|| handle_connection(shared, job)));
        if let Err(_panic) = outcome {
            // The connection was consumed by the panicking handler; all
            // we can still do is keep the worker alive for the next job.
            // Solver panics are contained deeper (per-attempt), so this
            // only triggers on bugs in the serving layer itself.
        }
    }
}

fn handle_connection(shared: &Shared, mut job: Job) {
    let request = match http::read_request(&mut job.stream) {
        Ok(request) => request,
        Err(HttpError::Disconnected) => return,
        Err(e @ (HttpError::Malformed(_) | HttpError::TooLarge(_))) => {
            // The request may be partially unread (e.g. an oversized
            // body) — drain it so the close is a FIN, not a RST.
            respond_and_drain(
                job.stream,
                400,
                "Bad Request",
                &api::bad_request_body(&e.to_string(), job.request_id),
            );
            return;
        }
        Err(HttpError::Io(_)) => return,
    };
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            let body = healthz_body(shared);
            respond(&mut job.stream, 200, "OK", &body);
        }
        ("GET", "/metrics") => {
            let text = shared.aggregator.render_prometheus();
            let _ = http::write_response(
                &mut job.stream,
                200,
                "OK",
                "text/plain; version=0.0.4",
                text.as_bytes(),
            );
        }
        ("GET", path) if path.starts_with("/debug/") => {
            if !serve_debug(shared, &mut job.stream, path, job.request_id) {
                respond(
                    &mut job.stream,
                    404,
                    "Not Found",
                    &json!({"ok": false, "error": "not_found"}),
                );
            }
        }
        ("POST", "/v1/mac") => handle_mac(shared, job, &request),
        _ => {
            respond(
                &mut job.stream,
                404,
                "Not Found",
                &json!({"ok": false, "error": "not_found"}),
            );
        }
    }
}

/// Serves the read-only introspection endpoints. Returns `false` when
/// the path is not a known debug view (the caller owns the 404 or the
/// shed). Everything here reads shared state under short locks and
/// never touches the solver, so it is safe to call from the acceptor.
fn serve_debug(shared: &Shared, stream: &mut TcpStream, path: &str, request_id: u64) -> bool {
    match path {
        "/debug/requests" => {
            let now = Instant::now();
            let requests: Vec<Value> =
                shared
                    .inflight
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .iter()
                    .map(|entry| {
                        let budget_remaining_ms = match entry.deadline_at {
                            Some(deadline) => Value::Number(
                                deadline.saturating_duration_since(now).as_millis() as f64,
                            ),
                            None => Value::Null,
                        };
                        json!({
                            "request_id": (api::request_id_hex(entry.request_id)),
                            "tenant": (entry.tenant.as_str()),
                            "age_ms": (now.saturating_duration_since(entry.admitted_at)
                                .as_millis() as u64),
                            "budget_remaining_ms": budget_remaining_ms
                        })
                    })
                    .collect();
            let body = json!({
                "ok": true,
                "request_id": (api::request_id_hex(request_id)),
                "in_flight": (requests.len() as u64),
                "requests": (Value::Array(requests))
            });
            respond(stream, 200, "OK", &body);
            true
        }
        "/debug/queue" => {
            let tenants: Vec<Value> = shared
                .governor
                .snapshot()
                .into_iter()
                .map(|(tenant, in_flight)| {
                    json!({"tenant": (tenant), "in_flight": (in_flight as u64)})
                })
                .collect();
            let body = json!({
                "ok": true,
                "request_id": (api::request_id_hex(request_id)),
                "depth": (shared.queue.depth() as u64),
                "capacity": (shared.queue.capacity() as u64),
                "workers": (shared.config.workers as u64),
                "tenant_quota": (shared.governor.quota() as u64),
                "retries_banked": (shared.retry_budget.available()),
                "shutting_down": (shared.shutting_down.load(Ordering::SeqCst)),
                "tenants": (Value::Array(tenants))
            });
            respond(stream, 200, "OK", &body);
            true
        }
        "/debug/breakers" => {
            let breakers: Vec<Value> = shared
                .breakers
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .iter()
                .map(|(tenant, breaker)| {
                    let snap = breaker.snapshot();
                    json!({
                        "tenant": (tenant.as_str()),
                        "state": (snap.state.name()),
                        "window_failures": (snap.window_failures),
                        "window_size": (snap.window_size),
                        "cooldown_remaining_ms": (snap.cooldown_remaining_ms),
                        "probes_in_flight": (snap.probes_in_flight)
                    })
                })
                .collect();
            let body = json!({
                "ok": true,
                "request_id": (api::request_id_hex(request_id)),
                "breakers": (Value::Array(breakers))
            });
            respond(stream, 200, "OK", &body);
            true
        }
        "/debug/flight" => {
            match &shared.flight {
                Some(flight) => {
                    // The ring, rendered as the same ferrocim-trace-v1
                    // JSONL a dump file holds — pipe it straight into
                    // `ferrocim-trace summary -`.
                    let text = flight.render();
                    let _ = http::write_response(
                        stream,
                        200,
                        "OK",
                        "application/x-ndjson",
                        text.as_bytes(),
                    );
                }
                None => {
                    respond(
                        stream,
                        404,
                        "Not Found",
                        &json!({
                            "ok": false,
                            "error": "no_flight_recorder",
                            "request_id": (api::request_id_hex(request_id))
                        }),
                    );
                }
            }
            true
        }
        _ => false,
    }
}

fn healthz_body(shared: &Shared) -> Value {
    let breakers: Vec<Value> = shared
        .breakers
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
        .iter()
        .map(|(tenant, breaker)| {
            json!({
                "tenant": (tenant.as_str()),
                "state": (breaker.state().name())
            })
        })
        .collect();
    let draining = shared.shutting_down.load(Ordering::SeqCst);
    let any_open = breakers
        .iter()
        .any(|b| b.get("state") == Some(&Value::String("open".into())));
    let status = if draining {
        "draining"
    } else if any_open {
        "degraded"
    } else {
        "ok"
    };
    json!({
        "status": (status),
        "queue_depth": (shared.queue.depth() as u64),
        "queue_capacity": (shared.queue.capacity() as u64),
        "workers": (shared.config.workers as u64),
        "tenant_quota": (shared.governor.quota() as u64),
        "retries_banked": (shared.retry_budget.available()),
        "breakers": (Value::Array(breakers))
    })
}

/// How one live solve attempt ended, from the server's point of view.
enum AttemptOutcome {
    Ok(Solution),
    /// Retryable: blowups, convergence failures, uncertified solves,
    /// singular systems, and solver panics (contained per-attempt).
    Transient(String),
    /// The request's wall-clock budget ran out mid-solve.
    DeadlineExceeded,
    /// The client disconnected; the watchdog tripped the cancel token.
    Cancelled,
    /// Non-retryable solver misuse (surfaces as a typed 500).
    Fatal(String),
}

fn classify(
    result: Result<Result<Solution, CimError>, Box<dyn std::any::Any + Send>>,
) -> AttemptOutcome {
    match result {
        Ok(Ok(solution)) => AttemptOutcome::Ok(solution),
        Ok(Err(CimError::Spice(e))) => match e {
            SpiceError::NumericalBlowup { .. }
            | SpiceError::NoConvergence { .. }
            | SpiceError::UncertifiedSolve { .. }
            | SpiceError::SingularMatrix { .. } => AttemptOutcome::Transient(e.to_string()),
            SpiceError::Cancelled => AttemptOutcome::Cancelled,
            SpiceError::BudgetExceeded { .. } => AttemptOutcome::DeadlineExceeded,
            other => AttemptOutcome::Fatal(other.to_string()),
        },
        Ok(Err(other)) => AttemptOutcome::Fatal(other.to_string()),
        Err(_panic) => AttemptOutcome::Transient("solver panicked".to_string()),
    }
}

fn handle_mac(shared: &Shared, mut job: Job, request: &Request) {
    let request_id = job.request_id;
    let parsed = match api::MacApiRequest::parse(&request.body) {
        Ok(parsed) => parsed,
        Err(e) => {
            shared.finish_request(
                request_id,
                // The tenant field never parsed: unknowable.
                "unknown",
                ServeOutcome::Rejected,
                ServeBackendKind::None,
                job.admitted_at,
            );
            respond(
                &mut job.stream,
                400,
                "Bad Request",
                &api::bad_request_body(&e.message, request_id),
            );
            return;
        }
    };
    let width = shared.backend.cells_per_row();
    if parsed.inputs.len() != width || parsed.weights.len() != width {
        shared.finish_request(
            request_id,
            &parsed.tenant,
            ServeOutcome::Rejected,
            ServeBackendKind::None,
            job.admitted_at,
        );
        respond(
            &mut job.stream,
            400,
            "Bad Request",
            &api::bad_request_body(
                &format!(
                    "inputs and weights must each have exactly {width} entries \
                     (got {} and {})",
                    parsed.inputs.len(),
                    parsed.weights.len()
                ),
                request_id,
            ),
        );
        return;
    }
    // Second admission layer: the tenant's concurrency quota.
    let Some(permit) = shared.governor.try_acquire(&parsed.tenant) else {
        let depth = shared.queue.depth();
        let retry_after_ms = shared.retry_after_hint(depth);
        shared.emit(Event::ServeShed {
            queue_depth: depth as u64,
            retry_after_ms,
            request_id,
            tenant: parsed.tenant.clone(),
        });
        shared.finish_request(
            request_id,
            &parsed.tenant,
            ServeOutcome::Shed,
            ServeBackendKind::None,
            job.admitted_at,
        );
        respond(
            &mut job.stream,
            429,
            "Too Many Requests",
            &api::overloaded_body("tenant_quota", retry_after_ms, depth, request_id),
        );
        return;
    };
    // The deadline runs from *admission*, so time spent queued counts.
    let timeout_ms = parsed
        .timeout_ms
        .unwrap_or(shared.config.default_timeout_ms)
        .min(shared.config.max_timeout_ms);
    let deadline_at = job.admitted_at + Duration::from_millis(timeout_ms);
    if Instant::now() >= deadline_at {
        shared.finish_request(
            request_id,
            &parsed.tenant,
            ServeOutcome::Deadline,
            ServeBackendKind::None,
            job.admitted_at,
        );
        respond(
            &mut job.stream,
            504,
            "Gateway Timeout",
            &api::deadline_body("deadline expired while queued", request_id),
        );
        return;
    }
    let token = CancelToken::new();
    let budget = Budget::unlimited()
        .with_deadline(Deadline::at(deadline_at))
        .with_cancel_token(&token);
    let solve = SolveRequest {
        inputs: parsed.inputs.clone(),
        weights: parsed.weights.clone(),
        temp: Celsius(parsed.temp_c),
        budget,
        path: parsed.path,
    };
    // Hand the connection to the watchdog for the duration of the
    // solve. The dup'd fd shares O_NONBLOCK with ours, so from here on
    // the response write must tolerate `WouldBlock` (it does).
    let _ = job.stream.set_nonblocking(true);
    let watch_id = shared.watch_register(&job.stream, &token);
    let inflight = shared.inflight_register(
        request_id,
        &parsed.tenant,
        job.admitted_at,
        Some(deadline_at),
    );
    run_mac(
        shared,
        &mut job.stream,
        &parsed.tenant,
        &solve,
        deadline_at,
        request_id,
        job.admitted_at,
    );
    drop(inflight);
    shared.watch_deregister(watch_id);
    drop(permit);
}

fn run_mac(
    shared: &Shared,
    stream: &mut TcpStream,
    tenant: &str,
    solve: &SolveRequest,
    deadline_at: Instant,
    request_id: u64,
    admitted_at: Instant,
) {
    // Surrogate fast path first: a calibrated key answers without any
    // solver work, so it neither consumes a breaker probe slot nor
    // records an outcome — the breaker tracks the health of the *live*
    // solver, which this path never touched.
    if let Some(solution) = shared.backend.surrogate(solve) {
        respond(
            stream,
            200,
            "OK",
            &api::ok_body(&solution, 0, false, None, request_id),
        );
        shared.finish_request(
            request_id,
            tenant,
            ServeOutcome::Ok,
            ServeBackendKind::Surrogate,
            admitted_at,
        );
        return;
    }
    let breaker = shared.breaker_for(tenant);
    let decision = breaker.decide();
    if decision == BreakerDecision::Deny {
        let fallback = shared.backend.fallback(solve);
        shared.emit(Event::ServeDegraded {
            breaker_open: true,
            request_id,
            tenant: tenant.to_string(),
        });
        respond(
            stream,
            200,
            "OK",
            &api::ok_body(&fallback, 0, true, Some("circuit breaker open"), request_id),
        );
        shared.finish_request(
            request_id,
            tenant,
            ServeOutcome::Degraded,
            ServeBackendKind::Fallback,
            admitted_at,
        );
        return;
    }
    let is_probe = decision == BreakerDecision::Probe;
    let remaining_ms = deadline_at
        .saturating_duration_since(Instant::now())
        .as_millis() as u64;
    let schedule = if is_probe {
        // Half-open probes never retry: one attempt, report faithfully.
        Vec::new()
    } else {
        // The request id is already a seeded SplitMix64 mix of the
        // accept counter, so it doubles as the jitter seed.
        shared.config.retry.schedule(request_id, remaining_ms)
    };
    let mut attempts: u32 = 0;
    let mut backoffs = schedule.into_iter();
    loop {
        attempts += 1;
        let outcome = classify(catch_unwind(AssertUnwindSafe(|| {
            shared.backend.solve(solve)
        })));
        match outcome {
            AttemptOutcome::Ok(solution) => {
                if let Some(trip) = breaker.record(true) {
                    shared.emit(Event::ServeBreakerOpen {
                        window_failures: trip.window_failures,
                        window_size: trip.window_size,
                        request_id,
                        tenant: tenant.to_string(),
                    });
                }
                respond(
                    stream,
                    200,
                    "OK",
                    &api::ok_body(&solution, attempts, false, None, request_id),
                );
                shared.finish_request(
                    request_id,
                    tenant,
                    ServeOutcome::Ok,
                    ServeBackendKind::Live,
                    admitted_at,
                );
                return;
            }
            AttemptOutcome::Cancelled => {
                // Client is gone: the solver did not fail, so a closed
                // breaker records nothing — but an abandoned half-open
                // probe must release its slot (conservatively, as a
                // failure) or the breaker would stay half-open forever.
                if is_probe {
                    breaker.record(false);
                }
                return;
            }
            AttemptOutcome::DeadlineExceeded => {
                if is_probe {
                    breaker.record(false);
                }
                respond(
                    stream,
                    504,
                    "Gateway Timeout",
                    &api::deadline_body("solve exceeded the request deadline", request_id),
                );
                shared.finish_request(
                    request_id,
                    tenant,
                    ServeOutcome::Deadline,
                    ServeBackendKind::None,
                    admitted_at,
                );
                return;
            }
            AttemptOutcome::Fatal(message) => {
                if is_probe {
                    breaker.record(false);
                }
                respond(
                    stream,
                    500,
                    "Internal Server Error",
                    &api::internal_body(&message, request_id),
                );
                shared.finish_request(
                    request_id,
                    tenant,
                    ServeOutcome::Error,
                    ServeBackendKind::None,
                    admitted_at,
                );
                return;
            }
            AttemptOutcome::Transient(message) => {
                if let Some(trip) = breaker.record(false) {
                    shared.emit(Event::ServeBreakerOpen {
                        window_failures: trip.window_failures,
                        window_size: trip.window_size,
                        request_id,
                        tenant: tenant.to_string(),
                    });
                }
                let next_backoff = backoffs.next();
                // `state()` (not `decide()`): mid-request checks must
                // never claim a half-open probe slot they won't use.
                let can_retry = next_backoff.is_some_and(|backoff| {
                    Instant::now() + Duration::from_millis(backoff) < deadline_at
                        && breaker.state() == crate::breaker::BreakerState::Closed
                        && shared.retry_budget.try_spend()
                });
                if let (true, Some(backoff)) = (can_retry, next_backoff) {
                    shared.emit(Event::ServeRetry {
                        attempt: attempts as u64,
                        backoff_ms: backoff,
                        request_id,
                    });
                    std::thread::sleep(Duration::from_millis(backoff));
                    continue;
                }
                // Out of retries (schedule, deadline, budget, or the
                // breaker just opened): degrade instead of failing.
                let fallback = shared.backend.fallback(solve);
                shared.emit(Event::ServeDegraded {
                    breaker_open: breaker.state() == crate::breaker::BreakerState::Open,
                    request_id,
                    tenant: tenant.to_string(),
                });
                respond(
                    stream,
                    200,
                    "OK",
                    &api::ok_body(&fallback, attempts, false, Some(&message), request_id),
                );
                shared.finish_request(
                    request_id,
                    tenant,
                    ServeOutcome::Degraded,
                    ServeBackendKind::Fallback,
                    admitted_at,
                );
                return;
            }
        }
    }
}

fn watchdog_loop(shared: &Shared) {
    let mut buf = [0u8; 1];
    while !shared.shutting_down.load(Ordering::SeqCst) {
        {
            let watch = shared
                .watch
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            for entry in watch.iter() {
                match entry.stream.peek(&mut buf) {
                    // EOF: the peer closed its write half (or the whole
                    // connection) — stop burning solver time on it.
                    Ok(0) => entry.token.cancel(),
                    // Data waiting or nothing yet: the peer is alive.
                    Ok(_) => {}
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    // Reset/aborted: the peer is gone.
                    Err(_) => entry.token.cancel(),
                }
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}
