//! Property tests for the retry policy (satellite to the serving PR).
//!
//! Two invariants keep retries from making overload worse:
//!
//! 1. **Deadline-bounded**: the *total* backoff a schedule can sleep
//!    never exceeds the request deadline, for any policy and seed — a
//!    retrying request can never outlive the budget the client gave it.
//! 2. **Reproducible**: a schedule is a pure function of `(policy,
//!    seed, deadline)`, bitwise — so a probe run or an incident report
//!    can be replayed exactly from its seed.

use ferrocim_serve::RetryPolicy;
use proptest::prelude::*;

fn policy(
    max_attempts: u32,
    base_ms: u64,
    multiplier: f64,
    cap_ms: u64,
    jitter: f64,
) -> RetryPolicy {
    RetryPolicy {
        max_attempts,
        base_ms,
        multiplier,
        cap_ms,
        jitter,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Total sleep across the whole schedule fits inside the deadline,
    /// and no single backoff exceeds the policy cap.
    #[test]
    fn total_backoff_never_exceeds_the_deadline(
        max_attempts in 1u32..8,
        base_ms in 1u64..500,
        multiplier in 1.0f64..4.0,
        cap_ms in 1u64..2_000,
        jitter in 0.0f64..1.0,
        seed in 0u64..u64::MAX,
        deadline_ms in 0u64..10_000,
    ) {
        let p = policy(max_attempts, base_ms, multiplier, cap_ms, jitter);
        let schedule = p.schedule(seed, deadline_ms);
        let total: u64 = schedule.iter().sum();
        prop_assert!(
            total <= deadline_ms,
            "schedule {schedule:?} sleeps {total} ms > deadline {deadline_ms} ms"
        );
        for backoff in &schedule {
            prop_assert!(
                *backoff <= cap_ms,
                "backoff {backoff} ms exceeds cap {cap_ms} ms (base {base_ms})"
            );
        }
        prop_assert!(
            schedule.len() < max_attempts as usize,
            "at most max_attempts - 1 retries"
        );
    }

    /// The jittered schedule is bitwise-reproducible per seed, and a
    /// different seed with nonzero jitter is allowed to differ (we only
    /// assert determinism, not divergence, since small schedules can
    /// coincide).
    #[test]
    fn schedule_is_bitwise_reproducible_per_seed(
        max_attempts in 1u32..8,
        base_ms in 1u64..500,
        multiplier in 1.0f64..4.0,
        cap_ms in 1u64..2_000,
        jitter in 0.0f64..1.0,
        seed in 0u64..u64::MAX,
        deadline_ms in 0u64..10_000,
    ) {
        let p = policy(max_attempts, base_ms, multiplier, cap_ms, jitter);
        let first = p.schedule(seed, deadline_ms);
        let second = p.schedule(seed, deadline_ms);
        prop_assert_eq!(&first, &second, "same seed, same schedule");
        // A copied policy is the same pure function.
        let copied = p;
        let third = copied.schedule(seed, deadline_ms);
        prop_assert_eq!(&first, &third);
    }

    /// Zero jitter degenerates to the deterministic exponential ladder,
    /// independent of seed.
    #[test]
    fn zero_jitter_ignores_the_seed(
        max_attempts in 1u32..8,
        base_ms in 1u64..500,
        multiplier in 1.0f64..4.0,
        cap_ms in 1u64..2_000,
        seed_a in 0u64..u64::MAX,
        seed_b in 0u64..u64::MAX,
        deadline_ms in 0u64..10_000,
    ) {
        let p = policy(max_attempts, base_ms, multiplier, cap_ms, 0.0);
        prop_assert_eq!(
            p.schedule(seed_a, deadline_ms),
            p.schedule(seed_b, deadline_ms)
        );
    }
}
