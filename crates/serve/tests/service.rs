//! End-to-end service tests over real TCP connections.
//!
//! Most tests use a stub backend so they exercise the *serving* layers
//! (admission, deadlines, retries, breaker, shutdown) at millisecond
//! speed; one test runs the real `CimBackend` end to end. Every
//! response observed anywhere in this file must be one of the typed
//! bodies — that is the robustness contract the probe bench also
//! enforces under load.

use ferrocim_cim::CimError;
use ferrocim_serve::{
    http_request, BreakerConfig, ChaosBackend, ChaosPlan, CimBackend, MacBackend, RetryPolicy,
    ServeConfig, Server, Solution, SolveRequest,
};
use ferrocim_telemetry::{Aggregator, FlightRecorder, Tee, Telemetry};
use ferrocim_units::Volt;
use serde_json::Value;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A fast deterministic backend that honors the request budget while
/// "solving", so deadline and cancellation propagation are testable
/// without a real transient.
struct StubBackend {
    width: usize,
    solve_delay: Duration,
}

impl StubBackend {
    fn instant(width: usize) -> StubBackend {
        StubBackend {
            width,
            solve_delay: Duration::ZERO,
        }
    }

    fn slow(width: usize, delay: Duration) -> StubBackend {
        StubBackend {
            width,
            solve_delay: delay,
        }
    }
}

impl MacBackend for StubBackend {
    fn solve(&self, request: &SolveRequest) -> Result<Solution, CimError> {
        let end = Instant::now() + self.solve_delay;
        loop {
            request.budget.check().map_err(CimError::Spice)?;
            if Instant::now() >= end {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        let k = request.true_mac();
        Ok(Solution {
            v_acc: Volt(0.05 * k as f64),
            readout: k,
            expected: k,
            energy_j: 1.0e-15,
            latency_s: 6.9e-9,
            degraded: false,
            surrogate: false,
        })
    }

    fn fallback(&self, request: &SolveRequest) -> Solution {
        let k = request.true_mac();
        Solution {
            v_acc: Volt(0.05 * k as f64),
            readout: k,
            expected: k,
            energy_j: 0.0,
            latency_s: 0.0,
            degraded: true,
            surrogate: false,
        }
    }

    fn cells_per_row(&self) -> usize {
        self.width
    }
}

fn start(config: ServeConfig, backend: Arc<dyn MacBackend>) -> Server {
    let aggregator = Arc::new(Aggregator::new());
    let telemetry = Telemetry::new(aggregator.clone());
    Server::start(config, backend, telemetry, aggregator).expect("bind ephemeral port")
}

fn mac_body(tenant: &str, timeout_ms: u64) -> Vec<u8> {
    format!(
        r#"{{"tenant":"{tenant}","inputs":[true,true,false,false],
            "weights":[true,true,true,false],"timeout_ms":{timeout_ms}}}"#
    )
    .into_bytes()
}

const CLIENT_TIMEOUT: Duration = Duration::from_secs(10);

/// Asserts a body is one of the typed response shapes and returns it.
fn typed_json(status: u16, body: &[u8]) -> Value {
    let text = std::str::from_utf8(body).expect("response body is UTF-8");
    let doc: Value = serde_json::from_str(text).expect("response body is JSON");
    match status {
        200 => assert_eq!(doc.get("ok"), Some(&Value::Bool(true)), "200 carries ok"),
        429 => {
            assert_eq!(
                doc.get("error"),
                Some(&Value::String("overloaded".into())),
                "429 is the typed overload body"
            );
            assert!(
                matches!(doc.get("retry_after_ms"), Some(Value::Number(n)) if *n > 0.0),
                "429 carries a positive retry_after_ms"
            );
        }
        504 => assert_eq!(
            doc.get("error"),
            Some(&Value::String("deadline_exceeded".into()))
        ),
        400 => assert_eq!(doc.get("error"), Some(&Value::String("bad_request".into()))),
        500 => assert_eq!(doc.get("error"), Some(&Value::String("internal".into()))),
        other => panic!("untyped status {other}: {text}"),
    }
    doc
}

#[test]
fn ok_request_round_trips_with_health_and_metrics() {
    let server = start(ServeConfig::default(), Arc::new(StubBackend::instant(4)));
    let addr = server.addr();
    let resp = http_request(
        addr,
        "POST",
        "/v1/mac",
        &mac_body("t0", 2000),
        CLIENT_TIMEOUT,
    )
    .expect("request");
    assert_eq!(resp.status, 200);
    let doc = typed_json(resp.status, &resp.body);
    assert_eq!(doc.get("expected"), Some(&Value::Number(2.0)));
    assert_eq!(doc.get("degraded"), Some(&Value::Bool(false)));

    let health = http_request(addr, "GET", "/healthz", b"", CLIENT_TIMEOUT).expect("healthz");
    assert_eq!(health.status, 200);
    let health_doc = health.json().expect("healthz JSON");
    assert_eq!(health_doc.get("status"), Some(&Value::String("ok".into())));

    let metrics = http_request(addr, "GET", "/metrics", b"", CLIENT_TIMEOUT).expect("metrics");
    let text = String::from_utf8_lossy(&metrics.body).to_string();
    assert!(text.contains("ferrocim_serve_admitted_total"));
    let counts = server.aggregator().counts();
    assert!(counts.serve_admitted >= 3, "all three requests admitted");
    assert_eq!(counts.serve_shed, 0);
    server.shutdown();
}

#[test]
fn overload_sheds_typed_429_and_never_wedges() {
    let config = ServeConfig {
        workers: 1,
        queue_capacity: 2,
        tenant_quota: 64,
        ..ServeConfig::default()
    };
    let server = start(
        config,
        Arc::new(StubBackend::slow(4, Duration::from_millis(150))),
    );
    let addr = server.addr();
    let clients: Vec<_> = (0..10)
        .map(|i| {
            std::thread::spawn(move || {
                http_request(
                    addr,
                    "POST",
                    "/v1/mac",
                    &mac_body(&format!("t{i}"), 5000),
                    CLIENT_TIMEOUT,
                )
            })
        })
        .collect();
    let mut ok = 0;
    let mut shed = 0;
    for client in clients {
        let resp = client.join().expect("client thread").expect("response");
        typed_json(resp.status, &resp.body);
        match resp.status {
            200 => ok += 1,
            429 => shed += 1,
            other => panic!("unexpected status under overload: {other}"),
        }
    }
    assert!(ok >= 1, "some requests complete");
    assert!(shed >= 1, "a 1-worker/2-deep server must shed 10 bursts");
    let counts = server.aggregator().counts();
    assert_eq!(counts.serve_shed, shed as u64);
    // The server is still healthy after the burst.
    let resp = http_request(
        addr,
        "POST",
        "/v1/mac",
        &mac_body("after", 5000),
        CLIENT_TIMEOUT,
    )
    .expect("post-burst request");
    assert_eq!(resp.status, 200);
    server.shutdown();
}

#[test]
fn tenant_quota_sheds_second_request() {
    let config = ServeConfig {
        workers: 4,
        queue_capacity: 16,
        tenant_quota: 1,
        ..ServeConfig::default()
    };
    let server = start(
        config,
        Arc::new(StubBackend::slow(4, Duration::from_millis(200))),
    );
    let addr = server.addr();
    let first = std::thread::spawn(move || {
        http_request(
            addr,
            "POST",
            "/v1/mac",
            &mac_body("hog", 5000),
            CLIENT_TIMEOUT,
        )
    });
    std::thread::sleep(Duration::from_millis(60));
    let second = http_request(
        addr,
        "POST",
        "/v1/mac",
        &mac_body("hog", 5000),
        CLIENT_TIMEOUT,
    )
    .expect("second request");
    assert_eq!(second.status, 429, "same-tenant concurrent request shed");
    let doc = typed_json(second.status, &second.body);
    assert_eq!(
        doc.get("reason"),
        Some(&Value::String("tenant_quota".into()))
    );
    // A different tenant is unaffected.
    let other = http_request(
        addr,
        "POST",
        "/v1/mac",
        &mac_body("other", 5000),
        CLIENT_TIMEOUT,
    )
    .expect("other tenant");
    assert_eq!(other.status, 200);
    let first = first.join().expect("join").expect("first response");
    assert_eq!(first.status, 200);
    server.shutdown();
}

#[test]
fn expired_deadline_is_a_typed_504() {
    let server = start(
        ServeConfig::default(),
        Arc::new(StubBackend::slow(4, Duration::from_secs(5))),
    );
    let addr = server.addr();
    let resp =
        http_request(addr, "POST", "/v1/mac", &mac_body("t", 80), CLIENT_TIMEOUT).expect("request");
    assert_eq!(resp.status, 504);
    typed_json(resp.status, &resp.body);
    server.shutdown();
}

#[test]
fn malformed_bodies_get_typed_400() {
    let server = start(ServeConfig::default(), Arc::new(StubBackend::instant(4)));
    let addr = server.addr();
    for body in [
        b"not json at all".to_vec(),
        br#"{"inputs":[true],"weights":[true]}"#.to_vec(), // wrong width
        br#"{"inputs":"x","weights":[true]}"#.to_vec(),
    ] {
        let resp = http_request(addr, "POST", "/v1/mac", &body, CLIENT_TIMEOUT).expect("request");
        assert_eq!(resp.status, 400);
        typed_json(resp.status, &resp.body);
    }
    let resp = http_request(addr, "GET", "/nope", b"", CLIENT_TIMEOUT).expect("request");
    assert_eq!(resp.status, 404);
    server.shutdown();
}

#[test]
fn chaos_faults_degrade_then_trip_the_breaker() {
    let config = ServeConfig {
        workers: 2,
        retry: RetryPolicy {
            max_attempts: 2,
            base_ms: 1,
            multiplier: 1.0,
            cap_ms: 2,
            jitter: 0.5,
        },
        breaker: BreakerConfig {
            window: 4,
            min_samples: 4,
            trip_error_rate: 0.5,
            cooldown: Duration::from_secs(30),
            half_open_probes: 1,
        },
        ..ServeConfig::default()
    };
    let chaotic = ChaosBackend::new(
        StubBackend::instant(4),
        ChaosPlan {
            seed: 7,
            blowup_probability: 1.0,
            uncertified_probability: 0.0,
            panic_probability: 0.0,
        },
    );
    let server = start(config, Arc::new(chaotic));
    let addr = server.addr();
    let mut saw_breaker_open_response = false;
    for _ in 0..8 {
        let resp = http_request(
            addr,
            "POST",
            "/v1/mac",
            &mac_body("t", 2000),
            CLIENT_TIMEOUT,
        )
        .expect("request");
        assert_eq!(resp.status, 200, "faults degrade, never fail");
        let doc = typed_json(resp.status, &resp.body);
        assert_eq!(
            doc.get("degraded"),
            Some(&Value::Bool(true)),
            "every all-faulty solve must fall back"
        );
        assert_eq!(
            doc.get("expected"),
            Some(&Value::Number(2.0)),
            "the fallback still answers the MAC"
        );
        if doc.get("breaker_open") == Some(&Value::Bool(true)) {
            saw_breaker_open_response = true;
        }
    }
    assert!(
        saw_breaker_open_response,
        "the breaker opens under sustained faults"
    );
    let counts = server.aggregator().counts();
    assert!(counts.serve_degraded >= 8);
    assert!(counts.serve_breaker_open >= 1, "trip event emitted");
    let health = http_request(addr, "GET", "/healthz", b"", CLIENT_TIMEOUT).expect("healthz");
    let health_doc = health.json().expect("healthz JSON");
    assert_eq!(
        health_doc.get("status"),
        Some(&Value::String("degraded".into())),
        "healthz reflects the open breaker"
    );
    server.shutdown();
}

#[test]
fn injected_panics_are_contained_and_substituted() {
    let chaotic = ChaosBackend::new(
        StubBackend::instant(4),
        ChaosPlan {
            seed: 11,
            blowup_probability: 0.0,
            uncertified_probability: 0.0,
            panic_probability: 1.0,
        },
    );
    let server = start(ServeConfig::default(), Arc::new(chaotic));
    let addr = server.addr();
    for _ in 0..4 {
        let resp = http_request(
            addr,
            "POST",
            "/v1/mac",
            &mac_body("t", 2000),
            CLIENT_TIMEOUT,
        )
        .expect("request");
        assert_eq!(resp.status, 200, "a panicking solver still answers");
        let doc = typed_json(resp.status, &resp.body);
        assert_eq!(doc.get("degraded"), Some(&Value::Bool(true)));
    }
    server.shutdown();
}

#[test]
fn client_disconnect_cancels_the_solve() {
    let server = start(
        ServeConfig::default(),
        Arc::new(StubBackend::slow(4, Duration::from_secs(30))),
    );
    let addr = server.addr();
    // Fire a request and hang up immediately.
    {
        use std::io::Write as _;
        let mut stream = std::net::TcpStream::connect(addr).expect("connect");
        let body = mac_body("quitter", 60_000);
        let head = format!(
            "POST /v1/mac HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        stream.write_all(head.as_bytes()).expect("head");
        stream.write_all(&body).expect("body");
        // Dropping the stream closes the connection; the watchdog
        // should trip the solve's cancel token shortly after.
    }
    // The worker must come back long before the 30 s stub delay: an
    // instant follow-up request proves the pool was not wedged.
    let start_at = Instant::now();
    let resp = loop {
        match http_request(addr, "GET", "/healthz", b"", Duration::from_secs(1)) {
            Ok(resp) => break resp,
            Err(_) if start_at.elapsed() < Duration::from_secs(10) => {
                std::thread::sleep(Duration::from_millis(50))
            }
            Err(e) => panic!("healthz never recovered: {e}"),
        }
    };
    assert_eq!(resp.status, 200);
    server.shutdown();
}

#[test]
fn shutdown_drains_admitted_work() {
    let config = ServeConfig {
        workers: 2,
        queue_capacity: 8,
        ..ServeConfig::default()
    };
    let server = start(
        config,
        Arc::new(StubBackend::slow(4, Duration::from_millis(100))),
    );
    let addr = server.addr();
    let clients: Vec<_> = (0..4)
        .map(|i| {
            std::thread::spawn(move || {
                http_request(
                    addr,
                    "POST",
                    "/v1/mac",
                    &mac_body(&format!("t{i}"), 5000),
                    CLIENT_TIMEOUT,
                )
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(30));
    server.shutdown();
    for client in clients {
        let resp = client.join().expect("client thread").expect("response");
        // Admitted work completes; late arrivals may be shed — both are
        // typed, nothing is dropped on the floor.
        assert!(matches!(resp.status, 200 | 429), "got {}", resp.status);
        typed_json(resp.status, &resp.body);
    }
    assert!(
        std::net::TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err(),
        "listener is closed after shutdown"
    );
}

/// Pulls the `request_id` out of a response body, asserting it is the
/// fixed-width hex form every typed body must carry.
fn request_id_of(doc: &Value) -> String {
    match doc.get("request_id") {
        Some(Value::String(id)) if id.len() == 16 && id.chars().all(|c| c.is_ascii_hexdigit()) => {
            id.clone()
        }
        other => panic!("expected a 16-hex request_id, got {other:?}"),
    }
}

#[test]
fn request_ids_flow_from_responses_to_events_and_debug_views() {
    let aggregator = Arc::new(Aggregator::new());
    let flight = Arc::new(FlightRecorder::new(256));
    let telemetry = Telemetry::to(Tee::new(vec![
        Arc::clone(&aggregator) as Arc<dyn ferrocim_telemetry::Recorder>,
        Arc::clone(&flight) as Arc<dyn ferrocim_telemetry::Recorder>,
    ]));
    let server = Server::start_observed(
        ServeConfig::default(),
        Arc::new(StubBackend::instant(4)),
        telemetry,
        aggregator.clone(),
        Some(Arc::clone(&flight)),
    )
    .expect("bind");
    let addr = server.addr();

    // Success, shed (bad width -> 400), and the request ids they echo.
    let ok = http_request(
        addr,
        "POST",
        "/v1/mac",
        &mac_body("acme", 2000),
        CLIENT_TIMEOUT,
    )
    .expect("mac");
    assert_eq!(ok.status, 200);
    let ok_doc = typed_json(ok.status, &ok.body);
    let ok_id = request_id_of(&ok_doc);
    let bad = http_request(
        addr,
        "POST",
        "/v1/mac",
        br#"{"tenant":"acme","inputs":[true],"weights":[true]}"#,
        CLIENT_TIMEOUT,
    )
    .expect("bad width");
    assert_eq!(bad.status, 400);
    let bad_doc = typed_json(bad.status, &bad.body);
    let bad_id = request_id_of(&bad_doc);
    assert_ne!(ok_id, bad_id, "each request gets its own id");

    // Terminal outcomes feed the dimensional metrics: one ok (the live
    // stub is not surrogate-backed) and one rejected, both for acme.
    let counts = aggregator.counts();
    assert!(counts.serve_done >= 2, "every terminal MAC emits ServeDone");
    let labeled = aggregator.serve_requests();
    let acme_ok = labeled
        .iter()
        .find(|c| c.tenant == "acme" && c.outcome == "ok" && c.backend == "live")
        .expect("acme/ok/live cell exists");
    assert_eq!(acme_ok.value, 1);
    assert!(
        labeled
            .iter()
            .any(|c| c.tenant == "acme" && c.outcome == "rejected"),
        "the 400 shows up as a rejected outcome: {labeled:?}"
    );

    // The events in the flight ring carry the echoed ids.
    let events = flight.snapshot();
    let done_ids: Vec<String> = events
        .iter()
        .filter_map(|event| match event {
            ferrocim_telemetry::Event::ServeDone { request_id, .. } => {
                Some(format!("{request_id:016x}"))
            }
            _ => None,
        })
        .collect();
    assert!(done_ids.contains(&ok_id), "ok id reaches telemetry");
    assert!(done_ids.contains(&bad_id), "rejected id reaches telemetry");

    // The read-only debug surface.
    let requests =
        http_request(addr, "GET", "/debug/requests", b"", CLIENT_TIMEOUT).expect("debug requests");
    assert_eq!(requests.status, 200);
    let doc = requests.json().expect("JSON");
    assert_eq!(doc.get("ok"), Some(&Value::Bool(true)));
    assert!(matches!(doc.get("in_flight"), Some(Value::Number(_))));
    let queue =
        http_request(addr, "GET", "/debug/queue", b"", CLIENT_TIMEOUT).expect("debug queue");
    let doc = queue.json().expect("JSON");
    assert_eq!(doc.get("capacity"), Some(&Value::Number(16.0)));
    assert_eq!(doc.get("shutting_down"), Some(&Value::Bool(false)));
    let breakers =
        http_request(addr, "GET", "/debug/breakers", b"", CLIENT_TIMEOUT).expect("debug breakers");
    let doc = breakers.json().expect("JSON");
    assert!(matches!(doc.get("breakers"), Some(Value::Array(_))));
    let flight_resp =
        http_request(addr, "GET", "/debug/flight", b"", CLIENT_TIMEOUT).expect("debug flight");
    assert_eq!(flight_resp.status, 200);
    let text = String::from_utf8_lossy(&flight_resp.body);
    assert!(
        text.starts_with("{\"format\":\"ferrocim-trace-v1\"}"),
        "flight stream is a trace dump: {}",
        &text[..text.len().min(80)]
    );
    assert!(text.contains("ServeDone"), "ring holds the serve events");
    // Unknown debug paths are typed 404s.
    let nope = http_request(addr, "GET", "/debug/nope", b"", CLIENT_TIMEOUT).expect("404");
    assert_eq!(nope.status, 404);
    server.shutdown();
}

#[test]
fn debug_endpoints_answer_even_when_the_queue_is_full() {
    let config = ServeConfig {
        workers: 1,
        queue_capacity: 1,
        tenant_quota: 64,
        ..ServeConfig::default()
    };
    let server = start(
        config,
        Arc::new(StubBackend::slow(4, Duration::from_millis(400))),
    );
    let addr = server.addr();
    // One request solving, one parked in the depth-1 queue: full.
    let busy: Vec<_> = (0..2)
        .map(|i| {
            std::thread::spawn(move || {
                http_request(
                    addr,
                    "POST",
                    "/v1/mac",
                    &mac_body(&format!("t{i}"), 5000),
                    CLIENT_TIMEOUT,
                )
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(100));
    // The acceptor must answer introspection inline despite the full
    // queue (a third MAC would be shed right now).
    let queue =
        http_request(addr, "GET", "/debug/queue", b"", CLIENT_TIMEOUT).expect("debug queue");
    assert_eq!(queue.status, 200, "debug endpoints are admission-exempt");
    let doc = queue.json().expect("JSON");
    assert_eq!(doc.get("ok"), Some(&Value::Bool(true)));
    // No flight recorder was wired in: /debug/flight is a typed 404.
    let flight =
        http_request(addr, "GET", "/debug/flight", b"", CLIENT_TIMEOUT).expect("debug flight");
    assert_eq!(flight.status, 404);
    for client in busy {
        let resp = client.join().expect("client").expect("response");
        assert!(matches!(resp.status, 200 | 429));
    }
    server.shutdown();
}

#[test]
fn real_cim_backend_serves_a_live_mac() {
    let aggregator = Arc::new(Aggregator::new());
    let telemetry = Telemetry::new(aggregator.clone());
    let backend = CimBackend::new(telemetry.clone(), 2).expect("calibrate");
    let server = Server::start(
        ServeConfig::default(),
        Arc::new(backend),
        telemetry,
        aggregator,
    )
    .expect("bind");
    let addr = server.addr();
    let body = br#"{"tenant":"live","inputs":[true,true,true,false,false,false,false,false],
        "weights":[true,true,false,false,true,false,false,false],"timeout_ms":20000}"#;
    let resp =
        http_request(addr, "POST", "/v1/mac", body, Duration::from_secs(30)).expect("request");
    assert_eq!(
        resp.status,
        200,
        "body: {}",
        String::from_utf8_lossy(&resp.body)
    );
    let doc = typed_json(resp.status, &resp.body);
    assert_eq!(doc.get("expected"), Some(&Value::Number(2.0)));
    assert_eq!(doc.get("degraded"), Some(&Value::Bool(false)));
    // An analytic in-domain request is answered by the surrogate fast
    // path (the first solve for this weight pattern calibrates a curve
    // in-line, then answers from it).
    assert_eq!(doc.get("surrogate"), Some(&Value::Bool(true)));
    assert_eq!(doc.get("attempts"), Some(&Value::Number(0.0)));
    let readout = match doc.get("readout") {
        Some(Value::Number(n)) => *n as i64,
        other => panic!("readout missing: {other:?}"),
    };
    assert!(
        (readout - 2).abs() <= 1,
        "nominal room-temperature readout is within one level of truth"
    );

    // The same request again is a pure cache hit; the counters in the
    // shared aggregator record both lookups.
    let again =
        http_request(addr, "POST", "/v1/mac", body, Duration::from_secs(30)).expect("request");
    assert_eq!(again.status, 200);
    let doc = typed_json(again.status, &again.body);
    assert_eq!(doc.get("surrogate"), Some(&Value::Bool(true)));
    let counts = server.aggregator().counts();
    assert!(
        counts.surrogate_misses >= 1,
        "startup + first request each calibrated a curve"
    );
    assert!(counts.surrogate_hits >= 1, "the repeat request hit");
    server.shutdown();
}
