//! Temperature quantities and thermally derived values.
//!
//! The paper's entire contribution is about behaviour across the 0 °C to
//! 85 °C industrial range, so temperatures get first-class types with an
//! explicit Celsius/Kelvin distinction. The thermal voltage `kT/q` — the
//! quantity that makes subthreshold conduction exponentially
//! temperature-sensitive — is provided as its own type.

use crate::electrical::Volt;

/// Boltzmann constant in J/K (2019 SI exact value).
pub const BOLTZMANN: f64 = 1.380_649e-23;

/// Elementary charge in coulombs (2019 SI exact value).
pub const ELEMENTARY_CHARGE: f64 = 1.602_176_634e-19;

quantity! {
    /// Absolute temperature in kelvin.
    Kelvin, "K"
}

quantity! {
    /// Temperature in degrees Celsius.
    ///
    /// The paper sweeps `Celsius(0.0)..=Celsius(85.0)` with the reference
    /// at `Celsius(27.0)` (room temperature).
    Celsius, "°C"
}

impl Celsius {
    /// The 0 °C ↔ 273.15 K offset.
    pub const KELVIN_OFFSET: f64 = 273.15;

    /// The paper's reference (room) temperature, 27 °C.
    pub const ROOM: Celsius = Celsius(27.0);

    /// Converts to absolute temperature.
    ///
    /// # Examples
    ///
    /// ```
    /// use ferrocim_units::{Celsius, Kelvin};
    /// assert_eq!(Celsius(27.0).to_kelvin(), Kelvin(300.15));
    /// ```
    #[inline]
    pub fn to_kelvin(self) -> Kelvin {
        Kelvin(self.0 + Self::KELVIN_OFFSET)
    }
}

impl Kelvin {
    /// Converts to the Celsius scale.
    #[inline]
    pub fn to_celsius(self) -> Celsius {
        Celsius(self.0 - Celsius::KELVIN_OFFSET)
    }
}

impl From<Celsius> for Kelvin {
    #[inline]
    fn from(c: Celsius) -> Kelvin {
        c.to_kelvin()
    }
}

impl From<Kelvin> for Celsius {
    #[inline]
    fn from(k: Kelvin) -> Celsius {
        k.to_celsius()
    }
}

/// The thermal voltage `U_T = kT/q`.
///
/// Subthreshold drain current scales as `exp(V_GS / (n·U_T))`, so `U_T`
/// appears everywhere in the device models. At 27 °C it is ≈ 25.9 mV; at
/// 85 °C ≈ 30.9 mV — the 20 % swing that drives the paper's Fig. 3
/// fluctuations.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, serde::Serialize, serde::Deserialize)]
pub struct ThermalVoltage(Volt);

impl ThermalVoltage {
    /// Computes `kT/q` at an absolute temperature.
    ///
    /// # Panics
    ///
    /// Panics if `t` is not strictly positive — a non-positive absolute
    /// temperature is always a caller bug, not a recoverable condition.
    #[inline]
    pub fn at(t: Kelvin) -> Self {
        assert!(
            t.0 > 0.0,
            "absolute temperature must be positive, got {t:?}"
        );
        ThermalVoltage(Volt(BOLTZMANN * t.0 / ELEMENTARY_CHARGE))
    }

    /// Computes `kT/q` at a Celsius temperature.
    #[inline]
    pub fn at_celsius(t: Celsius) -> Self {
        Self::at(t.to_kelvin())
    }

    /// The thermal voltage as a [`Volt`] quantity.
    #[inline]
    pub fn volts(self) -> Volt {
        self.0
    }

    /// The raw magnitude in volts.
    #[inline]
    pub fn value(self) -> f64 {
        self.0 .0
    }
}

impl core::fmt::Display for ThermalVoltage {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn celsius_kelvin_round_trip() {
        let c = Celsius(85.0);
        let k = c.to_kelvin();
        assert!((k.0 - 358.15).abs() < 1e-12);
        assert!((k.to_celsius().0 - 85.0).abs() < 1e-12);
    }

    #[test]
    fn from_impls_match_methods() {
        let k: Kelvin = Celsius(0.0).into();
        assert_eq!(k, Kelvin(273.15));
        let c: Celsius = Kelvin(300.15).into();
        assert!((c.0 - 27.0).abs() < 1e-12);
    }

    #[test]
    fn thermal_voltage_at_room() {
        let ut = ThermalVoltage::at_celsius(Celsius::ROOM);
        assert!((ut.value() - 0.025_85).abs() < 1e-4, "got {}", ut.value());
    }

    #[test]
    fn thermal_voltage_grows_with_temperature() {
        let cold = ThermalVoltage::at_celsius(Celsius(0.0));
        let hot = ThermalVoltage::at_celsius(Celsius(85.0));
        assert!(hot.value() > cold.value());
        // ~31 % swing over the industrial range.
        let swing = (hot.value() - cold.value()) / cold.value();
        assert!(swing > 0.25 && swing < 0.35, "swing {swing}");
    }

    #[test]
    #[should_panic(expected = "absolute temperature must be positive")]
    fn thermal_voltage_rejects_nonpositive() {
        let _ = ThermalVoltage::at(Kelvin(0.0));
    }
}
