//! Electrical quantities: voltage, current, resistance, conductance,
//! capacitance, and charge — plus the dimensionally correct products and
//! ratios between them (Ohm's law, `Q = C·V`, `I = dQ/dt`, …).

use crate::energy::{Joule, Second, Watt};

quantity! {
    /// Electric potential in volts.
    ///
    /// The paper's operating points expressed in this type: the
    /// subthreshold read voltage is `Volt(0.35)`, the saturation read is
    /// `Volt(1.3)`, the bit line sits at `Volt(1.2)` and the source line
    /// at `Volt(0.2)`, while program/erase pulses are `Volt(±4.0)`.
    Volt, "V"
}

quantity! {
    /// Electric current in amperes.
    Ampere, "A"
}

quantity! {
    /// Resistance in ohms.
    Ohm, "Ω"
}

quantity! {
    /// Conductance in siemens (the reciprocal of [`Ohm`]).
    Siemens, "S"
}

quantity! {
    /// Capacitance in farads.
    Farad, "F"
}

quantity! {
    /// Electric charge in coulombs.
    Charge, "C"
}

impl Volt {
    /// Ohm's law: the current through a resistance held at this voltage.
    ///
    /// # Examples
    ///
    /// ```
    /// use ferrocim_units::{Volt, Ohm, Ampere};
    /// let i = Volt(1.0).across(Ohm(1e6));
    /// assert_eq!(i, Ampere(1e-6));
    /// ```
    #[inline]
    pub fn across(self, r: Ohm) -> Ampere {
        Ampere(self.0 / r.0)
    }

    /// The charge stored on a capacitance held at this voltage (`Q = CV`).
    #[inline]
    pub fn on(self, c: Farad) -> Charge {
        Charge(self.0 * c.0)
    }
}

impl Ampere {
    /// The voltage developed across a resistance carrying this current.
    #[inline]
    pub fn through(self, r: Ohm) -> Volt {
        Volt(self.0 * r.0)
    }

    /// The charge transported by this current over a duration (`Q = I·t`).
    #[inline]
    pub fn over(self, t: Second) -> Charge {
        Charge(self.0 * t.0)
    }

    /// Instantaneous power delivered into a node at the given potential.
    #[inline]
    pub fn power_at(self, v: Volt) -> Watt {
        Watt(self.0 * v.0)
    }
}

impl Ohm {
    /// Converts to conductance. Returns an infinite conductance for a
    /// zero resistance, mirroring `f64` division semantics.
    #[inline]
    pub fn to_siemens(self) -> Siemens {
        Siemens(1.0 / self.0)
    }
}

impl Siemens {
    /// Converts to resistance. Returns an infinite resistance for a zero
    /// conductance, mirroring `f64` division semantics.
    #[inline]
    pub fn to_ohms(self) -> Ohm {
        Ohm(1.0 / self.0)
    }
}

impl Charge {
    /// The voltage this charge develops on a capacitance (`V = Q/C`).
    #[inline]
    pub fn voltage_on(self, c: Farad) -> Volt {
        Volt(self.0 / c.0)
    }

    /// The energy required to place this charge through a potential
    /// difference (`E = Q·V`).
    #[inline]
    pub fn energy_through(self, v: Volt) -> Joule {
        Joule(self.0 * v.0)
    }
}

impl Farad {
    /// Electrostatic energy stored at a given voltage (`E = ½CV²`).
    ///
    /// # Examples
    ///
    /// ```
    /// use ferrocim_units::{Farad, Volt};
    /// // A 1 fF cell capacitor charged to 1 V stores 0.5 fJ.
    /// let e = Farad(1e-15).stored_energy(Volt(1.0));
    /// assert!((e.0 - 0.5e-15).abs() < 1e-30);
    /// ```
    #[inline]
    pub fn stored_energy(self, v: Volt) -> Joule {
        Joule(0.5 * self.0 * v.0 * v.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ohms_law_round_trip() {
        let v = Volt(0.35);
        let r = Ohm(2.5e5);
        let i = v.across(r);
        assert!((i.through(r).0 - v.0).abs() < 1e-15);
    }

    #[test]
    fn conductance_resistance_reciprocal() {
        let r = Ohm(1e4);
        let g = r.to_siemens();
        assert!((g.0 - 1e-4).abs() < 1e-18);
        assert!((g.to_ohms().0 - r.0).abs() < 1e-9);
    }

    #[test]
    fn charge_voltage_capacitance_triangle() {
        let c = Farad(2e-15);
        let v = Volt(0.8);
        let q = v.on(c);
        assert!((q.0 - 1.6e-15).abs() < 1e-30);
        assert!((q.voltage_on(c).0 - v.0).abs() < 1e-12);
    }

    #[test]
    fn current_time_charge() {
        let i = Ampere(1e-9);
        let q = i.over(Second(10e-9));
        assert!((q.0 - 1e-17).abs() < 1e-30);
    }

    #[test]
    fn power_and_energy() {
        let p = Ampere(1e-6).power_at(Volt(1.2));
        assert!((p.0 - 1.2e-6).abs() < 1e-18);
        let e = Charge(1e-15).energy_through(Volt(1.0));
        assert!((e.0 - 1e-15).abs() < 1e-30);
    }

    #[test]
    fn capacitor_stored_energy() {
        let e = Farad(10e-15).stored_energy(Volt(1.2));
        assert!((e.0 - 0.5 * 10e-15 * 1.44).abs() < 1e-28);
    }
}
