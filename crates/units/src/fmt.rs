//! SI-prefixed human-readable formatting shared by all quantity types.

/// Formats a magnitude with an engineering SI prefix and the given unit
/// suffix: `si_format(3.14e-15, "J")` → `"3.14 fJ"`.
///
/// Values are rendered with up to four significant digits and trailing
/// zeros trimmed; zero, NaN and infinities are passed through verbatim.
///
/// # Examples
///
/// ```
/// use ferrocim_units::si_format;
/// assert_eq!(si_format(0.35, "V"), "350 mV");
/// assert_eq!(si_format(2.5e-5, "A"), "25 µA");
/// assert_eq!(si_format(0.0, "V"), "0 V");
/// ```
pub fn si_format(value: f64, unit: &str) -> String {
    if value == 0.0 {
        return format!("0 {unit}");
    }
    if !value.is_finite() {
        return format!("{value} {unit}");
    }
    const PREFIXES: [(f64, &str); 17] = [
        (1e24, "Y"),
        (1e21, "Z"),
        (1e18, "E"),
        (1e15, "P"),
        (1e12, "T"),
        (1e9, "G"),
        (1e6, "M"),
        (1e3, "k"),
        (1.0, ""),
        (1e-3, "m"),
        (1e-6, "µ"),
        (1e-9, "n"),
        (1e-12, "p"),
        (1e-15, "f"),
        (1e-18, "a"),
        (1e-21, "z"),
        (1e-24, "y"),
    ];
    let magnitude = value.abs();
    let (scale, prefix) = PREFIXES
        .iter()
        .find(|(s, _)| magnitude >= *s * 0.9995)
        .copied()
        .unwrap_or((1e-24, "y"));
    let scaled = value / scale;
    // Up to 4 significant digits, trailing zeros trimmed.
    let digits = (4 - (scaled.abs().log10().floor() as i32 + 1)).clamp(0, 4) as usize;
    let mut s = format!("{scaled:.digits$}");
    if s.contains('.') {
        while s.ends_with('0') {
            s.pop();
        }
        if s.ends_with('.') {
            s.pop();
        }
    }
    format!("{s} {prefix}{unit}")
}

#[cfg(test)]
mod tests {
    use super::si_format;

    #[test]
    fn core_prefixes() {
        assert_eq!(si_format(1.0, "V"), "1 V");
        assert_eq!(si_format(1.5e3, "Ω"), "1.5 kΩ");
        assert_eq!(si_format(1e-3, "A"), "1 mA");
        assert_eq!(si_format(1e-6, "A"), "1 µA");
        assert_eq!(si_format(1e-9, "A"), "1 nA");
        assert_eq!(si_format(1e-12, "F"), "1 pF");
        assert_eq!(si_format(1e-15, "J"), "1 fJ");
    }

    #[test]
    fn negative_values_keep_sign() {
        assert_eq!(si_format(-4.0, "V"), "-4 V");
        assert_eq!(si_format(-2.5e-9, "A"), "-2.5 nA");
    }

    #[test]
    fn rounding_boundary_does_not_show_1000() {
        // 0.9999e-3 should render as ~1 mA, not 999.9 µA vs 1000 µA noise.
        let s = si_format(0.99999e-3, "A");
        assert!(s.starts_with('1'), "got {s}");
    }

    #[test]
    fn zero_and_non_finite() {
        assert_eq!(si_format(0.0, "V"), "0 V");
        assert!(si_format(f64::NAN, "V").contains("NaN"));
        assert!(si_format(f64::INFINITY, "V").contains("inf"));
    }

    #[test]
    fn significant_digits_trimmed() {
        assert_eq!(si_format(3.14e-15, "J"), "3.14 fJ");
        assert_eq!(si_format(3.140e-15, "J"), "3.14 fJ");
        assert_eq!(si_format(123.456e-9, "A"), "123.5 nA");
    }
}
