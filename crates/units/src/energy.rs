//! Time, energy, and power quantities, with the conversions used by the
//! energy-efficiency accounting of the paper (fJ/op → TOPS/W).

quantity! {
    /// Time in seconds. Simulation timesteps, pulse widths (e.g. the
    /// paper's 115 ns / 200 ns program pulses), and MAC latencies
    /// (6.9 ns) are all expressed in this type.
    Second, "s"
}

quantity! {
    /// Energy in joules. The paper reports 3.14 fJ per MAC operation.
    Joule, "J"
}

quantity! {
    /// Power in watts.
    Watt, "W"
}

impl Joule {
    /// Average power when this energy is spent over the given duration.
    #[inline]
    pub fn over(self, t: Second) -> Watt {
        Watt(self.0 / t.0)
    }

    /// Converts a per-*operation* energy into an energy-efficiency figure
    /// in TOPS/W (tera-operations per second per watt), the unit used by
    /// Table II of the paper.
    ///
    /// `ops_per_mac` is the number of elementary operations one measured
    /// "operation" is credited with. The paper counts each MAC over 8
    /// cells as 8 multiplications + 8 accumulations = 16 OPs; calling
    /// this on the per-MAC energy with `ops_per_mac = 16` mirrors that
    /// accounting. Pass `1.0` if `self` is already the per-OP energy.
    ///
    /// # Examples
    ///
    /// ```
    /// use ferrocim_units::Joule;
    /// // 3.14 fJ per 8-cell MAC ≈ 5.1e3 TOPS/W at 16 OPs per MAC.
    /// let tops_w = Joule(3.14e-15).tops_per_watt(16.0);
    /// assert!(tops_w > 1.0e3 && tops_w < 1.0e4);
    /// ```
    #[inline]
    pub fn tops_per_watt(self, ops_per_mac: f64) -> f64 {
        // TOPS/W = (ops / energy[J]) / 1e12
        ops_per_mac / self.0 / 1e12
    }
}

impl Watt {
    /// Energy dissipated at this power over the given duration.
    #[inline]
    pub fn over(self, t: Second) -> Joule {
        Joule(self.0 * t.0)
    }
}

impl Second {
    /// Convenience constructor from nanoseconds.
    #[inline]
    pub fn from_nanos(ns: f64) -> Self {
        Second(ns * 1e-9)
    }

    /// The value expressed in nanoseconds.
    #[inline]
    pub fn as_nanos(self) -> f64 {
        self.0 * 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nanosecond_round_trip() {
        let t = Second::from_nanos(6.9);
        assert!((t.0 - 6.9e-9).abs() < 1e-20);
        assert!((t.as_nanos() - 6.9).abs() < 1e-12);
    }

    #[test]
    fn power_energy_round_trip() {
        let p = Watt(1e-6);
        let e = p.over(Second(1e-9));
        assert!((e.0 - 1e-15).abs() < 1e-28);
        assert!((e.over(Second(1e-9)).0 - p.0).abs() < 1e-16);
    }

    #[test]
    fn tops_per_watt_matches_hand_calc() {
        // 1 fJ per op → 1e15 ops/J → 1000 TOPS/W.
        let eff = Joule(1e-15).tops_per_watt(1.0);
        assert!((eff - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn paper_headline_efficiency_order() {
        // The paper credits ~2866 TOPS/W for ~3.14 fJ per 8-cell MAC.
        // 16 OPs / 3.14 fJ ≈ 5.1e3; with 9 OPs (8 mul + 1 acc) ≈ 2866.
        let eff = Joule(3.14e-15).tops_per_watt(9.0);
        assert!((eff - 2866.0).abs() / 2866.0 < 0.01);
    }
}
