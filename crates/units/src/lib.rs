//! Physical-quantity newtypes for the `ferrocim` simulation stack.
//!
//! Circuit and device code in this workspace never passes bare `f64`s for
//! physical quantities: voltages are [`Volt`], currents are [`Ampere`],
//! temperatures are [`Celsius`] or [`Kelvin`], and so on. The newtypes are
//! zero-cost (`#[repr(transparent)]` over `f64`) but make unit confusion a
//! compile error instead of a silent simulation bug — exactly the failure
//! mode that matters when a 0.35 V subthreshold read and a 4 V program
//! pulse flow through the same APIs.
//!
//! # Examples
//!
//! ```
//! use ferrocim_units::{Volt, Celsius, Kelvin, ThermalVoltage};
//!
//! let v_read = Volt(0.35);
//! let room = Celsius(27.0);
//! let t: Kelvin = room.to_kelvin();
//! assert!((t.0 - 300.15).abs() < 1e-9);
//!
//! // Thermal voltage kT/q at room temperature is ~25.9 mV.
//! let ut = ThermalVoltage::at(t);
//! assert!((ut.volts().0 - 0.02585).abs() < 1e-3);
//! assert!(v_read > Volt(0.0));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// Constructs the quantity-newtype boilerplate shared by every unit type:
/// arithmetic against `Self` and scalar `f64`, ordering helpers, and the
/// common trait suite (`C-COMMON-TRAITS`).
macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $suffix:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default,
                 serde::Serialize, serde::Deserialize)]
        #[repr(transparent)]
        #[serde(transparent)]
        pub struct $name(pub f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: Self = Self(0.0);

            /// Returns the raw `f64` magnitude in base SI units.
            #[inline]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Returns the absolute value of the quantity.
            #[inline]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Returns the larger of `self` and `other`.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns the smaller of `self` and `other`.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// `true` if the magnitude is a finite number (not NaN/inf).
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl core::ops::Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl core::ops::Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl core::ops::Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl core::ops::Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl core::ops::Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl core::ops::Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl core::ops::Div<$name> for $name {
            /// Dividing two like quantities yields a dimensionless ratio.
            type Output = f64;
            #[inline]
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl core::ops::AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl core::ops::SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl core::iter::Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl core::fmt::Display for $name {
            fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                write!(f, "{}", crate::fmt::si_format(self.0, $suffix))
            }
        }

        impl From<f64> for $name {
            #[inline]
            fn from(v: f64) -> Self {
                Self(v)
            }
        }
    };
}

mod electrical;
mod energy;
mod fmt;
mod thermal;

pub use electrical::{Ampere, Charge, Farad, Ohm, Siemens, Volt};
pub use energy::{Joule, Second, Watt};
pub use fmt::si_format;
pub use thermal::{Celsius, Kelvin, ThermalVoltage, BOLTZMANN, ELEMENTARY_CHARGE};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volt_arithmetic_behaves_like_f64() {
        let a = Volt(1.2);
        let b = Volt(0.2);
        assert_eq!((a - b).0, 1.0);
        assert_eq!((a + b).0, 1.4);
        assert_eq!((a * 2.0).0, 2.4);
        assert_eq!((2.0 * b).0, 0.4);
        assert!((a / b - 6.0).abs() < 1e-12);
        assert_eq!((-b).0, -0.2);
    }

    #[test]
    fn sum_of_voltages() {
        let vs = [Volt(0.1), Volt(0.2), Volt(0.3)];
        let total: Volt = vs.iter().copied().sum();
        assert!((total.0 - 0.6).abs() < 1e-12);
    }

    #[test]
    fn display_uses_si_prefixes() {
        assert_eq!(Volt(0.35).to_string(), "350 mV");
        assert_eq!(Ampere(3.2e-9).to_string(), "3.2 nA");
        assert_eq!(Joule(3.14e-15).to_string(), "3.14 fJ");
    }

    #[test]
    fn comparisons() {
        assert!(Volt(1.3) > Volt(0.35));
        assert_eq!(Volt(2.0).max(Volt(1.0)), Volt(2.0));
        assert_eq!(Volt(2.0).min(Volt(1.0)), Volt(1.0));
        assert_eq!(Volt(-3.0).abs(), Volt(3.0));
    }

    #[test]
    fn zero_and_default_agree() {
        assert_eq!(Volt::ZERO, Volt::default());
        assert_eq!(Ampere::ZERO.value(), 0.0);
    }

    #[test]
    fn finite_detection() {
        assert!(Volt(1.0).is_finite());
        assert!(!Volt(f64::NAN).is_finite());
        assert!(!Volt(f64::INFINITY).is_finite());
    }
}
