//! Cross-crate integration tests: the full figure pipelines at reduced
//! resolution, exercising device models → circuit solver → CIM arrays →
//! metrics exactly as the experiment binaries do.

use ferrocim::cim::cells::{current_fluctuation, CellOffsets, OneFefetOneR, TwoTransistorOneFefet};
use ferrocim::cim::metrics::{EnergyReport, RangeTable};
use ferrocim::cim::transfer::Adc;
use ferrocim::cim::{mac_operands, ArrayConfig, CimArray, MacPath, MacRequest};
use ferrocim::spice::sweep::temperature_sweep;
use ferrocim::units::Celsius;

const ROOM: Celsius = Celsius(27.0);

fn proposed_array() -> CimArray<TwoTransistorOneFefet> {
    CimArray::new(
        TwoTransistorOneFefet::paper_default(),
        ArrayConfig::paper_default(),
    )
    .expect("paper default config is valid")
}

#[test]
fn fig3_shape_subthreshold_baseline_fluctuates_more() {
    let temps = temperature_sweep(8);
    let sat = current_fluctuation(&OneFefetOneR::saturation(), &temps, ROOM).unwrap();
    let sub = current_fluctuation(&OneFefetOneR::subthreshold(), &temps, ROOM).unwrap();
    assert!(sub > 1.8 * sat, "sub {sub} vs sat {sat}");
}

#[test]
fn fig4_shape_baseline_array_overlaps() {
    let array = CimArray::new(OneFefetOneR::subthreshold(), ArrayConfig::paper_default()).unwrap();
    let table = RangeTable::measure(&array, &temperature_sweep(8)).unwrap();
    assert!(table.has_overlap());
    assert!(table.nmr_min().1 < 0.0);
}

#[test]
fn fig7_shape_proposed_cell_beats_subthreshold_baseline() {
    let temps = temperature_sweep(8);
    let ours = current_fluctuation(&TwoTransistorOneFefet::paper_default(), &temps, ROOM).unwrap();
    let baseline = current_fluctuation(&OneFefetOneR::subthreshold(), &temps, ROOM).unwrap();
    assert!(ours < baseline, "ours {ours} vs baseline {baseline}");
}

#[test]
fn fig8_shape_proposed_array_is_overlap_free_with_positive_nmr() {
    let table = RangeTable::measure(&proposed_array(), &temperature_sweep(8)).unwrap();
    assert!(!table.has_overlap());
    let (idx, nmr) = table.nmr_min();
    assert!(nmr > 0.0, "NMR_min = NMR_{idx} = {nmr}");
    // The paper's worst margin is at the bottom level (NMR_0 = 0.22);
    // ours matches both the index and (±50 %) the value.
    assert_eq!(idx, 0);
    assert!((0.1..0.5).contains(&nmr), "NMR_0 = {nmr}");
}

#[test]
fn fig8_energy_is_fj_scale_with_kilotops_per_watt() {
    let report = EnergyReport::measure(&proposed_array(), ROOM).unwrap();
    let avg_fj = report.average.value() * 1e15;
    assert!(
        (1.0..=15.0).contains(&avg_fj),
        "average energy {avg_fj} fJ (paper: 3.14 fJ)"
    );
    assert!(
        report.tops_per_watt > 500.0,
        "TOPS/W {} (paper: 2866)",
        report.tops_per_watt
    );
    // Energy grows monotonically with the number of conducting cells.
    for pair in report.per_mac.windows(2) {
        assert!(pair[1].value() >= pair[0].value());
    }
}

#[test]
fn mac_latency_matches_the_paper() {
    let latency = ArrayConfig::paper_default().latency();
    assert!((latency.as_nanos() - 6.9).abs() < 1e-9, "latency {latency}");
}

#[test]
fn adc_readout_is_temperature_stable_for_every_mac_value() {
    // The end-to-end digital claim behind Fig. 8(a): quantizing at any
    // temperature in range returns the true MAC value.
    let array = proposed_array();
    let adc = Adc::calibrate_over(&array, &temperature_sweep(8)).unwrap();
    for temp in [Celsius(0.0), Celsius(40.0), Celsius(85.0)] {
        let levels = array.level_voltages(temp).unwrap();
        for (k, v) in levels.iter().enumerate() {
            assert_eq!(
                adc.quantize(*v),
                k,
                "MAC={k} misread at {temp:?} (v = {v:?})"
            );
        }
    }
}

#[test]
fn full_transient_and_analytic_agree_on_the_8cell_row() {
    let array = proposed_array();
    let (w, x) = mac_operands(8, 5);
    let offsets = vec![CellOffsets::NOMINAL; 8];
    let fast = array
        .run(
            &MacRequest::new(&x)
                .weights(&w)
                .at(ROOM)
                .offsets(&offsets)
                .path(MacPath::Analytic),
        )
        .unwrap();
    let full = array
        .run(&MacRequest::new(&x).weights(&w).at(ROOM).offsets(&offsets))
        .unwrap();
    let rel = (fast.v_acc.value() - full.v_acc.value()).abs() / full.v_acc.value();
    assert!(rel < 0.08, "analytic vs transient rel err {rel}");
    assert_eq!(fast.expected, 5);
    assert_eq!(full.expected, 5);
}

#[test]
fn baseline_cells_share_the_same_fefet_device() {
    // Fairness invariant of the comparison: both designs must be built
    // from the same FeFET calibration.
    let ours = TwoTransistorOneFefet::paper_default();
    let baseline = OneFefetOneR::subthreshold();
    assert_eq!(ours.fefet.high_vt, baseline.fefet.high_vt);
    assert_eq!(ours.fefet.preisach, baseline.fefet.preisach);
}

#[test]
fn four_cell_row_has_wider_margins_than_eight() {
    // The paper's observation behind Fig. 9's 4-cell comparison:
    // fewer levels over the same swing → larger relative margins.
    let config8 = ArrayConfig::paper_default();
    let config4 = ArrayConfig {
        cells_per_row: 4,
        ..config8
    };
    let temps = temperature_sweep(6);
    let nmr8 = RangeTable::measure(
        &CimArray::new(TwoTransistorOneFefet::paper_default(), config8).unwrap(),
        &temps,
    )
    .unwrap()
    .nmr_min()
    .1;
    let nmr4 = RangeTable::measure(
        &CimArray::new(TwoTransistorOneFefet::paper_default(), config4).unwrap(),
        &temps,
    )
    .unwrap()
    .nmr_min()
    .1;
    assert!(nmr4 > nmr8, "4-cell NMR {nmr4} vs 8-cell {nmr8}");
}

#[test]
fn write_pulses_program_the_weights_the_mac_then_uses() {
    // Full write→compute flow through the Preisach kinetics: weights
    // written with the paper's ±4 V pulses produce the same MAC levels
    // as directly-forced states.
    use ferrocim::device::{Fefet, FefetParams, PolarizationState, ProgramPulse};
    let mut written = Fefet::new(FefetParams::paper_default());
    written.apply_pulse(ProgramPulse::PROGRAM);
    assert_eq!(written.stored_state(), Some(PolarizationState::LowVt));
    written.apply_pulse(ProgramPulse::ERASE);
    assert_eq!(written.stored_state(), Some(PolarizationState::HighVt));
    // Partial pulses leave analog states strictly inside the window.
    written.apply_pulse(ferrocim::device::ProgramPulse {
        amplitude: ferrocim::units::Volt(2.4),
        width: ferrocim::units::Second(115e-9),
    });
    assert_eq!(written.stored_state(), None);
    let vth = written.effective_vth(ROOM).value();
    let params = FefetParams::paper_default();
    assert!(vth > params.low_vt.value() && vth < params.high_vt.value());
}

#[test]
fn energy_report_is_consistent_between_row_widths() {
    // Per-active-cell energy must be roughly row-width independent —
    // the energy is spent in the cells, not the periphery.
    let temps_cfg8 = ArrayConfig::paper_default();
    let cfg4 = ArrayConfig {
        cells_per_row: 4,
        ..temps_cfg8
    };
    let e8 = EnergyReport::measure(
        &CimArray::new(TwoTransistorOneFefet::paper_default(), temps_cfg8).unwrap(),
        ROOM,
    )
    .unwrap();
    let e4 = EnergyReport::measure(
        &CimArray::new(TwoTransistorOneFefet::paper_default(), cfg4).unwrap(),
        ROOM,
    )
    .unwrap();
    // Energy at full activation, normalized per active cell.
    let per_cell8 = e8.per_mac.last().unwrap().value() / 8.0;
    let per_cell4 = e4.per_mac.last().unwrap().value() / 4.0;
    let ratio = per_cell8 / per_cell4;
    assert!(
        (0.8..1.25).contains(&ratio),
        "per-cell energy ratio {ratio}"
    );
}
