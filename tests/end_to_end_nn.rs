//! Cross-crate integration tests for the NN pipeline: synthetic data →
//! training → quantization → CIM-mapped inference with circuit-derived
//! noise, at sizes small enough for the test suite.

use ferrocim::cim::cells::TwoTransistorOneFefet;
use ferrocim::cim::transfer::{TransferConfig, TransferModel};
use ferrocim::cim::{ArrayConfig, CimArray};
use ferrocim::device::variation::VariationModel;
use ferrocim::nn::cim_exec::{CimMapping, CimNetwork, IdealMac, MacOracle};
use ferrocim::nn::data::Generator;
use ferrocim::nn::layers::{Layer, Linear};
use ferrocim::nn::{train, Network, TrainConfig};
use ferrocim::units::Celsius;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A tiny two-layer MLP on downsampled synthetic images trains fast and
/// exercises the whole pipeline.
fn small_mlp_and_data() -> (Network, Vec<ferrocim::nn::Tensor>, Vec<usize>) {
    let ds = Generator::new(11).generate(300);
    // Downsample 32x32x3 → 8x8x3 by 4x4 average pooling, flatten.
    let inputs: Vec<ferrocim::nn::Tensor> = ds
        .images
        .iter()
        .map(|img| {
            let mut out = vec![0.0f32; 3 * 8 * 8];
            for c in 0..3 {
                for y in 0..8 {
                    for x in 0..8 {
                        let mut acc = 0.0;
                        for dy in 0..4 {
                            for dx in 0..4 {
                                acc += img.at3(c, 4 * y + dy, 4 * x + dx);
                            }
                        }
                        out[(c * 8 + y) * 8 + x] = acc / 16.0;
                    }
                }
            }
            ferrocim::nn::Tensor::from_vec(&[3 * 8 * 8], out)
        })
        .collect();
    let mut rng = StdRng::seed_from_u64(5);
    let net = Network::new(vec![
        Layer::Linear(Linear::new(192, 48, &mut rng)),
        Layer::Relu,
        Layer::Linear(Linear::new(48, 10, &mut rng)),
    ]);
    (net, inputs, ds.labels)
}

#[test]
fn mlp_trains_on_synthetic_data_and_survives_cim_mapping() {
    let (mut net, inputs, labels) = small_mlp_and_data();
    let stats = train(
        &mut net,
        &inputs,
        &labels,
        &TrainConfig {
            epochs: 30,
            learning_rate: 0.05,
            batch_size: 16,
            ..TrainConfig::default()
        },
    );
    let clean = stats.last().unwrap().train_accuracy;
    assert!(clean > 0.8, "clean accuracy {clean}");
    // Quantized execution through ideal CIM rows barely degrades.
    let cim = CimNetwork::map(&net, CimMapping::default());
    let ideal = cim.accuracy(&inputs, &labels, &IdealMac(8), 3);
    assert!(
        ideal > clean - 0.1,
        "ideal-CIM accuracy {ideal} vs clean {clean}"
    );
}

#[test]
fn transfer_model_at_room_temperature_is_mostly_correct() {
    let array = CimArray::new(
        TwoTransistorOneFefet::paper_default(),
        ArrayConfig::paper_default(),
    )
    .unwrap();
    let config = TransferConfig {
        samples_per_level: 40,
        ..TransferConfig::paper_default(Celsius(27.0))
    };
    let model = TransferModel::measure(&array, &config).unwrap();
    // The zero level must be read perfectly (it anchors sparse layers),
    // and every level's expectation must be close to the truth.
    assert!(model.correct_probability(0) > 0.95);
    for k in 0..=8 {
        let bias = (model.expected(k) - k as f64).abs();
        assert!(bias < 1.0, "level {k} biased by {bias}");
    }
    // The paper's Fig. 9 scale: max error well below full scale.
    assert!(model.max_relative_error() <= 0.5);
}

#[test]
fn transfer_model_without_variation_is_error_free_at_reference() {
    let array = CimArray::new(
        TwoTransistorOneFefet::paper_default(),
        ArrayConfig::paper_default(),
    )
    .unwrap();
    let config = TransferConfig {
        variation: VariationModel::none(),
        samples_per_level: 3,
        ..TransferConfig::paper_default(Celsius(27.0))
    };
    let model = TransferModel::measure(&array, &config).unwrap();
    for k in 0..=8 {
        assert_eq!(
            model.correct_probability(k),
            1.0,
            "nominal level {k} must read exactly"
        );
    }
    // And its oracle read-back is the identity.
    let mut rng = StdRng::seed_from_u64(0);
    for k in 0..=8 {
        assert_eq!(model.read(k, &mut rng), k);
    }
}

#[test]
fn hotter_transfer_models_are_no_better_than_room_temperature() {
    let array = CimArray::new(
        TwoTransistorOneFefet::paper_default(),
        ArrayConfig::paper_default(),
    )
    .unwrap();
    let measure = |t: f64| {
        let config = TransferConfig {
            samples_per_level: 30,
            ..TransferConfig::paper_default(Celsius(t))
        };
        let m = TransferModel::measure(&array, &config).unwrap();
        (0..=8).map(|k| m.correct_probability(k)).sum::<f64>() / 9.0
    };
    let room = measure(27.0);
    let hot = measure(85.0);
    // The ADC is calibrated at 27 C, so other temperatures can only be
    // equal or worse on average.
    assert!(hot <= room + 0.1, "hot {hot} vs room {room}");
    assert!(room > 0.5, "room-temperature correctness {room}");
}

#[test]
fn replica_tracking_outperforms_global_thresholds_at_the_cold_corner() {
    // Regression for the systematic readout bias: with one global
    // threshold set, the 0 °C levels sit at the edges of their decision
    // windows and variation pushes them across; replica tracking
    // re-centres them.
    use ferrocim::cim::transfer::AdcTracking;
    let array = CimArray::new(
        TwoTransistorOneFefet::paper_default(),
        ArrayConfig::paper_default(),
    )
    .unwrap();
    let measure = |tracking: AdcTracking| {
        let config = TransferConfig {
            samples_per_level: 30,
            tracking,
            ..TransferConfig::paper_default(Celsius(0.0))
        };
        let m = TransferModel::measure(&array, &config).unwrap();
        // Mean absolute readout bias across levels.
        (0..=8)
            .map(|k| (m.expected(k) - k as f64).abs())
            .sum::<f64>()
            / 9.0
    };
    let global = measure(AdcTracking::Global);
    let replica = measure(AdcTracking::Replica);
    assert!(
        replica < global,
        "replica bias {replica} must beat global bias {global}"
    );
    assert!(
        replica < 0.15,
        "replica tracking keeps readouts unbiased: {replica}"
    );
}
